//! Cross-crate integration: documents, CASE, server, and recovery working
//! against one graph — the "hypertext as the project database" scenario
//! the paper's §4 describes.

use neptune::case::{checkout, create_release, model};
use neptune::document::{diffview, view_node};
use neptune::ham::context::ConflictPolicy;
use neptune::prelude::*;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn documentation_and_code_share_one_hyperdocument() {
    let dir = tmpdir("shared");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();

    // A design document...
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "design", "Design").unwrap();
    let storage_sec = doc
        .add_section(
            &mut ham,
            doc.root,
            10,
            "Storage Design",
            "Use backward deltas.\n",
        )
        .unwrap();

    // ...and source code in the same graph.
    let project = CaseProject::new(MAIN_CONTEXT);
    let module =
        parse_module("MODULE Storage;\nPROCEDURE Alloc;\nEND Alloc;\nEND Storage.\n").unwrap();
    let nodes = project.ingest_module(&mut ham, &module).unwrap();

    // The paper's motivating link: documentation references code.
    let reference = doc
        .add_reference(&mut ham, storage_sec, 4, nodes.module)
        .unwrap();
    let (target, _) = ham
        .get_to_node(MAIN_CONTEXT, reference, Time::CURRENT)
        .unwrap();
    assert_eq!(target, nodes.module);

    // One query spans both: everything in the graph with an icon.
    let sg = ham
        .get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            &Predicate::parse("exists(icon)").unwrap(),
            &Predicate::True,
            &[],
            &[],
        )
        .unwrap();
    // design root + section + module + procedure
    assert_eq!(sg.nodes.len(), 4);

    // An annotation on the code node, from the document layer.
    let note = annotate(
        &mut ham,
        MAIN_CONTEXT,
        nodes.module,
        0,
        "reviewed 1986-05-28\n",
    )
    .unwrap();
    let view = view_node(&mut ham, MAIN_CONTEXT, nodes.module, Time::CURRENT).unwrap();
    assert!(view.links.iter().any(|l| l.target == note.node));
}

#[test]
fn compile_document_release_and_recover() {
    let dir = tmpdir("lifecycle");
    let pid;
    let module_node;
    let release;
    {
        let (mut ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        pid = p;
        let project = CaseProject::new(MAIN_CONTEXT);
        let m = parse_module("MODULE App;\nPROCEDURE Go;\nEND Go;\nEND App.\n").unwrap();
        let nodes = project.ingest_module(&mut ham, &m).unwrap();
        module_node = nodes.module;
        install_recompile_demon(&mut ham, MAIN_CONTEXT).unwrap();
        let dirty = ham.get_attribute_index(MAIN_CONTEXT, model::DIRTY).unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, module_node, dirty, Value::Bool(true))
            .unwrap();
        let stats = compile_pass(&mut ham, &project).unwrap();
        assert!(stats.compiled.contains(&module_node));
        release = create_release(&mut ham, MAIN_CONTEXT, "gold", &[module_node]).unwrap();
        // Crash without checkpoint: WAL must carry everything.
    }
    let (mut ham, _) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
    let project = CaseProject::new(MAIN_CONTEXT);
    // The compiled object survived.
    let objs = project
        .linked_targets(
            &ham,
            module_node,
            neptune::case::model::relation::COMPILES_INTO,
        )
        .unwrap();
    assert_eq!(objs.len(), 1);
    // The release still checks out.
    let members = checkout(&mut ham, MAIN_CONTEXT, release).unwrap();
    assert_eq!(members.len(), 1);
    assert!(String::from_utf8_lossy(&members[0].contents).contains("MODULE App"));
    // And the demon is still installed (it was versioned graph state).
    assert_eq!(
        ham.get_graph_demons(MAIN_CONTEXT, Time::CURRENT)
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn server_clients_see_document_layer_structures() {
    let dir = tmpdir("server-doc");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "spec", "Spec").unwrap();
    doc.add_section(&mut ham, doc.root, 10, "Scope", "Everything.\n")
        .unwrap();
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // The client traverses the same structure with raw HAM calls.
    let sg = c
        .linearize_graph(
            MAIN_CONTEXT,
            doc.root,
            Time::CURRENT,
            "document = \"spec\"",
            "relation = isPartOf",
            vec![],
            vec![],
        )
        .unwrap();
    assert_eq!(sg.nodes.len(), 2);
    server.stop();
}

#[test]
fn private_world_workflow_with_documents() {
    let dir = tmpdir("private-doc");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let doc = Document::create(&mut ham, MAIN_CONTEXT, "spec", "Spec").unwrap();
    let sec = doc
        .add_section(&mut ham, doc.root, 10, "API", "v1 api\n")
        .unwrap();

    // Designer forks a world and rewrites the section.
    let world = ham.create_context(MAIN_CONTEXT).unwrap();
    let opened = ham.open_node(world, sec, Time::CURRENT, &[]).unwrap();
    ham.modify_node(
        world,
        sec,
        opened.current_time,
        b"API\nv2 api, redesigned\n".to_vec(),
        &opened.link_pts,
    )
    .unwrap();

    // Reviewer diffs the worlds via the diff browser on the private context.
    let rows =
        diffview::side_by_side(&ham, world, sec, opened.current_time, Time::CURRENT).unwrap();
    assert!(rows.iter().any(|r| r.marker != ' '));

    // Merge back; the mainline document now reads v2.
    ham.merge_context(world, ConflictPolicy::Fail).unwrap();
    let text = hardcopy(&mut ham, &doc, Time::CURRENT).unwrap();
    assert!(text.contains("v2 api"));
    // History on main still shows v1 at the old time.
    let (major, _) = ham.get_node_versions(MAIN_CONTEXT, sec).unwrap();
    let old = ham
        .open_node(MAIN_CONTEXT, sec, major[1].time, &[])
        .unwrap();
    assert!(String::from_utf8_lossy(&old.contents).contains("v1 api"));
}

#[test]
fn checkpoint_then_destroy_graph() {
    let dir = tmpdir("destroy");
    let (mut ham, pid, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.checkpoint().unwrap();
    drop(ham);
    // Wrong project id refuses.
    assert!(Ham::destroy_graph(ProjectId(pid.0.wrapping_add(1)), &dir).is_err());
    assert!(dir.exists());
    Ham::destroy_graph(pid, &dir).unwrap();
    assert!(!dir.exists());
}
