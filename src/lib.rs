//! # Neptune — a hypertext system for CAD applications
//!
//! A from-scratch Rust reproduction of *"Neptune: a Hypertext System for
//! CAD Applications"* (Norman Delisle & Mayer Schwartz, Tektronix
//! Laboratories, SIGMOD 1986): the **Hypertext Abstract Machine (HAM)** —
//! a transaction-based, fully versioned hypergraph store — together with
//! the layers the paper builds on and around it.
//!
//! ## Layers (paper §3)
//!
//! * [`storage`] — substrate: backward-delta archives (RCS-style), a
//!   write-ahead log, Myers diff, checksummed snapshots.
//! * [`ham`] — the HAM itself: every operation of the paper's appendix
//!   ([`ham::Ham`]), predicates, demons, transactions, and the §5
//!   extensions (multiple version threads, parameterized demons).
//! * [`server`] — the central multi-user server and its RPC client.
//! * [`document`] — the documentation application layer and the paper's
//!   browsers (Figures 1–3).
//! * [`case`] — the CASE application layer: Modula-2 ingestion, a
//!   demon-driven incremental compiler, configuration management.
//! * [`check`] — the audit layer: an fsck-style store verifier
//!   ([`check::verify_store`]) and lints over a project's module graph.
//! * [`obs`] — observability: a zero-dependency metrics registry and
//!   tracing spans wired through all of the above (DESIGN.md §10).
//!
//! ## Quickstart
//!
//! ```
//! use neptune::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("neptune-doc-quickstart-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let (mut ham, _project, _t) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
//!
//! // Create two nodes and a link between them.
//! let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
//! ham.modify_node(MAIN_CONTEXT, a, t, b"hello hypertext\n".to_vec(), &[]).unwrap();
//! let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
//! ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 5), LinkPt::current(b, 0)).unwrap();
//!
//! // Attach an attribute and query for it.
//! let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
//! ham.set_node_attribute_value(MAIN_CONTEXT, a, doc, Value::str("requirements")).unwrap();
//! let pred = Predicate::parse("document = requirements").unwrap();
//! let hits = ham
//!     .get_graph_query(MAIN_CONTEXT, Time::CURRENT, &pred, &Predicate::True, &[], &[])
//!     .unwrap();
//! assert_eq!(hits.nodes.len(), 1);
//! ```

#![forbid(unsafe_code)]
pub use neptune_case as case;
pub use neptune_check as check;
pub use neptune_document as document;
pub use neptune_ham as ham;
pub use neptune_obs as obs;
pub use neptune_relational as relational;
pub use neptune_server as server;
pub use neptune_storage as storage;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use neptune_case::{compile_pass, install_recompile_demon, parse_module, CaseProject};
    pub use neptune_check::{verify_store, Finding, Severity};
    pub use neptune_document::{annotate, hardcopy, Document, DocumentBrowser, GraphBrowser};
    pub use neptune_ham::{
        AttributeIndex, ContextId, DemonSpec, Event, Ham, HamError, LinkIndex, LinkPt, Machine,
        NodeIndex, Predicate, ProjectId, Protections, Time, Value, MAIN_CONTEXT,
    };
    pub use neptune_server::{serve, Client};
}
