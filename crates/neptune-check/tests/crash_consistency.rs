//! Recovery-equivalence harness: a fault injected at *every* I/O step of a
//! randomized workload must leave a store that recovers to exactly the
//! prefix of operations whose commits became durable, with a clean
//! `verify_store` report.
//!
//! The protocol, per (fault kind, fault index) cell:
//!
//! 1. Replay a seeded workload through a [`FaultVfs`] with the fault armed,
//!    stopping at the first error.
//! 2. Reopen the *working tree* (the crash where every issued write reached
//!    disk): the state must be the completed prefix, or the prefix plus the
//!    in-flight operation if its commit record made it out.
//! 3. Freeze the *durable image* (the crash where nothing unsynced
//!    survived), materialize it, and reopen: the state must be **exactly**
//!    the completed prefix — commits are synced before they report success.
//! 4. `verify_store` on the durable image must report nothing.
//!
//! Oracle fingerprints come from one fault-free run of the same workload.
//! Seed and workload size are overridable for reproduction:
//! `NEPTUNE_FAULT_SEED=0x5EED NEPTUNE_FAULT_OPS=220 cargo test -p
//! neptune-check --test crash_consistency`. Every assertion message carries
//! the seed.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use neptune_check::verify_store;
use neptune_ham::context::ConflictPolicy;
use neptune_ham::ham::WAL_FILE;
use neptune_ham::types::{LinkPt, NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, ShardedHam, Value};
use neptune_storage::fault::{FaultKind, FaultVfs};
use neptune_storage::testutil::XorShift;

/// Arm the flight recorder for the sweep: every fault cell runs under a
/// `check.cell` trace root (so the HAM/storage spans of the ops leading up
/// to a failure are in the recorder), and a panicking assertion dumps the
/// recorder to `NEPTUNE_TRACE_DUMP` (set by ci.sh / ci.yml) before the
/// test harness unwinds.
fn obs_cell(kind: FaultKind, at: u64) -> neptune_obs::LocalTrace {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(neptune_obs::install_panic_hook);
    neptune_obs::local_root("check.cell", &format!("{kind} at {at}"))
}

fn seed() -> u64 {
    match std::env::var("NEPTUNE_FAULT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("NEPTUNE_FAULT_SEED not a u64: {s:?}"))
        }
        Err(_) => 0xC0FFEE,
    }
}

fn op_count() -> usize {
    match std::env::var("NEPTUNE_FAULT_OPS") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("NEPTUNE_FAULT_OPS not a usize: {s:?}")),
        Err(_) => 220,
    }
}

fn tmpdir(name: &str) -> PathBuf {
    // The sweep issues hundreds of thousands of real fsyncs; on a memory
    // filesystem they are free, on a disk they dominate the runtime.
    let base = Path::new("/dev/shm");
    let base = if base.is_dir() {
        base.to_path_buf()
    } else {
        std::env::temp_dir()
    };
    let dir = base.join(format!("neptune-crashc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ===========================================================================
// Workload
// ===========================================================================

#[derive(Debug, Clone)]
enum Op {
    AddNode(bool),
    Modify(usize, Vec<u8>),
    DeleteNode(usize),
    AddLink(usize, usize, u8),
    SetAttr(usize, u8, i64),
    Txn(Vec<(usize, u8, i64)>, bool), // attr writes, commit?
    Checkpoint,
    Fork,
    Merge(usize),
}

const ATTRS: [&str; 3] = ["document", "status", "owner"];

fn gen_op(rng: &mut XorShift) -> Op {
    // Node births and deaths are nearly balanced: every live node is
    // re-mirrored by every checkpoint, so the population size multiplies
    // the whole sweep's fault-point count.
    match rng.below(48) {
        0..=5 => Op::AddNode(rng.chance(1, 2)),
        6..=15 => {
            let target = rng.next_u64() as usize;
            let len = rng.below(24) as usize;
            Op::Modify(target, rng.bytes(len))
        }
        16..=20 => Op::DeleteNode(rng.next_u64() as usize),
        21..=26 => Op::AddLink(
            rng.next_u64() as usize,
            rng.next_u64() as usize,
            rng.below(256) as u8,
        ),
        27..=34 => Op::SetAttr(
            rng.next_u64() as usize,
            rng.below(3) as u8,
            rng.next_u64() as i64,
        ),
        35..=42 => {
            let count = 1 + rng.below(3) as usize;
            let writes = (0..count)
                .map(|_| {
                    (
                        rng.next_u64() as usize,
                        rng.below(3) as u8,
                        rng.next_u64() as i64,
                    )
                })
                .collect();
            Op::Txn(writes, rng.chance(5, 8))
        }
        43 => Op::Checkpoint,
        44..=45 => Op::Fork,
        _ => Op::Merge(rng.next_u64() as usize),
    }
}

fn gen_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = XorShift::new(seed);
    (0..count).map(|_| gen_op(&mut rng)).collect()
}

fn live_nodes(ham: &Ham) -> Vec<NodeIndex> {
    ham.graph(MAIN_CONTEXT)
        .unwrap()
        .nodes()
        .filter(|n| n.exists_at(Time::CURRENT))
        .map(|n| n.id)
        .collect()
}

/// Run a step's operations inside one explicit transaction, so the step
/// commits (and becomes durable) atomically: outside a transaction, every
/// HAM call is its own auto-commit, and a fault landing between two of
/// them would leave a state *between* two step fingerprints.
fn step_txn(
    ham: &mut Ham,
    body: impl FnOnce(&mut Ham) -> neptune_ham::Result<()>,
) -> neptune_ham::Result<()> {
    ham.begin_transaction()?;
    match body(ham) {
        Ok(()) => ham.commit_transaction(),
        Err(e) => {
            // Aborting is pure in-memory rollback; keep the original error.
            let _ = ham.abort_transaction();
            Err(e)
        }
    }
}

/// Apply one workload step. Steps are total in a fault-free run (the oracle
/// unwraps nothing and never fails); under fault injection any error
/// propagates so the driver can stop at the failure point.
fn apply(ham: &mut Ham, op: &Op) -> neptune_ham::Result<()> {
    let nodes = live_nodes(ham);
    match op {
        Op::AddNode(keep) => {
            step_txn(ham, |ham| ham.add_node(MAIN_CONTEXT, *keep).map(|_| ()))?;
        }
        Op::Modify(i, contents) => {
            if nodes.is_empty() {
                return Ok(());
            }
            let node = nodes[i % nodes.len()];
            step_txn(ham, |ham| {
                let opened = ham.open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])?;
                // Attachments must stay inside the (possibly shorter) new
                // contents; all workload links track the current version,
                // so moving them is allowed.
                let pts: Vec<LinkPt> = opened
                    .link_pts
                    .iter()
                    .map(|pt| {
                        let mut pt = *pt;
                        pt.position = pt.position.min(contents.len() as u64);
                        pt
                    })
                    .collect();
                ham.modify_node(
                    MAIN_CONTEXT,
                    node,
                    opened.current_time,
                    contents.clone(),
                    &pts,
                )?;
                Ok(())
            })?;
        }
        Op::DeleteNode(i) => {
            if !nodes.is_empty() {
                let node = nodes[i % nodes.len()];
                step_txn(ham, |ham| ham.delete_node(MAIN_CONTEXT, node))?;
            }
        }
        Op::AddLink(a, b, offset) => {
            if !nodes.is_empty() {
                let from = nodes[a % nodes.len()];
                let to = nodes[b % nodes.len()];
                step_txn(ham, |ham| {
                    let len = ham
                        .open_node(MAIN_CONTEXT, from, Time::CURRENT, &[])?
                        .contents
                        .len() as u64;
                    ham.add_link(
                        MAIN_CONTEXT,
                        LinkPt::current(from, (*offset as u64).min(len)),
                        LinkPt::current(to, 0),
                    )
                    .map(|_| ())
                })?;
            }
        }
        Op::SetAttr(i, a, v) => {
            if !nodes.is_empty() {
                let node = nodes[i % nodes.len()];
                step_txn(ham, |ham| {
                    let attr = ham.get_attribute_index(MAIN_CONTEXT, ATTRS[*a as usize])?;
                    ham.set_node_attribute_value(MAIN_CONTEXT, node, attr, Value::Int(*v))?;
                    Ok(())
                })?;
            }
        }
        Op::Txn(writes, commit) => {
            ham.begin_transaction()?;
            let mut body = || -> neptune_ham::Result<()> {
                for (i, a, v) in writes {
                    let nodes = live_nodes(ham);
                    if nodes.is_empty() {
                        continue;
                    }
                    let attr = ham.get_attribute_index(MAIN_CONTEXT, ATTRS[*a as usize])?;
                    ham.set_node_attribute_value(
                        MAIN_CONTEXT,
                        nodes[i % nodes.len()],
                        attr,
                        Value::Int(*v),
                    )?;
                }
                Ok(())
            };
            match body() {
                Ok(()) if *commit => ham.commit_transaction()?,
                Ok(()) => ham.abort_transaction()?,
                Err(e) => {
                    let _ = ham.abort_transaction();
                    return Err(e);
                }
            }
        }
        Op::Checkpoint => ham.checkpoint()?,
        Op::Fork => {
            step_txn(ham, |ham| {
                let ctx = ham.create_context(MAIN_CONTEXT)?;
                ham.add_node(ctx, true)?;
                Ok(())
            })?;
        }
        Op::Merge(i) => {
            let children: Vec<_> = ham
                .contexts()
                .into_iter()
                .filter(|c| *c != MAIN_CONTEXT)
                .collect();
            if !children.is_empty() {
                let child = children[i % children.len()];
                step_txn(ham, |ham| {
                    ham.merge_context(child, ConflictPolicy::PreferChild)
                        .map(|_| ())
                })?;
            }
        }
    }
    Ok(())
}

/// Full observable fingerprint of a Ham: every context, every node, link,
/// attribute, and demon at every historical time.
fn fingerprint(ham: &Ham) -> String {
    let mut out = String::new();
    for ctx in ham.contexts() {
        let graph = ham.graph(ctx).unwrap();
        out.push_str(&format!("context {} clock {}\n", ctx.0, graph.now().0));
        for t in 1..=graph.now().0 {
            let time = Time(t);
            for n in graph.nodes() {
                if !n.exists_at(time) {
                    continue;
                }
                out.push_str(&format!("t{t} node {} ", n.id.0));
                if n.is_archive() {
                    if let Ok(c) = n.contents_at(time) {
                        out.push_str(&format!("{c:?} "));
                    }
                }
                for (attr, value) in n.attrs.all_at(time) {
                    out.push_str(&format!("{}={} ", attr.0, value));
                }
                out.push('\n');
            }
            for l in graph.links() {
                if l.exists_at(time) {
                    out.push_str(&format!(
                        "t{t} link {} {}->{}\n",
                        l.id.0, l.from.node.0, l.to.node.0
                    ));
                }
            }
        }
    }
    out
}

/// One fault-free run of the workload, recording the fingerprint after
/// store creation and after each step. `oracle()[k]` is the expected state
/// of a store that completed exactly `k` steps.
fn oracle() -> &'static (Vec<Op>, Vec<String>) {
    static ORACLE: OnceLock<(Vec<Op>, Vec<String>)> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let ops = gen_ops(seed(), op_count());
        let dir = tmpdir("oracle");
        let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        let mut fps = Vec::with_capacity(ops.len() + 1);
        fps.push(fingerprint(&ham));
        for (i, op) in ops.iter().enumerate() {
            apply(&mut ham, op)
                .unwrap_or_else(|e| panic!("oracle step {i} failed (seed {:#x}): {e}", seed()));
            fps.push(fingerprint(&ham));
        }
        drop(ham);
        // The workload itself must be clean, or every sweep cell inherits
        // the same findings and the harness tests nothing.
        assert_clean(&dir, "oracle final state");
        let _ = std::fs::remove_dir_all(&dir);
        (ops, fps)
    })
}

fn assert_clean(dir: &Path, what: &str) {
    let findings = verify_store(dir);
    assert!(
        findings.is_empty(),
        "{what} (seed {:#x}): verify_store found {:?}",
        seed(),
        findings
    );
}

// ===========================================================================
// The matrix sweep
// ===========================================================================

/// Run the whole workload with `kind` armed at matching-op index `at`.
/// Returns `None` once `at` is past every fault point (the run completed
/// without injecting anything).
fn fault_run(kind: FaultKind, at: u64) -> Option<()> {
    let _trace = obs_cell(kind, at);
    let (ops, fps) = oracle();
    let s = seed();
    let dir = tmpdir(&format!("run-{kind}-{at}"));
    let vfs = FaultVfs::new();
    let (mut ham, _, _) =
        Ham::create_graph_with(Arc::new(vfs.clone()), &dir, Protections::DEFAULT).unwrap();
    vfs.arm(kind, at);

    let mut completed = 0;
    let mut failed = false;
    for op in ops {
        match apply(&mut ham, op) {
            Ok(()) => completed += 1,
            Err(e) => {
                assert!(
                    vfs.injected() > 0,
                    "{kind} at {at} (seed {s:#x}): step {completed} failed \
                     without a fault being injected: {e}"
                );
                failed = true;
                break;
            }
        }
    }
    drop(ham);
    if vfs.injected() == 0 {
        // `at` outlasted every matching op in the workload: sweep is done.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!failed);
        return None;
    }

    // Crash image A: every issued write reached disk. Recovery may include
    // the in-flight operation iff its commit record got out, so the state
    // is one of the two adjacent prefixes.
    let (wham, _, _) = Ham::open_existing(&dir).unwrap_or_else(|e| {
        panic!("{kind} at {at} (seed {s:#x}): working tree failed to reopen: {e}")
    });
    let wfp = fingerprint(&wham);
    drop(wham);
    let hi = (completed + 1).min(fps.len() - 1);
    if wfp != fps[completed] && wfp != fps[hi] {
        eprintln!("=== failing step: {:?}", ops[completed]);
        for (a, b) in wfp.lines().zip(fps[completed].lines()) {
            if a != b {
                eprintln!("  working: {a}\n  expect : {b}");
            }
        }
        panic!(
            "{kind} at {at} (seed {s:#x}): working-tree recovery is not a \
             prefix of the workload ({completed} steps completed)"
        );
    }

    // Crash image B: nothing unsynced survived. Commits sync before they
    // report success, so recovery must be exactly the completed prefix.
    vfs.power_off();
    vfs.materialize_durable(&dir).unwrap();
    let (dham, _, _) = Ham::open_existing(&dir).unwrap_or_else(|e| {
        panic!("{kind} at {at} (seed {s:#x}): durable image failed to reopen: {e}")
    });
    // verify_open_ham instead of verify_store: one open serves both the
    // integrity scan and the fingerprint. (The durable image never holds a
    // torn WAL tail — only synced bytes — so scanning after recovery does
    // not mask tail truncation.)
    let findings = neptune_check::verify_open_ham(&dham);
    assert!(
        findings.is_empty(),
        "{kind} at {at} durable image (seed {s:#x}): verify found {findings:?}"
    );
    let dfp = fingerprint(&dham);
    drop(dham);
    assert_eq!(
        dfp, fps[completed],
        "{kind} at {at} (seed {s:#x}): durable recovery lost or invented \
         committed state ({completed} steps completed)"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Some(())
}

fn sweep(kind: FaultKind) {
    let mut at = 0;
    while fault_run(kind, at).is_some() {
        at += 1;
    }
    assert!(at > 0, "{kind}: workload produced no matching fault points");
}

#[test]
fn recovery_equivalence_fail_write() {
    sweep(FaultKind::FailWrite);
}

#[test]
fn recovery_equivalence_short_write() {
    sweep(FaultKind::ShortWrite);
}

#[test]
fn recovery_equivalence_fail_sync() {
    sweep(FaultKind::FailSync);
}

#[test]
fn recovery_equivalence_torn_rename() {
    sweep(FaultKind::TornRename);
}

#[test]
fn recovery_equivalence_power_cut() {
    sweep(FaultKind::PowerCut);
}

// ===========================================================================
// Checkpoint crash-point matrix
// ===========================================================================

/// Deterministic store with history, links, attributes, a forked context,
/// and committed-but-not-checkpointed transactions — the state every
/// checkpoint fault below must preserve.
fn build_checkpoint_store(dir: &Path, vfs: &FaultVfs) -> Ham {
    let (mut ham, _, _) =
        Ham::create_graph_with(Arc::new(vfs.clone()), dir, Protections::DEFAULT).unwrap();
    let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let (c, _) = ham.add_node(MAIN_CONTEXT, false).unwrap();
    for (i, n) in [a, b].iter().enumerate() {
        let opened = ham.open_node(MAIN_CONTEXT, *n, Time::CURRENT, &[]).unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            *n,
            opened.current_time,
            format!("contents {i}").into_bytes(),
            &opened.link_pts,
        )
        .unwrap();
    }
    ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 3), LinkPt::current(b, 0))
        .unwrap();
    let attr = ham.get_attribute_index(MAIN_CONTEXT, "status").unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, a, attr, Value::Int(7))
        .unwrap();
    // Mid-history checkpoint so the store carries an earlier fold, then
    // more committed work on top of it, plus a deleted node and a fork.
    ham.checkpoint().unwrap();
    ham.delete_node(MAIN_CONTEXT, c).unwrap();
    let ctx = ham.create_context(MAIN_CONTEXT).unwrap();
    ham.add_node(ctx, true).unwrap();
    ham.begin_transaction().unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, b, attr, Value::Int(9))
        .unwrap();
    ham.commit_transaction().unwrap();
    ham
}

/// Satellite: fault at every I/O step of the checkpoint pipeline — the
/// snapshot write and rename, each blob-mirror put/chmod/delete, the blob
/// directory fsync, and the WAL truncate/record/sync — and assert the
/// store reopens to the same state with history intact, from both crash
/// images.
#[test]
fn checkpoint_crash_point_matrix() {
    for kind in FaultKind::ALL {
        let mut at = 0;
        loop {
            let _trace = obs_cell(kind, at);
            let dir = tmpdir(&format!("ckpt-{kind}-{at}"));
            let vfs = FaultVfs::new();
            let mut ham = build_checkpoint_store(&dir, &vfs);
            let before = fingerprint(&ham);
            vfs.arm(kind, at);
            let r = ham.checkpoint();
            drop(ham);
            if vfs.injected() == 0 {
                r.unwrap_or_else(|e| panic!("{kind}: clean checkpoint failed: {e}"));
                let _ = std::fs::remove_dir_all(&dir);
                break;
            }
            // A checkpoint changes representation, never state: both crash
            // images must reopen to the exact pre-checkpoint fingerprint.
            let (wham, _, _) = Ham::open_existing(&dir).unwrap_or_else(|e| {
                panic!(
                    "{kind} at {at}: working tree failed to reopen after faulted checkpoint: {e}"
                )
            });
            assert_eq!(fingerprint(&wham), before, "{kind} at {at}: working tree");
            drop(wham);
            vfs.power_off();
            vfs.materialize_durable(&dir).unwrap();
            assert_clean(&dir, &format!("checkpoint {kind} at {at}"));
            let (dham, _, _) = Ham::open_existing(&dir).unwrap_or_else(|e| {
                panic!(
                    "{kind} at {at}: durable image failed to reopen after faulted checkpoint: {e}"
                )
            });
            assert_eq!(fingerprint(&dham), before, "{kind} at {at}: durable image");
            drop(dham);
            let _ = std::fs::remove_dir_all(&dir);
            at += 1;
        }
    }
}

/// Satellite: sweep the anchor-persistence I/O. A node with a deep history
/// persists its skip-delta ladder inside the snapshot payload; fault every
/// I/O step of the checkpoint that rewrites it and assert that a torn
/// anchor write never makes the store unopenable and never changes
/// recovered contents (anchors are derived data — the unit delta chain is
/// the source of truth, and the fingerprint reads every version of every
/// node through the recovered archive).
#[test]
fn anchor_persistence_checkpoint_fault_sweep() {
    fn build_deep_store(dir: &Path, vfs: &FaultVfs) -> (Ham, NodeIndex) {
        let (mut ham, _, _) =
            Ham::create_graph_with(Arc::new(vfs.clone()), dir, Protections::DEFAULT).unwrap();
        let (n, mut t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        // 34 versions: deep enough for two level-0 skip rungs (span 16).
        for i in 0..34 {
            t = ham
                .modify_node(
                    MAIN_CONTEXT,
                    n,
                    t,
                    format!("deep history version {i}\n").into_bytes(),
                    &[],
                )
                .unwrap();
        }
        // First checkpoint persists the ladder; the swept checkpoint below
        // must atomically replace it.
        ham.checkpoint().unwrap();
        for i in 34..38 {
            t = ham
                .modify_node(
                    MAIN_CONTEXT,
                    n,
                    t,
                    format!("deep history version {i}\n").into_bytes(),
                    &[],
                )
                .unwrap();
        }
        (ham, n)
    }

    for kind in FaultKind::ALL {
        let mut at = 0;
        loop {
            let _trace = obs_cell(kind, at);
            let dir = tmpdir(&format!("anchor-{kind}-{at}"));
            let vfs = FaultVfs::new();
            let (mut ham, node) = build_deep_store(&dir, &vfs);
            let before = fingerprint(&ham);
            vfs.arm(kind, at);
            let r = ham.checkpoint();
            drop(ham);
            if vfs.injected() == 0 {
                r.unwrap_or_else(|e| panic!("{kind}: clean checkpoint failed: {e}"));
                // The clean run must actually exercise persisted anchors.
                let (ham, _, _) = Ham::open_existing(&dir).unwrap();
                let skips = ham
                    .graph(MAIN_CONTEXT)
                    .unwrap()
                    .node(node)
                    .unwrap()
                    .archive()
                    .expect("deep node is an archive")
                    .skip_count();
                assert!(skips > 0, "{kind}: snapshot should carry skip rungs");
                drop(ham);
                let _ = std::fs::remove_dir_all(&dir);
                break;
            }
            let (wham, _, _) = Ham::open_existing(&dir).unwrap_or_else(|e| {
                panic!("{kind} at {at}: torn anchor write made the store unopenable: {e}")
            });
            assert_eq!(fingerprint(&wham), before, "{kind} at {at}: working tree");
            drop(wham);
            vfs.power_off();
            vfs.materialize_durable(&dir).unwrap();
            assert_clean(&dir, &format!("anchor sweep {kind} at {at}"));
            let (dham, _, _) = Ham::open_existing(&dir)
                .unwrap_or_else(|e| panic!("{kind} at {at}: durable image failed to reopen: {e}"));
            assert_eq!(fingerprint(&dham), before, "{kind} at {at}: durable image");
            drop(dham);
            let _ = std::fs::remove_dir_all(&dir);
            at += 1;
        }
    }
}

// ===========================================================================
// Ordering-bug regressions
// ===========================================================================

/// Regression: the WAL must not be truncated until every checkpoint side
/// effect has succeeded. Before the reorder, `Ham::checkpoint` truncated
/// the log and *then* mirrored blobs, so a mirror failure left the store
/// with no way to retry from the full log.
#[test]
fn blob_mirror_failure_leaves_wal_untruncated() {
    // Dry run to locate the first blob-mirror write among the write-class
    // operations a checkpoint issues.
    let probe_dir = tmpdir("mirror-probe");
    let probe_vfs = FaultVfs::new();
    let mut probe = build_checkpoint_store(&probe_dir, &probe_vfs);
    probe_vfs.clear_op_log();
    probe.checkpoint().unwrap();
    const WRITE_OPS: [&str; 5] = ["create", "append", "set_len", "remove", "set_permissions"];
    let blob_put_at = probe_vfs
        .op_log()
        .iter()
        .filter(|op| WRITE_OPS.iter().any(|w| op.starts_with(w)))
        .position(|op| op.contains(".blob.tmp"))
        .expect("checkpoint must mirror blobs") as u64;
    drop(probe);
    let _ = std::fs::remove_dir_all(&probe_dir);

    let dir = tmpdir("mirror-keeps-wal");
    let vfs = FaultVfs::new();
    let mut ham = build_checkpoint_store(&dir, &vfs);
    let before = fingerprint(&ham);
    let wal_len = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    assert!(wal_len > 8, "expected committed records in the WAL");

    vfs.arm(FaultKind::FailWrite, blob_put_at);
    let err = ham.checkpoint().unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    let log = vfs.op_log();
    assert!(
        log.last().unwrap().contains(".blob.tmp"),
        "fault was meant to hit the blob mirror, hit {:?}",
        log.last()
    );
    drop(ham);

    assert_eq!(
        std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(),
        wal_len,
        "a failed blob mirror must leave the WAL untruncated"
    );
    // And the failure is recoverable: reopen, retry, verify.
    let (mut ham, _, _) = Ham::open_existing(&dir).unwrap();
    assert_eq!(fingerprint(&ham), before);
    ham.checkpoint().unwrap();
    drop(ham);
    assert_clean(&dir, "retried checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a failed fsync of the graph directory after the snapshot
/// rename must fail the checkpoint. Before the fix it was swallowed, so
/// the WAL was truncated on the strength of a rename that a power cut
/// could undo — losing every committed transaction since the *previous*
/// checkpoint.
#[test]
fn swallowed_snapshot_dir_fsync_would_lose_commits() {
    let dir = tmpdir("dirsync-loss");
    let vfs = FaultVfs::new();
    let mut ham = build_checkpoint_store(&dir, &vfs);
    let before = fingerprint(&ham);

    // Sync-class ops in a checkpoint: 0 = snapshot tmp file, 1 = graph
    // directory (the rename's durability point).
    vfs.arm(FaultKind::FailSync, 1);
    let err = ham.checkpoint().unwrap_err();
    assert!(err.to_string().contains("fail_sync"), "{err}");
    assert!(
        vfs.op_log().last().unwrap().starts_with("sync_dir"),
        "fault was meant to hit the directory fsync, hit {:?}",
        vfs.op_log().last()
    );
    drop(ham);

    // Power dies. The snapshot rename was never durable; the full WAL must
    // still be, or the committed transactions above are gone.
    vfs.power_off();
    vfs.materialize_durable(&dir).unwrap();
    assert_clean(&dir, "durable image after swallowed-sync crash");
    let (ham, _, _) = Ham::open_existing(&dir).unwrap();
    assert_eq!(
        fingerprint(&ham),
        before,
        "committed transactions lost: the checkpoint truncated the WAL \
         without the snapshot rename being durable"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a crash *between* the snapshot rename becoming durable and
/// the WAL truncation becoming durable must not replay the folded
/// transactions on top of the snapshot that already contains them. The
/// snapshot's embedded boundary LSN closes this window.
#[test]
fn crash_between_snapshot_and_truncate_does_not_double_apply() {
    // Dry run to locate the WAL truncation inside the checkpoint pipeline.
    let probe_dir = tmpdir("double-apply-probe");
    let probe_vfs = FaultVfs::new();
    let mut probe = build_checkpoint_store(&probe_dir, &probe_vfs);
    probe_vfs.clear_op_log();
    probe.checkpoint().unwrap();
    let set_len_at = probe_vfs
        .op_log()
        .iter()
        .position(|op| op.starts_with("set_len"))
        .expect("checkpoint must truncate the WAL") as u64;
    drop(probe);
    let _ = std::fs::remove_dir_all(&probe_dir);

    // Real run: power dies at exactly that operation. Every side effect —
    // including the snapshot rename and its directory fsync — is already
    // durable; the old WAL content still is too.
    let dir = tmpdir("double-apply");
    let vfs = FaultVfs::new();
    let mut ham = build_checkpoint_store(&dir, &vfs);
    let before = fingerprint(&ham);
    vfs.arm(FaultKind::PowerCut, set_len_at);
    ham.checkpoint().unwrap_err();
    assert!(vfs.is_powered_off());
    assert!(
        vfs.op_log().last().unwrap().starts_with("set_len"),
        "power cut was meant to hit the WAL truncation, hit {:?}",
        vfs.op_log().last()
    );
    drop(ham);

    vfs.materialize_durable(&dir).unwrap();
    assert_clean(&dir, "durable image in the snapshot/truncate window");
    let (ham, _, _) = Ham::open_existing(&dir).unwrap();
    assert_eq!(
        fingerprint(&ham),
        before,
        "WAL records already folded into the snapshot were applied again"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ===========================================================================
// Sharded recovery sweep
// ===========================================================================
//
// The single-machine matrix above proves exact prefix recovery. Sharding
// relaxes that in exactly one documented way (DESIGN.md §13): a cross-shard
// merge is two per-shard commits under one logical sequence number, and a
// crash between them may persist the parent half alone. So the sharded
// sweep asserts *per-context* prefix equivalence — every context recovers
// to its state at the completed prefix or at the next step — plus a clean
// `verify_sharded` report over the merged cross-shard topology.

/// Each sharded op is one logical commit (cross-shard merges: two commits
/// under one sequence), so per-context states line up with step indices.
#[derive(Debug, Clone)]
enum SOp {
    Fork(usize),
    AddNode(usize),
    ModifyNode(usize, Vec<u8>),
    Merge(usize),
    Checkpoint,
}

fn gen_sharded_ops(seed: u64, count: usize) -> Vec<SOp> {
    let mut rng = XorShift::new(seed);
    (0..count)
        .map(|_| match rng.below(16) {
            0..=2 => SOp::Fork(rng.next_u64() as usize),
            3..=4 => SOp::Merge(rng.next_u64() as usize),
            5 => SOp::Checkpoint,
            6..=10 => SOp::AddNode(rng.next_u64() as usize),
            _ => {
                let len = rng.below(16) as usize;
                SOp::ModifyNode(rng.next_u64() as usize, rng.bytes(len))
            }
        })
        .collect()
}

fn apply_sharded(
    sharded: &ShardedHam,
    ctxs: &mut Vec<neptune_ham::ContextId>,
    op: &SOp,
) -> neptune_ham::Result<()> {
    match op {
        SOp::Fork(i) => {
            let parent = ctxs[i % ctxs.len()];
            let child = sharded.create_context(parent)?;
            ctxs.push(child);
        }
        SOp::AddNode(i) => {
            let ctx = ctxs[i % ctxs.len()];
            let mut guard = sharded.lock_home(ctx)?;
            guard.add_node(ctx, true)?;
        }
        SOp::ModifyNode(i, contents) => {
            let ctx = ctxs[i % ctxs.len()];
            let mut guard = sharded.lock_home(ctx)?;
            let nodes: Vec<NodeIndex> = guard
                .graph(ctx)?
                .nodes()
                .filter(|n| n.exists_at(Time::CURRENT))
                .map(|n| n.id)
                .collect();
            if nodes.is_empty() {
                return Ok(());
            }
            let node = nodes[i % nodes.len()];
            let opened = guard.open_node(ctx, node, Time::CURRENT, &[])?;
            guard.modify_node(ctx, node, opened.current_time, contents.clone(), &[])?;
        }
        SOp::Merge(i) => {
            let children: Vec<_> = ctxs
                .iter()
                .copied()
                .filter(|c| *c != MAIN_CONTEXT)
                .collect();
            if !children.is_empty() {
                let child = children[i % children.len()];
                sharded
                    .merge_context(child, ConflictPolicy::PreferChild)
                    .map(|_| ())?;
            }
        }
        SOp::Checkpoint => sharded.checkpoint()?,
    }
    Ok(())
}

/// Per-context observable fingerprint of a sharded store's live machines.
fn sharded_fps(sharded: &ShardedHam) -> BTreeMap<u64, String> {
    let mut out = BTreeMap::new();
    for ctx in sharded.live_contexts() {
        let guard = sharded.lock_shard(sharded.shard_of(ctx));
        let graph = guard.graph(ctx).unwrap();
        let mut s = format!("clock {}\n", graph.now().0);
        for t in 1..=graph.now().0 {
            let time = Time(t);
            for n in graph.nodes() {
                if !n.exists_at(time) {
                    continue;
                }
                s.push_str(&format!("t{t} node {} ", n.id.0));
                for (attr, value) in n.attrs.all_at(time) {
                    s.push_str(&format!("{}={} ", attr.0, value));
                }
                s.push('\n');
            }
        }
        out.insert(ctx.0, s);
    }
    out
}

const SHARD_SWEEP_SHARDS: usize = 3;
const SHARD_SWEEP_OPS: usize = 60;

/// Per-step fingerprints of every context, keyed by context id.
type ShardedFps = Vec<BTreeMap<u64, String>>;

fn sharded_oracle() -> &'static (Vec<SOp>, ShardedFps) {
    static ORACLE: OnceLock<(Vec<SOp>, ShardedFps)> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let ops = gen_sharded_ops(seed() ^ 0x5AD, SHARD_SWEEP_OPS);
        let dir = tmpdir("sharded-oracle");
        let (sharded, _, _) =
            ShardedHam::create(&dir, Protections::DEFAULT, SHARD_SWEEP_SHARDS).unwrap();
        let mut ctxs = vec![MAIN_CONTEXT];
        let mut fps = vec![sharded_fps(&sharded)];
        for (i, op) in ops.iter().enumerate() {
            apply_sharded(&sharded, &mut ctxs, op).unwrap_or_else(|e| {
                panic!("sharded oracle step {i} failed (seed {:#x}): {e}", seed())
            });
            fps.push(sharded_fps(&sharded));
        }
        drop(sharded);
        assert_clean(&dir, "sharded oracle final state");
        let _ = std::fs::remove_dir_all(&dir);
        (ops, fps)
    })
}

/// Every recovered context must match its oracle state at the completed
/// prefix (`lo`) or one step later (`hi`), and no committed context may
/// vanish.
fn assert_per_context_prefix(
    recovered: &BTreeMap<u64, String>,
    lo: &BTreeMap<u64, String>,
    hi: &BTreeMap<u64, String>,
    what: &str,
) {
    for (ctx, fp) in recovered {
        let ok = lo.get(ctx) == Some(fp) || hi.get(ctx) == Some(fp);
        assert!(
            ok,
            "{what} (seed {:#x}): context {ctx} recovered to a state that is \
             neither the completed prefix nor the next step:\n{fp}",
            seed()
        );
    }
    for ctx in lo.keys() {
        assert!(
            recovered.contains_key(ctx),
            "{what} (seed {:#x}): committed context {ctx} vanished on recovery",
            seed()
        );
    }
}

fn sharded_fault_run(kind: FaultKind, at: u64) -> Option<()> {
    let _trace = obs_cell(kind, at);
    let (ops, fps) = sharded_oracle();
    let s = seed();
    let dir = tmpdir(&format!("sharded-{kind}-{at}"));
    let vfs = FaultVfs::new();
    let (sharded, _, _) = ShardedHam::create_with(
        Arc::new(vfs.clone()),
        &dir,
        Protections::DEFAULT,
        SHARD_SWEEP_SHARDS,
    )
    .unwrap();
    vfs.arm(kind, at);

    let mut ctxs = vec![MAIN_CONTEXT];
    let mut completed = 0;
    for op in ops {
        match apply_sharded(&sharded, &mut ctxs, op) {
            Ok(()) => completed += 1,
            Err(e) => {
                assert!(
                    vfs.injected() > 0,
                    "sharded {kind} at {at} (seed {s:#x}): step {completed} \
                     failed without a fault being injected: {e}"
                );
                break;
            }
        }
    }
    drop(sharded);
    if vfs.injected() == 0 {
        let _ = std::fs::remove_dir_all(&dir);
        return None;
    }

    let lo = &fps[completed];
    let hi = &fps[(completed + 1).min(fps.len() - 1)];

    // Crash image A: every issued write reached disk.
    {
        let (recovered, _, _) = ShardedHam::open(&dir).unwrap_or_else(|e| {
            panic!("sharded {kind} at {at} (seed {s:#x}): working tree failed to reopen: {e}")
        });
        assert_per_context_prefix(
            &sharded_fps(&recovered),
            lo,
            hi,
            &format!("sharded {kind} at {at} working tree"),
        );
    }

    // Crash image B: nothing unsynced survived.
    vfs.power_off();
    vfs.materialize_durable(&dir).unwrap();
    let (recovered, _, _) = ShardedHam::open(&dir).unwrap_or_else(|e| {
        panic!("sharded {kind} at {at} (seed {s:#x}): durable image failed to reopen: {e}")
    });
    let findings = neptune_check::verify_sharded(&recovered);
    assert!(
        findings.is_empty(),
        "sharded {kind} at {at} durable image (seed {s:#x}): verify found {findings:?}"
    );
    assert_per_context_prefix(
        &sharded_fps(&recovered),
        lo,
        hi,
        &format!("sharded {kind} at {at} durable image"),
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
    Some(())
}

fn sharded_sweep(kind: FaultKind) {
    let mut at = 0;
    while sharded_fault_run(kind, at).is_some() {
        at += 1;
    }
    assert!(
        at > 0,
        "sharded {kind}: workload produced no matching fault points"
    );
}

#[test]
fn sharded_recovery_power_cut() {
    sharded_sweep(FaultKind::PowerCut);
}

#[test]
fn sharded_recovery_short_write() {
    sharded_sweep(FaultKind::ShortWrite);
}

#[test]
fn sharded_recovery_fail_sync() {
    sharded_sweep(FaultKind::FailSync);
}
