//! End-to-end checker tests over real stores: build a graph on disk,
//! damage it a specific way, and assert the exact rule that trips — plus
//! the baseline that an undamaged store verifies clean.

use std::path::PathBuf;

use neptune_check::{
    verify_store, Severity, RULE_ARCHIVE_INDEX, RULE_CONTEXT_PARTITION, RULE_DELTA_CHAIN,
    RULE_LINK_OFFSET, RULE_SNAPSHOT_CHECKSUM, RULE_STORE_UNOPENABLE, RULE_WAL_CHECKSUM,
};
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::ham::{Ham, SNAPSHOT_FILE, WAL_FILE};
use neptune_ham::types::{LinkPt, Protections, Time, MAIN_CONTEXT};
use neptune_ham::Value;
use neptune_storage::snapshot::{read_snapshot, write_snapshot};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-check-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A store exercising every subsystem: contents, links, attributes, a
/// mark-node demon, and a forked context.
fn build_store(dir: &PathBuf) -> Ham {
    let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
    let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(
        MAIN_CONTEXT,
        a,
        t,
        b"first line\nsecond line\n".to_vec(),
        &[],
    )
    .unwrap();
    let (b, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, b, t, b"target\n".to_vec(), &[])
        .unwrap();
    ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 6), LinkPt::current(b, 0))
        .unwrap();
    let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, a, doc, Value::str("spec"))
        .unwrap();
    ham.set_node_demon(
        MAIN_CONTEXT,
        a,
        Event::NodeModified,
        Some(DemonSpec::mark_node("stale", "dirty", Value::Bool(true))),
    )
    .unwrap();
    let ctx = ham.create_context(MAIN_CONTEXT).unwrap();
    let (c, t) = ham.add_node(ctx, true).unwrap();
    ham.modify_node(ctx, c, t, b"private work\n".to_vec(), &[])
        .unwrap();
    ham
}

#[test]
fn clean_store_has_zero_findings() {
    let dir = tmpdir("clean");
    let mut ham = build_store(&dir);
    ham.checkpoint().unwrap();
    drop(ham);
    let findings = verify_store(&dir);
    assert_eq!(findings, Vec::new(), "clean store must verify clean");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncheckpointed_clean_store_also_verifies_clean() {
    let dir = tmpdir("clean-wal");
    let ham = build_store(&dir);
    drop(ham); // WAL still holds the whole history; recovery replays it
    let findings = verify_store(&dir);
    assert_eq!(
        findings,
        Vec::new(),
        "store with pending WAL must verify clean"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_snapshot_byte_is_a_checksum_failure() {
    let dir = tmpdir("snap-flip");
    let mut ham = build_store(&dir);
    ham.checkpoint().unwrap();
    drop(ham);

    // Flip one payload byte directly in the file, leaving the stored CRC.
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = 20 + (bytes.len() - 20) / 2; // past the magic/len/crc header
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let findings = verify_store(&dir);
    let crc = findings
        .iter()
        .find(|f| f.rule == RULE_SNAPSHOT_CHECKSUM)
        .expect("snapshot-checksum finding");
    assert_eq!(crc.severity, Severity::Critical);
    assert!(crc.detail.contains("CRC mismatch"), "{crc}");
    // The same damage also makes the store unopenable.
    assert!(
        findings.iter().any(|f| f.rule == RULE_STORE_UNOPENABLE),
        "expected store-unopenable too, got {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_wal_byte_is_a_frame_failure() {
    let dir = tmpdir("wal-flip");
    let ham = build_store(&dir);
    drop(ham); // no checkpoint: the WAL holds every frame

    let path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte inside the first frame's payload (8-byte magic, then
    // [len u32][crc u32][payload]).
    assert!(bytes.len() > 20, "WAL should hold at least one frame");
    bytes[18] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let findings = verify_store(&dir);
    let frame = findings
        .iter()
        .find(|f| f.rule == RULE_WAL_CHECKSUM)
        .expect("wal-checksum finding");
    assert_eq!(frame.severity, Severity::Error);
    assert!(frame.detail.contains("CRC mismatch"), "{frame}");
    // Damage in the middle of the log (frames follow the bad one) is not a
    // torn tail: recovery must refuse to open rather than silently drop
    // committed transactions.
    let unopenable = findings
        .iter()
        .find(|f| f.rule == RULE_STORE_UNOPENABLE)
        .expect("mid-log corruption must also make the store unopenable");
    assert!(unopenable.detail.contains("mid-log"), "{unopenable}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_reported_but_recoverable() {
    let dir = tmpdir("wal-torn-tail");
    let ham = build_store(&dir);
    drop(ham); // no checkpoint: the WAL holds every frame

    // Flip a byte inside the LAST frame's payload: a torn tail, the
    // classic crash-mid-write shape. The scan reports it, but recovery
    // truncates it away and the store still opens.
    let path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let findings = verify_store(&dir);
    assert!(
        findings.iter().any(|f| f.rule == RULE_WAL_CHECKSUM),
        "expected a wal-checksum finding, got {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.rule == RULE_STORE_UNOPENABLE),
        "a torn tail must not make the store unopenable, got {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_delta_length_breaks_the_chain() {
    let dir = tmpdir("delta-flip");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    // v1: 65 recognizable bytes; v2 shares no lines with it, so the
    // back-delta to v1 is a single literal Add of all 65 bytes.
    let v1: Vec<u8> = [vec![b'x'; 64], vec![b'\n']].concat();
    let t = ham
        .modify_node(MAIN_CONTEXT, n, t, v1.clone(), &[])
        .unwrap();
    ham.modify_node(
        MAIN_CONTEXT,
        n,
        t,
        b"now something entirely different\n".to_vec(),
        &[],
    )
    .unwrap();
    ham.checkpoint().unwrap();
    drop(ham);

    // Surgery on the snapshot payload: a delta encodes as
    // [target_len][op_count][op_tag][byte_len][literal...]; find the 65-byte
    // literal and shrink the claimed target_len varint (65 = 0x41) by one.
    // write_snapshot recomputes the CRC, so only the semantic damage stays.
    let path = dir.join(SNAPSHOT_FILE);
    let mut payload = read_snapshot(&path).unwrap();
    let lit = payload
        .windows(v1.len())
        .position(|w| w == v1.as_slice())
        .expect("v1 literal inside the snapshot");
    assert_eq!(
        &payload[lit - 4..lit],
        &[0x41, 0x01, 0x01, 0x41],
        "delta header before the literal"
    );
    payload[lit - 4] = 0x40; // target_len 65 -> 64
    write_snapshot(&path, &payload).unwrap();

    let findings = verify_store(&dir);
    let broken = findings
        .iter()
        .find(|f| f.rule == RULE_DELTA_CHAIN)
        .expect("delta-chain finding");
    assert_eq!(broken.severity, Severity::Error);
    assert!(broken.detail.contains("64"), "{broken}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_persisted_anchor_is_caught_and_recovery_replays_around_it() {
    let dir = tmpdir("anchor-flip");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (n, mut t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    // 40 versions, each a unique line sharing nothing with its neighbors,
    // so every back-delta (and every persisted skip rung) carries the full
    // literal of its target version.
    let mut versions: Vec<(Time, Vec<u8>)> = Vec::new();
    for i in 0..40 {
        let contents =
            format!("version {i:03} totally distinct marker payload line\n").into_bytes();
        t = ham
            .modify_node(MAIN_CONTEXT, n, t, contents.clone(), &[])
            .unwrap();
        versions.push((t, contents));
    }
    ham.checkpoint().unwrap();
    drop(ham);

    // Every version literal appears once in the unit delta chain (or, for
    // the newest, as the stored head); a second occurrence can only be a
    // persisted skip rung in the archive's index blob, appended after the
    // canonical fields. Tamper the middle of that second occurrence — the
    // rung decodes fine but fails its checksum on application.
    let path = dir.join(SNAPSHOT_FILE);
    let mut payload = read_snapshot(&path).unwrap();
    let (tampered_at, literal) = versions
        .iter()
        .find_map(|(time, contents)| {
            let hits: Vec<usize> = payload
                .windows(contents.len())
                .enumerate()
                .filter(|(_, w)| *w == contents.as_slice())
                .map(|(i, _)| i)
                .collect();
            (hits.len() >= 2).then(|| (*time, (contents.clone(), hits[1])))
        })
        .expect("some version literal must be persisted in a skip rung");
    let (contents, hit) = literal;
    payload[hit + contents.len() / 2] ^= 0x01;
    write_snapshot(&path, &payload).unwrap();

    let findings = verify_store(&dir);
    let anchor = findings
        .iter()
        .find(|f| f.rule == RULE_ARCHIVE_INDEX)
        .expect("archive-index finding");
    assert_eq!(
        anchor.severity,
        Severity::Warning,
        "anchors are derived data: a bad rung warns, it is not fatal"
    );
    assert!(
        !findings.iter().any(|f| f.rule == RULE_STORE_UNOPENABLE),
        "a corrupt anchor must never make the store unopenable, got {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.rule == RULE_DELTA_CHAIN),
        "the unit delta chain itself is intact, got {findings:?}"
    );

    // Recovery falls back to unit-delta replay: the historical read at the
    // tampered version still returns the exact original bytes.
    let (mut ham, _, _) = Ham::open_existing(&dir).unwrap();
    let opened = ham.open_node(MAIN_CONTEXT, n, tampered_at, &[]).unwrap();
    assert_eq!(opened.contents.as_ref(), contents.as_slice());
    for (time, expected) in &versions {
        let opened = ham.open_node(MAIN_CONTEXT, n, *time, &[]).unwrap();
        assert_eq!(opened.contents.as_ref(), expected.as_slice());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn destroying_a_fork_parent_partitions_the_store() {
    let dir = tmpdir("partition");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let mid = ham.create_context(MAIN_CONTEXT).unwrap();
    let leaf = ham.create_context(mid).unwrap();
    ham.destroy_context(mid).unwrap();
    ham.checkpoint().unwrap();
    drop(ham);

    let findings = verify_store(&dir);
    let cut = findings
        .iter()
        .find(|f| f.rule == RULE_CONTEXT_PARTITION)
        .expect("context-partition finding");
    assert_eq!(cut.entity, format!("context {}", leaf.0));
    assert!(cut.detail.contains(&format!("context {}", mid.0)), "{cut}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncating_contents_below_an_attachment_is_reported() {
    let dir = tmpdir("offset");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (a, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(
        MAIN_CONTEXT,
        a,
        t,
        b"a reasonably long line\n".to_vec(),
        &[],
    )
    .unwrap();
    let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.add_link(MAIN_CONTEXT, LinkPt::current(a, 15), LinkPt::current(b, 0))
        .unwrap();
    // Shrink the contents while insisting the attachment stays at 15 —
    // modifyNode accepts this, and the checker must catch it.
    let opened = ham.open_node(MAIN_CONTEXT, a, Time::CURRENT, &[]).unwrap();
    ham.modify_node(
        MAIN_CONTEXT,
        a,
        opened.current_time,
        b"tiny\n".to_vec(),
        &opened.link_pts,
    )
    .unwrap();
    ham.checkpoint().unwrap();
    drop(ham);

    let findings = verify_store(&dir);
    assert!(
        findings.iter().any(|f| f.rule == RULE_LINK_OFFSET),
        "expected a link-offset finding, got {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
