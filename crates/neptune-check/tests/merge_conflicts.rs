//! Conflicting context merges, end to end through the HAM facade.
//!
//! The graph-level unit tests in `context.rs` prove `merge_context`'s
//! policy matrix; these tests prove the machine-level contract around a
//! conflicting merge: the conflict is surfaced (as an error under `Fail`,
//! as `MergeReport::conflicts` otherwise), `neptune_ham_merge_conflicts_total`
//! counts every resolved conflict, and the store — including after the
//! failed-and-rolled-back merge — stays `verify_store`-clean.

use neptune_check::{verify_open_ham, verify_store};
use neptune_ham::context::ConflictPolicy;
use neptune_ham::error::HamError;
use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::value::Value;
use neptune_ham::Ham;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "neptune-merge-conflicts-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn conflict_count() -> u64 {
    neptune_obs::registry()
        .counter("neptune_ham_merge_conflicts_total")
        .get()
}

#[test]
fn conflicting_merges_surface_count_and_stay_clean() {
    let dir = tmpdir("matrix");
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();

    // ---- Content-vs-content conflict ----------------------------------
    let (node, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    let t1 = ham
        .modify_node(MAIN_CONTEXT, node, t0, b"base contents\n".to_vec(), &[])
        .unwrap();
    let child = ham.create_context(MAIN_CONTEXT).unwrap();
    ham.modify_node(MAIN_CONTEXT, node, t1, b"parent edit\n".to_vec(), &[])
        .unwrap();
    ham.modify_node(child, node, t1, b"child edit\n".to_vec(), &[])
        .unwrap();

    // Fail policy: the conflict aborts the merge before anything resolves,
    // so the counter must not move and the rollback must leave the store
    // verify-clean.
    let before = conflict_count();
    let err = ham.merge_context(child, ConflictPolicy::Fail);
    assert!(
        matches!(err, Err(HamError::MergeConflict { .. })),
        "content-vs-content merge under Fail must surface the conflict, got {err:?}"
    );
    assert_eq!(conflict_count(), before, "Fail resolves nothing");
    assert_eq!(verify_open_ham(&ham), Vec::new());

    // PreferChild: resolved, reported, counted, and the child's edit wins.
    let report = ham
        .merge_context(child, ConflictPolicy::PreferChild)
        .unwrap();
    assert_eq!(report.conflicts.len(), 1, "one content conflict resolved");
    assert_eq!(
        conflict_count(),
        before + 1,
        "resolved conflicts increment neptune_ham_merge_conflicts_total"
    );
    let merged = ham
        .open_node(MAIN_CONTEXT, node, Time::CURRENT, &[])
        .unwrap();
    assert_eq!(&merged.contents[..], b"child edit\n");
    assert_eq!(verify_open_ham(&ham), Vec::new());

    // ---- Attribute-vs-attribute conflict ------------------------------
    let status = ham.get_attribute_index(MAIN_CONTEXT, "status").unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, node, status, Value::str("base"))
        .unwrap();
    let child2 = ham.create_context(MAIN_CONTEXT).unwrap();
    ham.set_node_attribute_value(MAIN_CONTEXT, node, status, Value::str("parent"))
        .unwrap();
    let status_c = ham.get_attribute_index(child2, "status").unwrap();
    ham.set_node_attribute_value(child2, node, status_c, Value::str("child"))
        .unwrap();

    let before = conflict_count();
    let err = ham.merge_context(child2, ConflictPolicy::Fail);
    assert!(
        matches!(err, Err(HamError::MergeConflict { .. })),
        "attribute-vs-attribute merge under Fail must surface the conflict, got {err:?}"
    );
    assert_eq!(conflict_count(), before);
    assert_eq!(verify_open_ham(&ham), Vec::new());

    // PreferParent: resolved and counted, and the parent's value stands.
    let report = ham
        .merge_context(child2, ConflictPolicy::PreferParent)
        .unwrap();
    assert_eq!(report.conflicts.len(), 1, "one attribute conflict resolved");
    assert_eq!(conflict_count(), before + 1);
    assert_eq!(
        ham.get_node_attribute_value(MAIN_CONTEXT, node, status, Time::CURRENT)
            .unwrap(),
        Value::str("parent")
    );
    assert_eq!(verify_open_ham(&ham), Vec::new());

    // The durable image is clean too: close and re-verify from disk.
    drop(ham);
    assert_eq!(verify_store(&dir), Vec::new());
    let _ = std::fs::remove_dir_all(&dir);
}
