//! End-to-end CASE lint: ingest real modules into a hypertext project and
//! lint the reconstructed program graph.

use neptune_case::{parse_module, CaseProject};
use neptune_check::{lint_project, RULE_CASE_UNDEFINED_IMPORT, RULE_CASE_UNUSED_EXPORT};
use neptune_ham::types::{Protections, MAIN_CONTEXT};
use neptune_ham::Ham;

const LISTS: &str = "\
DEFINITION MODULE Lists;
PROCEDURE Insert;
END Insert;
PROCEDURE Remove;
END Remove;
END Lists.
";

const MAIN: &str = "\
MODULE Main;
FROM Lists IMPORT Insert;
IMPORT Ghost;
BEGIN
END Main.
";

#[test]
fn ingested_program_is_linted_from_the_graph() {
    let dir = std::env::temp_dir().join(format!("neptune-check-lint-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let project = CaseProject::new(MAIN_CONTEXT);
    project
        .ingest_module(&mut ham, &parse_module(LISTS).unwrap())
        .unwrap();
    project
        .ingest_module(&mut ham, &parse_module(MAIN).unwrap())
        .unwrap();

    let findings = lint_project(&ham, &project);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RULE_CASE_UNDEFINED_IMPORT && f.detail.contains("Ghost")),
        "expected Ghost to be an undefined import, got {findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == RULE_CASE_UNUSED_EXPORT && f.detail.contains("Remove")),
        "expected Remove to be an unused export, got {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.detail.contains("'Insert'")),
        "Insert is imported and must not be flagged, got {findings:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graph_without_case_conventions_lints_clean() {
    let dir = std::env::temp_dir().join(format!("neptune-check-lint-none-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
    ham.modify_node(MAIN_CONTEXT, n, t, b"just a document\n".to_vec(), &[])
        .unwrap();
    let project = CaseProject::new(MAIN_CONTEXT);
    assert_eq!(lint_project(&ham, &project), Vec::new());
    let _ = std::fs::remove_dir_all(&dir);
}
