//! `verify_sharded` against a *live* store under concurrent writers.
//!
//! The server serves `Request::Verify` from the read path while
//! registered writers keep appending to per-shard WALs. The file scans
//! therefore run under each shard's lock (writers append only inside
//! it) — otherwise a scan can catch an append mid-write and report a
//! torn WAL tail as corruption. This test hammers exactly that race:
//! without the locked scan phase it flakes with spurious `wal-checksum`
//! findings; with it, every scan is clean by construction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use neptune_ham::types::{ContextId, Protections, MAIN_CONTEXT};
use neptune_ham::ShardedHam;

#[test]
fn verify_is_clean_under_concurrent_writers() {
    let dir = std::env::temp_dir().join(format!("neptune-verify-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (ham, _, _) = ShardedHam::create(&dir, Protections::DEFAULT, 4).unwrap();
    let ham = Arc::new(ham);

    // One writer context homed on each shard.
    let mut ctxs: Vec<ContextId> = Vec::new();
    while {
        let covered: std::collections::BTreeSet<usize> =
            ctxs.iter().map(|c| ham.shard_of(*c)).collect();
        covered.len() < ham.shard_count()
    } {
        ctxs.push(ham.create_context(MAIN_CONTEXT).unwrap());
    }

    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = ctxs
        .into_iter()
        .map(|ctx| {
            let ham = Arc::clone(&ham);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut guard = ham.lock_home(ctx).unwrap();
                    let (node, t) = guard.add_node(ctx, true).unwrap();
                    guard
                        .modify_node(ctx, node, t, b"verify stress\n".to_vec(), &[])
                        .unwrap();
                }
            })
        })
        .collect();

    for round in 0..40 {
        let findings = neptune_check::verify_sharded(&ham);
        assert!(
            findings.is_empty(),
            "round {round}: spurious findings on a live store: {findings:?}"
        );
    }

    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
