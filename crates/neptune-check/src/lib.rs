//! # neptune-check
//!
//! An `fsck`-style integrity verifier for Neptune graph stores, plus a lint
//! pass over the CASE layer's Modula-2 module graph.
//!
//! The paper leans on the HAM to be the single reliable keeper of a
//! project's history ("complete version histories are maintained", §A.2;
//! "transaction-based crash recovery", §3). This crate is the audit side of
//! that promise: given a graph directory it re-derives every structural
//! invariant the store is supposed to uphold and reports each breach as a
//! [`Finding`].
//!
//! Three layers of checking:
//!
//! * **File scan** ([`scan_files`]) — read-only checks of the on-disk
//!   artifacts: snapshot magic/CRC, WAL frame CRCs. Runs *before* the store
//!   is opened, because recovery truncates a torn WAL tail (losing the
//!   evidence).
//! * **Semantic verification** ([`verify_ham`]) — with the store open,
//!   re-validate the rules in [`neptune_ham::invariants`]: delta chains
//!   replay to the stored head, link offsets stay within node contents at
//!   every version, link endpoints exist, contexts fork from live contexts,
//!   version histories are monotonic, and mark-node demons reference
//!   interned attributes.
//! * **CASE lints** ([`lint_modules`], [`lint_project`]) — undefined
//!   imports, import cycles, and exported-but-never-imported procedures in
//!   a project's Modula-2 module graph.
//!
//! [`verify_store`] composes the first two; `neptune-shell check` and the
//! server's `Verify` operation expose it to users.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lint;
mod store;

pub use lint::{lint_modules, lint_project, KNOWN_LIBRARY_MODULES};
pub use store::{
    scan_files, verify_ham, verify_open_ham, verify_sharded, verify_store, verify_view,
};

use neptune_storage::codec::{Decode, Encode, Reader, Writer};
use neptune_storage::{Result as StorageResult, StorageError};

/// Re-exported rule names for the in-memory invariants (see
/// [`neptune_ham::invariants`]).
pub use neptune_ham::invariants::{
    RULE_ARCHIVE_INDEX, RULE_CONTEXT_PARTITION, RULE_DANGLING_ENDPOINT, RULE_DELTA_CHAIN,
    RULE_DEMON_DEAD_ATTR, RULE_LINK_OFFSET, RULE_NON_MONOTONIC_HISTORY,
};

/// Rule name: the snapshot file is missing, has a bad header, or fails its
/// CRC.
pub const RULE_SNAPSHOT_CHECKSUM: &str = "snapshot-checksum";
/// Rule name: a WAL frame fails its length/CRC check (torn tail after a
/// crash, or corruption).
pub const RULE_WAL_CHECKSUM: &str = "wal-checksum";
/// Rule name: the store cannot be opened at all.
pub const RULE_STORE_UNOPENABLE: &str = "store-unopenable";
/// Rule name: a module imports a module that is neither in the project nor
/// a known library module.
pub const RULE_CASE_UNDEFINED_IMPORT: &str = "case-undefined-import";
/// Rule name: modules import each other in a cycle.
pub const RULE_CASE_IMPORT_CYCLE: &str = "case-import-cycle";
/// Rule name: a definition module exports a procedure no other module
/// imports.
pub const RULE_CASE_UNUSED_EXPORT: &str = "case-unused-export";
/// Rule name: a module node's contents no longer parse as Modula-2.
pub const RULE_CASE_PARSE_ERROR: &str = "case-parse-error";

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (style, dead weight, torn
    /// tails a crash can legitimately leave behind).
    Warning,
    /// An invariant the store is supposed to uphold is broken.
    Error,
    /// The store (or part of it) cannot be read at all.
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
            Severity::Critical => "critical",
        };
        write!(f, "{s}")
    }
}

/// One integrity or lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which rule tripped (one of the `RULE_*` constants).
    pub rule: String,
    /// What the finding is about, e.g. `"context 0 node 3"` or
    /// `"module Main"`.
    pub entity: String,
    /// Human-readable description.
    pub detail: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(
        severity: Severity,
        rule: &str,
        entity: impl Into<String>,
        detail: impl Into<String>,
    ) -> Finding {
        Finding {
            severity,
            rule: rule.to_string(),
            entity: entity.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: [{}] {}: {}",
            self.severity, self.rule, self.entity, self.detail
        )
    }
}

impl From<neptune_ham::invariants::Violation> for Finding {
    fn from(v: neptune_ham::invariants::Violation) -> Finding {
        let severity = match v.rule {
            RULE_DEMON_DEAD_ATTR => Severity::Warning,
            // Anchors are derived data: checkout falls back to unit-delta
            // replay and rebuilds the rung, so contents are never wrong.
            RULE_ARCHIVE_INDEX => Severity::Warning,
            _ => Severity::Error,
        };
        Finding {
            severity,
            rule: v.rule.to_string(),
            entity: v.entity,
            detail: v.detail,
        }
    }
}

impl Encode for Finding {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self.severity {
            Severity::Warning => 0,
            Severity::Error => 1,
            Severity::Critical => 2,
        });
        w.put_str(&self.rule);
        w.put_str(&self.entity);
        w.put_str(&self.detail);
    }
}

impl Decode for Finding {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let severity = match r.get_u8()? {
            0 => Severity::Warning,
            1 => Severity::Error,
            2 => Severity::Critical,
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "Severity",
                    tag: tag as u64,
                })
            }
        };
        Ok(Finding {
            severity,
            rule: r.get_str()?.to_owned(),
            entity: r.get_str()?.to_owned(),
            detail: r.get_str()?.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_codec_roundtrip() {
        let f = Finding::new(
            Severity::Error,
            RULE_DELTA_CHAIN,
            "context 0 node 3",
            "delta at time 4 produced 65 bytes but claims 64",
        );
        assert_eq!(Finding::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Warning < Severity::Error);
        assert!(Severity::Error < Severity::Critical);
    }

    #[test]
    fn display_is_greppable() {
        let f = Finding::new(
            Severity::Warning,
            RULE_CASE_UNUSED_EXPORT,
            "module Lists",
            "x",
        );
        assert_eq!(
            f.to_string(),
            "warning: [case-unused-export] module Lists: x"
        );
    }
}
