//! Store verification: on-disk file scanning plus in-memory rule checks.

use std::path::Path;

use neptune_ham::ham::{Ham, SNAPSHOT_FILE, WAL_FILE};
use neptune_ham::invariants;
use neptune_ham::ShardedHam;
use neptune_storage::checksum::crc32;
use neptune_storage::snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_MAGIC_V1};
use neptune_storage::wal::WAL_MAGIC;

use crate::{Finding, Severity, RULE_SNAPSHOT_CHECKSUM, RULE_STORE_UNOPENABLE, RULE_WAL_CHECKSUM};

/// Read-only scan of a graph directory's files: snapshot header and CRC,
/// WAL frame CRCs.
///
/// This runs *without* opening the store, so it can report damage that
/// recovery would otherwise silently repair (a torn WAL tail is truncated
/// away the moment the store opens) or that would prevent opening entirely
/// (a snapshot CRC mismatch).
pub fn scan_files(directory: impl AsRef<Path>) -> Vec<Finding> {
    let directory = directory.as_ref();
    let mut findings = Vec::new();
    scan_snapshot(directory, &mut findings);
    scan_wal(directory, &mut findings);
    findings
}

/// Verify the snapshot file's header, length, and CRC without decoding the
/// payload.
fn scan_snapshot(directory: &Path, findings: &mut Vec<Finding>) {
    let path = directory.join(SNAPSHOT_FILE);
    let entity = SNAPSHOT_FILE;
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            findings.push(Finding::new(
                Severity::Critical,
                RULE_SNAPSHOT_CHECKSUM,
                entity,
                format!("cannot read snapshot: {e}"),
            ));
            return;
        }
    };
    let header_len = SNAPSHOT_MAGIC.len() + 8 + 4;
    // Both snapshot format versions share the header layout; v1 stores
    // (pre-index archives) stay verifiable without migration.
    let known_magic = bytes.len() >= SNAPSHOT_MAGIC.len()
        && (&bytes[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
            || &bytes[..SNAPSHOT_MAGIC_V1.len()] == SNAPSHOT_MAGIC_V1);
    if bytes.len() < header_len || !known_magic {
        findings.push(Finding::new(
            Severity::Critical,
            RULE_SNAPSHOT_CHECKSUM,
            entity,
            "bad snapshot header (wrong magic or truncated)",
        ));
        return;
    }
    let (Some(len), Some(expected)) = (
        neptune_storage::codec::read_u64_at(&bytes, SNAPSHOT_MAGIC.len()),
        neptune_storage::codec::read_u32_at(&bytes, SNAPSHOT_MAGIC.len() + 8),
    ) else {
        findings.push(Finding::new(
            Severity::Critical,
            RULE_SNAPSHOT_CHECKSUM,
            entity,
            "bad snapshot header (wrong magic or truncated)",
        ));
        return;
    };
    let len = len as usize;
    let Some(payload) = bytes.get(header_len..header_len + len) else {
        findings.push(Finding::new(
            Severity::Critical,
            RULE_SNAPSHOT_CHECKSUM,
            entity,
            format!(
                "snapshot truncated: header claims {len} payload bytes, file holds {}",
                bytes.len() - header_len
            ),
        ));
        return;
    };
    let actual = crc32(payload);
    if actual != expected {
        findings.push(Finding::new(
            Severity::Critical,
            RULE_SNAPSHOT_CHECKSUM,
            entity,
            format!("snapshot CRC mismatch: stored {expected:#010x}, computed {actual:#010x}"),
        ));
    }
}

/// Walk the WAL frame by frame, checking each length/CRC envelope. Stops at
/// the first bad frame (everything after it is unreachable to recovery).
fn scan_wal(directory: &Path, findings: &mut Vec<Finding>) {
    let path = directory.join(WAL_FILE);
    let entity = WAL_FILE;
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            findings.push(Finding::new(
                Severity::Critical,
                RULE_WAL_CHECKSUM,
                entity,
                format!("cannot read write-ahead log: {e}"),
            ));
            return;
        }
    };
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        findings.push(Finding::new(
            Severity::Critical,
            RULE_WAL_CHECKSUM,
            entity,
            "bad WAL header (wrong magic or truncated)",
        ));
        return;
    }
    let mut pos = WAL_MAGIC.len();
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            findings.push(Finding::new(
                Severity::Error,
                RULE_WAL_CHECKSUM,
                entity,
                format!(
                    "torn frame header at offset {pos}: {} trailing bytes",
                    bytes.len() - pos
                ),
            ));
            return;
        }
        let (Some(payload_len), Some(expected)) = (
            neptune_storage::codec::read_u32_at(&bytes, pos),
            neptune_storage::codec::read_u32_at(&bytes, pos + 4),
        ) else {
            // Unreachable given the torn-header check above, but the decode
            // path stays structurally panic-free (DESIGN.md §12).
            return;
        };
        let payload_len = payload_len as usize;
        let body_start = pos + 8;
        let Some(body_end) = body_start
            .checked_add(payload_len)
            .filter(|e| *e <= bytes.len())
        else {
            findings.push(Finding::new(
                Severity::Error,
                RULE_WAL_CHECKSUM,
                entity,
                format!(
                    "torn frame at offset {pos}: claims {payload_len} payload bytes, \
                     file ends first"
                ),
            ));
            return;
        };
        let actual = crc32(&bytes[body_start..body_end]);
        if actual != expected {
            findings.push(Finding::new(
                Severity::Error,
                RULE_WAL_CHECKSUM,
                entity,
                format!(
                    "frame CRC mismatch at offset {pos}: stored {expected:#010x}, \
                     computed {actual:#010x}; later records are unreachable"
                ),
            ));
            return;
        }
        pos = body_end;
    }
}

/// Run every in-memory integrity rule against an open machine. See
/// [`neptune_ham::invariants`] for the rules.
pub fn verify_ham(ham: &Ham) -> Vec<Finding> {
    invariants::ham_violations(ham)
        .into_iter()
        .map(Finding::from)
        .collect()
}

/// File scan plus in-memory verification of an already-open machine —
/// for callers (shell, server) that hold the store open and must not open
/// a second WAL appender on it.
pub fn verify_open_ham(ham: &Ham) -> Vec<Finding> {
    let mut findings = scan_files(ham.directory());
    findings.extend(verify_ham(ham));
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(&b.rule))
    });
    findings
}

/// File scan plus in-memory verification of a published committed
/// snapshot — the server's lock-free `Verify` path, which must not touch
/// the live machine. The file scan reads the directory as it is *now*, so
/// a checkpoint racing this call is visible in file findings while the
/// in-memory rules check the immutable view.
pub fn verify_view(view: &neptune_ham::CommittedView) -> Vec<Finding> {
    let mut findings = scan_files(view.directory());
    findings.extend(
        invariants::view_violations(view)
            .into_iter()
            .map(Finding::from),
    );
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(&b.rule))
    });
    findings
}

/// Verify the graph store in `directory` end to end: scan the files, then
/// open the store and re-check every semantic invariant.
///
/// Sharded stores (a `shards.meta` at the root) are verified shard by
/// shard — each shard directory gets the same file scan, and the open runs
/// through [`ShardedHam`] so the cross-shard fork topology is checked over
/// the union of all shards.
///
/// Note that opening the store runs recovery, which truncates a torn WAL
/// tail; the file scan happens first precisely so such damage is still
/// reported.
pub fn verify_store(directory: impl AsRef<Path>) -> Vec<Finding> {
    let directory = directory.as_ref();
    let nshards =
        neptune_ham::shard::read_shard_count(&neptune_storage::StdVfs, directory).unwrap_or(1);
    let mut findings = Vec::new();
    for k in 0..nshards {
        findings.extend(scan_files(neptune_ham::shard::shard_dir(directory, k)));
    }
    if nshards == 1 {
        match Ham::open_existing(directory) {
            Ok((ham, _, _)) => findings.extend(verify_ham(&ham)),
            Err(e) => findings.push(Finding::new(
                Severity::Critical,
                RULE_STORE_UNOPENABLE,
                directory.display().to_string(),
                format!("store cannot be opened: {e}"),
            )),
        }
    } else {
        match ShardedHam::open(directory) {
            Ok((sharded, _, _)) => {
                findings.extend(sharded.violations().into_iter().map(Finding::from));
            }
            Err(e) => findings.push(Finding::new(
                Severity::Critical,
                RULE_STORE_UNOPENABLE,
                directory.display().to_string(),
                format!("sharded store cannot be opened: {e}"),
            )),
        }
    }
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(&b.rule))
    });
    findings
}

/// [`verify_ham`] for an already-open sharded machine: every shard's
/// graphs plus the merged cross-shard fork topology.
///
/// Each shard's files are scanned while holding that shard's lock: WAL
/// appends and checkpoints only happen inside the lock, so a scan under it
/// can never observe a partially-written tail (which would read as
/// torn-frame corruption while concurrent writers commit). Locks are taken
/// one at a time in ascending (hierarchy) order and released between
/// shards, so writers on the other shards keep committing during the scan.
pub fn verify_sharded(sharded: &ShardedHam) -> Vec<Finding> {
    let mut findings = Vec::new();
    for k in 0..sharded.shard_count() {
        let _guard = sharded.lock_shard(k);
        findings.extend(scan_files(neptune_ham::shard::shard_dir(
            sharded.directory(),
            k,
        )));
    }
    findings.extend(sharded.violations().into_iter().map(Finding::from));
    findings.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.rule.cmp(&b.rule))
    });
    findings
}
