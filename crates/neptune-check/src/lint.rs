//! Lints over the CASE layer's Modula-2 module graph.
//!
//! Paper §4.2 represents a program as a directed graph: module trees joined
//! by import links. These lints audit that graph: imports that resolve to
//! nothing, modules that import each other in a cycle (illegal between
//! Modula-2 definition modules), and definition-module procedures nothing
//! ever imports.

use std::collections::{HashMap, HashSet};

use neptune_case::model::{code_type, relation, CODE_TYPE};
use neptune_case::{parse_module, CaseProject, Module, ModuleKind, Procedure};
use neptune_ham::types::Time;
use neptune_ham::{Ham, Value};

use crate::{
    Finding, Severity, RULE_CASE_IMPORT_CYCLE, RULE_CASE_PARSE_ERROR, RULE_CASE_UNDEFINED_IMPORT,
    RULE_CASE_UNUSED_EXPORT,
};

/// Library modules the environment provides; importing them is never an
/// undefined-import finding.
pub const KNOWN_LIBRARY_MODULES: &[&str] = &["SYSTEM"];

/// Lint a set of parsed modules as one program.
///
/// Reports undefined imports, import cycles, and definition-module
/// procedures no other module ever imports.
pub fn lint_modules(modules: &[Module]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let by_name: HashMap<&str, &Module> = modules.iter().map(|m| (m.name.as_str(), m)).collect();

    // Undefined imports.
    for module in modules {
        for import in &module.imports {
            if !by_name.contains_key(import.as_str())
                && !KNOWN_LIBRARY_MODULES.contains(&import.as_str())
            {
                findings.push(Finding::new(
                    Severity::Warning,
                    RULE_CASE_UNDEFINED_IMPORT,
                    format!("module {}", module.name),
                    format!(
                        "imports '{import}', which is neither in the project nor a known \
                             library module"
                    ),
                ));
            }
        }
    }

    // Import cycles, over edges between project modules only.
    for cycle in find_cycles(modules, &by_name) {
        findings.push(Finding::new(
            Severity::Error,
            RULE_CASE_IMPORT_CYCLE,
            format!("module {}", cycle[0]),
            format!("import cycle: {}", cycle.join(" -> ")),
        ));
    }

    // Unused exports: a definition module's procedures that no FROM-import
    // ever names. A wholesale `IMPORT M` makes every export reachable
    // (qualified), so such modules are exempt.
    let mut imported_items: HashMap<&str, HashSet<&str>> = HashMap::new();
    let mut wholesale: HashSet<&str> = HashSet::new();
    for module in modules {
        for (source, items) in &module.from_imports {
            imported_items
                .entry(source.as_str())
                .or_default()
                .extend(items.iter().map(String::as_str));
        }
        for import in &module.imports {
            if !module.from_imports.iter().any(|(s, _)| s == import) {
                wholesale.insert(import.as_str());
            }
        }
    }
    for module in modules {
        if module.kind != ModuleKind::Definition || wholesale.contains(module.name.as_str()) {
            continue;
        }
        let used = imported_items.get(module.name.as_str());
        for proc in &module.procedures {
            if used.is_none_or(|items| !items.contains(proc.name.as_str())) {
                findings.push(Finding::new(
                    Severity::Warning,
                    RULE_CASE_UNUSED_EXPORT,
                    format!("module {}", module.name),
                    format!("exports procedure '{}', which no module imports", proc.name),
                ));
            }
        }
    }

    findings
}

/// Distinct import cycles among project modules, each as the path of module
/// names with the starting module repeated at the end.
fn find_cycles(modules: &[Module], by_name: &HashMap<&str, &Module>) -> Vec<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<&str, Color> = modules
        .iter()
        .map(|m| (m.name.as_str(), Color::White))
        .collect();
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: HashSet<Vec<String>> = HashSet::new();

    fn dfs<'a>(
        name: &'a str,
        by_name: &HashMap<&'a str, &'a Module>,
        color: &mut HashMap<&'a str, Color>,
        path: &mut Vec<&'a str>,
        cycles: &mut Vec<Vec<String>>,
        seen_sets: &mut HashSet<Vec<String>>,
    ) {
        color.insert(name, Color::Gray);
        path.push(name);
        if let Some(module) = by_name.get(name) {
            for import in &module.imports {
                let Some(next) = by_name.get(import.as_str()).map(|m| m.name.as_str()) else {
                    continue;
                };
                match color.get(next).copied().unwrap_or(Color::White) {
                    Color::White => dfs(next, by_name, color, path, cycles, seen_sets),
                    Color::Gray => {
                        let start = path.iter().position(|n| *n == next).expect("on path");
                        let mut cycle: Vec<String> =
                            path[start..].iter().map(|s| s.to_string()).collect();
                        cycle.push(next.to_string());
                        let mut key = cycle.clone();
                        key.pop();
                        key.sort();
                        if seen_sets.insert(key) {
                            cycles.push(cycle);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        path.pop();
        color.insert(name, Color::Black);
    }

    for module in modules {
        if color[module.name.as_str()] == Color::White {
            let mut path = Vec::new();
            dfs(
                module.name.as_str(),
                by_name,
                &mut color,
                &mut path,
                &mut cycles,
                &mut seen_sets,
            );
        }
    }
    cycles
}

/// Reconstruct the program from a [`CaseProject`]'s hypertext and lint it.
///
/// Module nodes are found by their `codeType` attribute; each node's
/// contents are re-parsed for the import lists, and the module's exported
/// procedures are read back from its `isPartOf` procedure subtree (the
/// ingest split the procedures out of the module text). Module nodes whose
/// contents no longer parse produce a [`RULE_CASE_PARSE_ERROR`] finding.
pub fn lint_project(ham: &Ham, project: &CaseProject) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Ok(graph) = ham.graph(project.context) else {
        return findings;
    };
    let Some(code_attr) = graph.attr_table.lookup(CODE_TYPE) else {
        return findings; // no CASE conventions in this context: nothing to lint
    };

    let mut modules: Vec<Module> = Vec::new();
    for node in graph.nodes() {
        if !node.exists_at(Time::CURRENT) {
            continue;
        }
        let is_module = matches!(
            node.attrs.get(code_attr, Time::CURRENT),
            Some(Value::Str(s))
                if s == code_type::DEFINITION_MODULE || s == code_type::IMPLEMENTATION_MODULE
        );
        if !is_module {
            continue;
        }
        let Ok(contents) = node.contents_at(Time::CURRENT) else {
            continue;
        };
        let text = String::from_utf8_lossy(&contents);
        let mut module = match parse_module(&text) {
            Ok(m) => m,
            Err(e) => {
                findings.push(Finding::new(
                    Severity::Error,
                    RULE_CASE_PARSE_ERROR,
                    format!("node {}", node.id.0),
                    format!("module node contents no longer parse: {e}"),
                ));
                continue;
            }
        };
        // Exports live in the procedure subtree, not the module text.
        if let Ok(children) = project.linked_targets(ham, node.id, relation::IS_PART_OF) {
            let prefix = format!("{}.", module.name);
            if let Some(icon_attr) = graph.attr_table.lookup("icon") {
                for child in children {
                    let Ok(cnode) = graph.node(child) else {
                        continue;
                    };
                    if let Some(Value::Str(icon)) = cnode.attrs.get(icon_attr, Time::CURRENT) {
                        if let Some(name) = icon.strip_prefix(&prefix) {
                            module.procedures.push(Procedure {
                                name: name.to_string(),
                                text: String::new(),
                                children: Vec::new(),
                            });
                        }
                    }
                }
            }
        }
        modules.push(module);
    }

    findings.extend(lint_modules(&modules));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sources: &[&str]) -> Vec<Module> {
        sources.iter().map(|s| parse_module(s).unwrap()).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let modules = parse(&[
            "DEFINITION MODULE Lists;\nPROCEDURE Insert;\nEND Insert;\nEND Lists.\n",
            "MODULE Main;\nFROM Lists IMPORT Insert;\nEND Main.\n",
        ]);
        assert_eq!(lint_modules(&modules), Vec::new());
    }

    #[test]
    fn undefined_import_is_reported() {
        let modules = parse(&["MODULE Main;\nIMPORT Ghost;\nFROM SYSTEM IMPORT ADR;\nEND Main.\n"]);
        let findings = lint_modules(&modules);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RULE_CASE_UNDEFINED_IMPORT);
        assert!(findings[0].detail.contains("Ghost"));
    }

    #[test]
    fn import_cycle_is_reported_once() {
        let modules = parse(&[
            "DEFINITION MODULE A;\nIMPORT B;\nEND A.\n",
            "DEFINITION MODULE B;\nIMPORT A;\nEND B.\n",
        ]);
        let findings = lint_modules(&modules);
        let cycles: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RULE_CASE_IMPORT_CYCLE)
            .collect();
        assert_eq!(cycles.len(), 1, "{findings:?}");
        assert!(cycles[0].detail.contains("A") && cycles[0].detail.contains("B"));
    }

    #[test]
    fn self_import_is_a_cycle() {
        let modules = parse(&["MODULE Loop;\nIMPORT Loop;\nEND Loop.\n"]);
        let findings = lint_modules(&modules);
        assert!(
            findings.iter().any(|f| f.rule == RULE_CASE_IMPORT_CYCLE),
            "{findings:?}"
        );
    }

    #[test]
    fn unused_export_is_reported_but_wholesale_import_exempts() {
        let modules = parse(&[
            "DEFINITION MODULE Lists;\nPROCEDURE Insert;\nEND Insert;\n\
             PROCEDURE Remove;\nEND Remove;\nEND Lists.\n",
            "MODULE Main;\nFROM Lists IMPORT Insert;\nEND Main.\n",
        ]);
        let findings = lint_modules(&modules);
        let unused: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RULE_CASE_UNUSED_EXPORT)
            .collect();
        assert_eq!(unused.len(), 1, "{findings:?}");
        assert!(unused[0].detail.contains("Remove"));

        // A wholesale IMPORT Lists makes every export reachable.
        let modules = parse(&[
            "DEFINITION MODULE Lists;\nPROCEDURE Insert;\nEND Insert;\n\
             PROCEDURE Remove;\nEND Remove;\nEND Lists.\n",
            "MODULE Main;\nIMPORT Lists;\nEND Main.\n",
        ]);
        assert!(
            lint_modules(&modules)
                .iter()
                .all(|f| f.rule != RULE_CASE_UNUSED_EXPORT),
            "wholesale import should exempt exports"
        );
    }
}
