//! The zero-lock proof for the snapshot read path, over real sockets.
//!
//! Read-only requests from non-transaction-owners must complete without
//! acquiring the transaction gate or the HAM lock — the server counts
//! every acquisition of both, so the proof is a metrics delta: a pure-read
//! workload moves `neptune_server_reads_lockfree_total` and *neither*
//! acquisition counter. The other tests pin the two semantic consequences:
//! a reader never waits on a foreign transaction (it reads the last
//! committed snapshot), while the transaction owner still reads its own
//! uncommitted writes through the exclusive path.
//!
//! The metrics registry is process-global, so these tests serialize on one
//! mutex and reset the registry first.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::Ham;
use neptune_server::{serve, Client, Request, Response};

static LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-snapread-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> neptune_server::ServerHandle {
    let (ham, _, _) = Ham::create_graph(tmpdir(name), Protections::DEFAULT).unwrap();
    serve(ham, "127.0.0.1:0").unwrap()
}

fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

fn open_contents(c: &mut Client, node: neptune_ham::types::NodeIndex) -> Vec<u8> {
    c.open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
        .unwrap()
        .contents
        .to_vec()
}

/// Pure reads acquire neither the gate nor the HAM lock: both acquisition
/// counters stand still while the lock-free counter advances.
#[test]
fn read_only_requests_acquire_no_locks() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return; // NEPTUNE_OBS_DISABLED set in this environment
    }
    neptune_obs::registry().reset();

    let server = start("no-locks");
    let mut c = Client::connect(server.addr()).unwrap();
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, node, t0, b"snapshot\n".to_vec(), vec![])
        .unwrap();

    // Baseline after the setup writes.
    let before = c.metrics().unwrap();
    let gate0 = sample(&before, "neptune_server_gate_acquisitions_total").unwrap_or(0.0);
    let ham0 = sample(&before, "neptune_server_ham_lock_acquisitions_total").unwrap_or(0.0);
    let free0 = sample(&before, "neptune_server_reads_lockfree_total").unwrap_or(0.0);

    // A read-only workload: single reads, a pipeline, and a batch.
    const SINGLES: usize = 8;
    for _ in 0..SINGLES {
        assert_eq!(open_contents(&mut c, node), b"snapshot\n");
    }
    let reads = vec![
        Request::OpenNode {
            context: MAIN_CONTEXT,
            node,
            time: Time::CURRENT,
            attrs: vec![],
        };
        8
    ];
    for r in c.pipeline(&reads).unwrap() {
        assert!(matches!(r, Response::Opened { .. }));
    }
    for r in c.batch(reads.clone()).unwrap() {
        assert!(matches!(r, Response::Opened { .. }));
    }
    c.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    c.get_node_versions(MAIN_CONTEXT, node).unwrap();

    let after = c.metrics().unwrap();
    let gate1 = sample(&after, "neptune_server_gate_acquisitions_total").unwrap_or(0.0);
    let ham1 = sample(&after, "neptune_server_ham_lock_acquisitions_total").unwrap_or(0.0);
    let free1 = sample(&after, "neptune_server_reads_lockfree_total").unwrap_or(0.0);

    assert_eq!(
        gate1 - gate0,
        0.0,
        "read-only requests must not touch the gate:\n{after}"
    );
    assert_eq!(
        ham1 - ham0,
        0.0,
        "read-only requests must not take the HAM lock:\n{after}"
    );
    // 8 singles + 8 pipelined + 8 batched + 2 metadata reads + the first
    // Metrics scrape itself (the second is counted after its response).
    assert!(
        free1 - free0 >= (SINGLES + 8 + 8 + 2) as f64,
        "expected >= {} lock-free reads, got {}:\n{after}",
        SINGLES + 8 + 8 + 2,
        free1 - free0
    );
    server.stop();
}

/// A reader racing a foreign transaction is served the last committed
/// snapshot immediately — no gate wait, no lock timeout, and the answer
/// predates the uncommitted writes.
#[test]
fn reads_during_foreign_txn_see_committed_state_without_waiting() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return;
    }
    neptune_obs::registry().reset();

    let server = start("no-wait");
    let addr = server.addr();
    let mut holder = Client::connect(addr).unwrap();
    let (node, t0) = holder.add_node(MAIN_CONTEXT, true).unwrap();
    holder
        .modify_node(MAIN_CONTEXT, node, t0, b"committed\n".to_vec(), vec![])
        .unwrap();

    holder.begin_transaction().unwrap();
    let t1 = holder.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    holder
        .modify_node(MAIN_CONTEXT, node, t1, b"uncommitted\n".to_vec(), vec![])
        .unwrap();

    let mut reader = Client::connect(addr).unwrap();
    let started = Instant::now();
    for _ in 0..4 {
        assert_eq!(open_contents(&mut reader, node), b"committed\n");
    }
    // Well under the server's lock timeout: the reads never parked on the
    // gate (the timeout path answers with an error, not stale contents,
    // so the assertions above already rule it out; the clock bound guards
    // against a future regression that waits-then-succeeds).
    assert!(started.elapsed() < Duration::from_secs(5));

    holder.commit_transaction().unwrap();
    assert_eq!(open_contents(&mut reader, node), b"uncommitted\n");

    let text = reader.metrics().unwrap();
    assert_eq!(
        sample(&text, "neptune_server_lock_timeouts_total").unwrap_or(0.0),
        0.0,
        "{text}"
    );
    assert_eq!(
        sample(&text, "neptune_server_gate_wait_ns_count").unwrap_or(0.0),
        0.0,
        "readers must not wait at the gate:\n{text}"
    );
    server.stop();
}

/// The transaction owner's reads route through the exclusive path and see
/// its own uncommitted writes, while a concurrent lock-free reader still
/// sees the pre-transaction snapshot.
#[test]
fn txn_owner_reads_its_own_writes() {
    let server = start("ryw");
    let addr = server.addr();
    let mut owner = Client::connect(addr).unwrap();
    let (node, t0) = owner.add_node(MAIN_CONTEXT, true).unwrap();
    owner
        .modify_node(MAIN_CONTEXT, node, t0, b"before\n".to_vec(), vec![])
        .unwrap();

    owner.begin_transaction().unwrap();
    let t1 = owner.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    owner
        .modify_node(MAIN_CONTEXT, node, t1, b"mine\n".to_vec(), vec![])
        .unwrap();

    // Owner: single read, batch read, and metadata — all must show the
    // uncommitted version.
    assert_eq!(open_contents(&mut owner, node), b"mine\n");
    let batched = owner
        .batch(vec![Request::OpenNode {
            context: MAIN_CONTEXT,
            node,
            time: Time::CURRENT,
            attrs: vec![],
        }])
        .unwrap();
    match &batched[0] {
        Response::Opened { contents, .. } => assert_eq!(&contents[..], b"mine\n"),
        other => panic!("expected Opened, got {other:?}"),
    }

    // A foreign reader sees the snapshot from before the transaction.
    let mut other = Client::connect(addr).unwrap();
    assert_eq!(open_contents(&mut other, node), b"before\n");

    owner.commit_transaction().unwrap();
    assert_eq!(open_contents(&mut other, node), b"mine\n");
    // After commit the owner is a plain reader again and still agrees.
    assert_eq!(open_contents(&mut owner, node), b"mine\n");
    server.stop();
}
