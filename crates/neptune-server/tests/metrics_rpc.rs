//! The `Metrics` RPC against scripted workloads: per-RPC histogram counts
//! must match the requests issued exactly, every layer must contribute at
//! least one family, and the transaction-gate wait histogram must move when
//! a writer actually contends.
//!
//! The metrics registry is process-global, so these tests serialize on one
//! mutex and reset the registry at the start of each test.

use std::path::PathBuf;
use std::sync::Mutex;

use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::Ham;
use neptune_server::{serve, Client};

static LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-metrics-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> neptune_server::ServerHandle {
    let (ham, _, _) = Ham::create_graph(tmpdir(name), Protections::DEFAULT).unwrap();
    serve(ham, "127.0.0.1:0").unwrap()
}

/// Find `series value` in a Prometheus exposition, where `series` is the
/// full name including any label set (e.g. `foo_count{op="Ping"}`).
fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn per_rpc_histogram_counts_match_scripted_workload() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return; // NEPTUNE_OBS_DISABLED set in this environment
    }
    neptune_obs::registry().reset();

    let server = start("scripted");
    let mut c = Client::connect(server.addr()).unwrap();

    // The script: 2 pings, 3 node creations, 2 check-ins, then 5 opens of
    // the same node — 4 current plus 1 historical (the historical read is
    // what consults the version-materialization cache).
    c.ping().unwrap();
    c.ping().unwrap();
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.add_node(MAIN_CONTEXT, true).unwrap();
    c.add_node(MAIN_CONTEXT, true).unwrap();
    let t1 = c
        .modify_node(MAIN_CONTEXT, node, t0, b"version one\n".to_vec(), vec![])
        .unwrap();
    c.modify_node(MAIN_CONTEXT, node, t1, b"version two\n".to_vec(), vec![])
        .unwrap();
    for _ in 0..4 {
        c.open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
            .unwrap();
    }
    c.open_node(MAIN_CONTEXT, node, t1, vec![]).unwrap();

    let text = c.metrics().unwrap();

    // Server layer: one histogram sample per request, keyed by RPC name.
    // The Metrics request itself is recorded only after its response is
    // built, so it does not appear in its own exposition.
    let rpc = |op: &str| {
        sample(
            &text,
            &format!("neptune_server_rpc_ns_count{{op=\"{op}\"}}"),
        )
    };
    assert_eq!(rpc("Ping"), Some(2.0), "{text}");
    assert_eq!(rpc("AddNode"), Some(3.0), "{text}");
    assert_eq!(rpc("ModifyNode"), Some(2.0), "{text}");
    assert_eq!(rpc("OpenNode"), Some(5.0), "{text}");
    // Zero rather than absent when the other test in this process already
    // created the series — reset() zeroes entries in place.
    assert_eq!(rpc("Metrics").unwrap_or(0.0), 0.0, "{text}");

    // HAM layer: op spans line up one-to-one with the dispatched calls.
    // The server serves `OpenNode` lock-free from the published snapshot,
    // so reads land in the view's op family, not the live machine's.
    let ham_op = |op: &str| sample(&text, &format!("neptune_ham_op_ns_count{{op=\"{op}\"}}"));
    assert_eq!(ham_op("add_node"), Some(3.0), "{text}");
    let view_op = |op: &str| sample(&text, &format!("neptune_view_op_ns_count{{op=\"{op}\"}}"));
    assert_eq!(view_op("read_node"), Some(5.0), "{text}");
    // 2 pings + 5 opens, all served without the gate or the HAM lock.
    assert_eq!(
        sample(&text, "neptune_server_reads_lockfree_total"),
        Some(7.0),
        "{text}"
    );
    let commits = sample(&text, "neptune_ham_txn_commits_total").unwrap_or(0.0);
    assert!(
        commits >= 4.0,
        "expected >=4 commits, got {commits}\n{text}"
    );

    // Storage layer: the writes above must have appended and fsynced WAL
    // records, and the opens consulted the version cache.
    let wal_appends = sample(&text, "neptune_storage_op_ns_count{op=\"wal_append\"}");
    assert!(wal_appends.unwrap_or(0.0) > 0.0, "{text}");
    let wal_fsyncs = sample(&text, "neptune_storage_op_ns_count{op=\"wal_fsync\"}");
    assert!(wal_fsyncs.unwrap_or(0.0) > 0.0, "{text}");
    let cache_lookups = sample(&text, "neptune_storage_vcache_hits_total").unwrap_or(0.0)
        + sample(&text, "neptune_storage_vcache_misses_total").unwrap_or(0.0);
    assert!(cache_lookups > 0.0, "{text}");

    // A second scrape sees the first Metrics request, and the gauge for
    // this live connection.
    let text2 = c.metrics().unwrap();
    let metrics_rpcs = sample(&text2, "neptune_server_rpc_ns_count{op=\"Metrics\"}");
    assert_eq!(metrics_rpcs, Some(1.0), "{text2}");
    let conns = sample(&text2, "neptune_server_active_connections").unwrap_or(0.0);
    assert!(conns >= 1.0, "{text2}");

    // No writer ever contended in this single-client script.
    assert_eq!(
        sample(&text2, "neptune_server_gate_wait_ns_count").unwrap_or(0.0),
        0.0,
        "{text2}"
    );
    server.stop();
}

#[test]
fn gate_wait_histogram_moves_under_writer_contention() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return;
    }
    neptune_obs::registry().reset();

    let server = start("contention");
    let addr = server.addr();
    let mut holder = Client::connect(addr).unwrap();
    holder.begin_transaction().unwrap();
    holder.add_node(MAIN_CONTEXT, true).unwrap();

    // A second writer blocks on the transaction gate until the holder
    // commits.
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.add_node(MAIN_CONTEXT, true).unwrap();
    });
    // Let the waiter reach the gate, and exercise spurious wakeups while
    // it waits — pokes alone must not release it or end its wait early.
    std::thread::sleep(std::time::Duration::from_millis(200));
    for _ in 0..4 {
        server.poke_txn_waiters();
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    holder.commit_transaction().unwrap();
    waiter.join().unwrap();

    let text = holder.metrics().unwrap();
    let waits = sample(&text, "neptune_server_gate_wait_ns_count").unwrap_or(0.0);
    let waited_ns = sample(&text, "neptune_server_gate_wait_ns_sum").unwrap_or(0.0);
    assert!(waits >= 1.0, "no gate wait recorded:\n{text}");
    assert!(waited_ns > 0.0, "gate wait recorded zero time:\n{text}");
    assert_eq!(
        sample(&text, "neptune_server_lock_timeouts_total").unwrap_or(0.0),
        0.0,
        "nobody should have timed out:\n{text}"
    );
    server.stop();
}
