//! Batch and pipelined execution over real sockets: per-element results,
//! lock-free snapshot serving for read batches, exclusive routing for
//! mutating batches, and a mixed reader/writer stress run that checks for
//! torn reads and read-your-writes.
//!
//! The metrics registry is process-global, so the metrics-sensitive tests
//! serialize on one mutex and reset the registry first.

use std::path::PathBuf;
use std::sync::Mutex;

use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::Ham;
use neptune_server::{serve, Client, Request, Response};

static LOCK: Mutex<()> = Mutex::new(());

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-batch-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> neptune_server::ServerHandle {
    let (ham, _, _) = Ham::create_graph(tmpdir(name), Protections::DEFAULT).unwrap();
    serve(ham, "127.0.0.1:0").unwrap()
}

fn open_req(node: neptune_ham::types::NodeIndex) -> Request {
    Request::OpenNode {
        context: MAIN_CONTEXT,
        node,
        time: Time::CURRENT,
        attrs: vec![],
    }
}

fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn batch_returns_per_element_results_in_order() {
    let server = start("order");
    let mut c = Client::connect(server.addr()).unwrap();
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, node, t0, b"batched\n".to_vec(), vec![])
        .unwrap();

    let responses = c
        .batch(vec![
            Request::Ping,
            open_req(node),
            // An illegal element errors in place; the rest still run.
            // (Nested batches never get this far: the decoder refuses the
            // inner tag and the connection drops, by design.)
            Request::BeginTransaction,
            Request::Ping,
        ])
        .unwrap();
    assert_eq!(responses.len(), 4);
    assert!(matches!(responses[0], Response::Ok));
    match &responses[1] {
        Response::Opened { contents, .. } => assert_eq!(&contents[..], b"batched\n"),
        other => panic!("expected Opened, got {other:?}"),
    }
    assert!(matches!(responses[2], Response::Error(_)));
    assert!(matches!(responses[3], Response::Ok));

    // An empty batch is legal and returns an empty result set.
    assert_eq!(c.batch(vec![]).unwrap().len(), 0);
    server.stop();
}

#[test]
fn batch_with_a_write_takes_the_exclusive_path() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return; // NEPTUNE_OBS_DISABLED set in this environment
    }
    neptune_obs::registry().reset();

    let server = start("exclusive");
    let mut c = Client::connect(server.addr()).unwrap();
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();

    // A mutating element makes the whole batch non-read-only; it must run
    // under the writer lock and its effects must be visible to the reads
    // that follow it in the same batch.
    let responses = c
        .batch(vec![
            Request::ModifyNode {
                context: MAIN_CONTEXT,
                node,
                time: t0,
                contents: b"written in batch\n".to_vec(),
                link_pts: vec![],
            },
            open_req(node),
        ])
        .unwrap();
    assert!(matches!(responses[0], Response::Time(_)));
    match &responses[1] {
        Response::Opened { contents, .. } => {
            assert_eq!(&contents[..], b"written in batch\n")
        }
        other => panic!("expected Opened, got {other:?}"),
    }

    let text = c.metrics().unwrap();
    // Both elements ran and were individually recorded...
    assert_eq!(
        sample(&text, "neptune_server_rpc_ns_count{op=\"ModifyNode\"}"),
        Some(1.0),
        "{text}"
    );
    assert_eq!(
        sample(&text, "neptune_server_rpc_ns_count{op=\"OpenNode\"}"),
        Some(1.0),
        "{text}"
    );
    // ...and the batch itself, once.
    assert_eq!(
        sample(&text, "neptune_server_rpc_ns_count{op=\"Batch\"}"),
        Some(1.0),
        "{text}"
    );
    server.stop();
}

#[test]
fn read_batch_during_foreign_txn_is_lock_free() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if !neptune_obs::enabled() {
        return;
    }
    neptune_obs::registry().reset();

    let server = start("one-gate");
    let addr = server.addr();
    let mut holder = Client::connect(addr).unwrap();
    let (node, t0) = holder.add_node(MAIN_CONTEXT, true).unwrap();
    holder
        .modify_node(MAIN_CONTEXT, node, t0, b"committed\n".to_vec(), vec![])
        .unwrap();
    holder.begin_transaction().unwrap();
    holder.add_node(MAIN_CONTEXT, true).unwrap();

    // A 32-element read batch arrives while a foreign transaction holds
    // the gate. It is served from the published snapshot: it never waits
    // at the gate, and it completes *before* the transaction commits,
    // seeing the last committed contents.
    const ELEMENTS: usize = 32;
    let mut reader = Client::connect(addr).unwrap();
    let responses = reader.batch(vec![open_req(node); ELEMENTS]).unwrap();
    assert_eq!(responses.len(), ELEMENTS);
    for r in &responses {
        match r {
            Response::Opened { contents, .. } => assert_eq!(&contents[..], b"committed\n"),
            other => panic!("expected Opened, got {other:?}"),
        }
    }
    holder.commit_transaction().unwrap();

    let text = holder.metrics().unwrap();
    let waits = sample(&text, "neptune_server_gate_wait_ns_count").unwrap_or(0.0);
    assert_eq!(
        waits, 0.0,
        "a snapshot-served read batch must never wait at the gate:\n{text}"
    );
    // Every element was served lock-free and shows up in the per-op
    // accounting.
    assert!(
        sample(&text, "neptune_server_reads_lockfree_total").unwrap_or(0.0) >= ELEMENTS as f64,
        "{text}"
    );
    assert_eq!(
        sample(&text, "neptune_server_rpc_ns_count{op=\"OpenNode\"}"),
        Some(ELEMENTS as f64),
        "{text}"
    );
    // The frame layer counted traffic in both directions.
    assert!(sample(&text, "neptune_server_bytes_in_total").unwrap_or(0.0) > 0.0);
    assert!(sample(&text, "neptune_server_bytes_out_total").unwrap_or(0.0) > 0.0);
    server.stop();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start("pipeline");
    let mut c = Client::connect(server.addr()).unwrap();
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, node, t0, b"pipelined\n".to_vec(), vec![])
        .unwrap();

    let mut requests = vec![Request::Ping];
    requests.extend(std::iter::repeat_with(|| open_req(node)).take(16));
    requests.push(Request::Ping);
    let responses = c.pipeline(&requests).unwrap();
    assert_eq!(responses.len(), requests.len());
    assert!(matches!(responses[0], Response::Ok));
    assert!(matches!(responses[requests.len() - 1], Response::Ok));
    for r in &responses[1..requests.len() - 1] {
        match r {
            Response::Opened { contents, .. } => assert_eq!(&contents[..], b"pipelined\n"),
            other => panic!("expected Opened, got {other:?}"),
        }
    }
    // The connection is still usable for ordinary lockstep calls.
    c.ping().unwrap();
    server.stop();
}

/// Mixed stress: pipelined readers and batched readers race one writer
/// doing check-out/check-in cycles. Contents are written as `"<n> | <n>"`
/// so any torn read is detectable; the writer asserts read-your-writes
/// inside its own transaction.
#[test]
fn stress_pipelined_and_batched_readers_against_a_writer() {
    let server = start("stress");
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    let (node, t0) = setup.add_node(MAIN_CONTEXT, true).unwrap();
    setup
        .modify_node(MAIN_CONTEXT, node, t0, b"0 | 0".to_vec(), vec![])
        .unwrap();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let check = |contents: &[u8]| {
        let text = String::from_utf8(contents.to_vec()).unwrap();
        let (left, right) = text.trim_end().split_once(" | ").unwrap();
        assert_eq!(left, right, "torn read: {text:?}");
    };

    let mut readers = Vec::new();
    for style in 0..2 {
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut seen = 0usize;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let requests = vec![open_req(node); 8];
                let responses = if style == 0 {
                    c.pipeline(&requests).unwrap()
                } else {
                    c.batch(requests).unwrap()
                };
                for r in responses {
                    match r {
                        Response::Opened { contents, .. } => check(&contents),
                        other => panic!("expected Opened, got {other:?}"),
                    }
                    seen += 1;
                }
            }
            seen
        }));
    }

    let mut writer = Client::connect(addr).unwrap();
    for round in 1..=30u32 {
        writer.begin_transaction().unwrap();
        let opened = writer
            .open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
            .unwrap();
        let body = format!("{round} | {round}").into_bytes();
        writer
            .modify_node(
                MAIN_CONTEXT,
                node,
                opened.current_time,
                body.clone(),
                vec![],
            )
            .unwrap();
        // Read-your-writes: the transaction owner sees its uncommitted
        // version (the batch from the owner takes the exclusive path too).
        let mine = writer.batch(vec![open_req(node)]).unwrap();
        match &mine[0] {
            Response::Opened { contents, .. } => assert_eq!(&contents[..], &body[..]),
            other => panic!("expected Opened, got {other:?}"),
        }
        writer.commit_transaction().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut total = 0;
    for r in readers {
        total += r.join().unwrap();
    }
    assert!(total > 0, "readers made no progress");
    server.stop();
}
