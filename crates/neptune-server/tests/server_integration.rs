//! End-to-end tests: client ↔ TCP server ↔ HAM, the paper's multi-user
//! architecture exercised over real loopback sockets.

use std::path::PathBuf;

use neptune_ham::context::ConflictPolicy;
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{LinkPt, Protections, Time, MAIN_CONTEXT};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Machine};
use neptune_server::{serve, serve_with, Client, ServeOptions};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-server-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str) -> (neptune_server::ServerHandle, PathBuf) {
    let dir = tmpdir(name);
    let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let handle = serve(ham, "127.0.0.1:0").unwrap();
    (handle, dir)
}

#[test]
fn full_document_workflow_over_the_wire() {
    let (server, _dir) = start("workflow");
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();

    // Build a small document.
    let (root, t_root) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(
        MAIN_CONTEXT,
        root,
        t_root,
        b"Neptune paper\n".to_vec(),
        vec![],
    )
    .unwrap();
    let (sec, t_sec) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, sec, t_sec, b"Section 1\n".to_vec(), vec![])
        .unwrap();
    let (link, _) = c
        .add_link(
            MAIN_CONTEXT,
            LinkPt::current(root, 8),
            LinkPt::current(sec, 0),
        )
        .unwrap();

    let rel = c.get_attribute_index(MAIN_CONTEXT, "relation").unwrap();
    c.set_link_attribute_value(MAIN_CONTEXT, link, rel, Value::str("isPartOf"))
        .unwrap();
    let icon = c.get_attribute_index(MAIN_CONTEXT, "icon").unwrap();
    c.set_node_attribute_value(MAIN_CONTEXT, root, icon, Value::str("root"))
        .unwrap();

    // Query it back.
    let sg = c
        .get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            "true",
            "relation = isPartOf",
            vec![icon],
            vec![rel],
        )
        .unwrap();
    assert_eq!(sg.nodes.len(), 2);
    assert_eq!(sg.links.len(), 1);

    let lin = c
        .linearize_graph(
            MAIN_CONTEXT,
            root,
            Time::CURRENT,
            "true",
            "true",
            vec![],
            vec![],
        )
        .unwrap();
    assert_eq!(lin.node_ids(), vec![root, sec]);

    // Node operations.
    let opened = c
        .open_node(MAIN_CONTEXT, root, Time::CURRENT, vec![icon])
        .unwrap();
    assert_eq!(&opened.contents[..], b"Neptune paper\n");
    assert_eq!(opened.values, vec![Some(Value::str("root"))]);
    assert_eq!(opened.link_pts.len(), 1);

    let (to, _) = c.get_to_node(MAIN_CONTEXT, link, Time::CURRENT).unwrap();
    assert_eq!(to, sec);

    let (major, minor) = c.get_node_versions(MAIN_CONTEXT, root).unwrap();
    assert_eq!(major.len(), 2);
    assert!(!minor.is_empty());

    let t1 = major[0].time;
    let diffs = c
        .get_node_differences(MAIN_CONTEXT, root, t1, Time::CURRENT)
        .unwrap();
    assert_eq!(diffs.len(), 1);

    // Error paths come back as server errors, not protocol failures.
    let err = c.open_node(
        MAIN_CONTEXT,
        neptune_ham::NodeIndex(999),
        Time::CURRENT,
        vec![],
    );
    assert!(matches!(err, Err(neptune_server::ClientError::Server(_))));

    server.stop();
}

#[test]
fn transactions_isolate_concurrent_clients() {
    let (server, _dir) = start("txn-isolation");
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut other = Client::connect(server.addr()).unwrap();

    let (node, t0) = writer.add_node(MAIN_CONTEXT, true).unwrap();
    writer
        .modify_node(
            MAIN_CONTEXT,
            node,
            t0,
            b"committed state\n".to_vec(),
            vec![],
        )
        .unwrap();

    // Writer opens a transaction and mutates.
    writer.begin_transaction().unwrap();
    let t = writer.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
    writer
        .modify_node(
            MAIN_CONTEXT,
            node,
            t,
            b"uncommitted edit\n".to_vec(),
            vec![],
        )
        .unwrap();

    // The other client's request waits for the transaction; run it in a
    // thread while the writer aborts.
    let addr = server.addr();
    let handle = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
            .unwrap()
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    writer.abort_transaction().unwrap();
    let seen = handle.join().unwrap();
    assert_eq!(&seen.contents[..], b"committed state\n");

    // After the abort, everyone sees the pre-transaction state.
    let opened = other
        .open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
        .unwrap();
    assert_eq!(&opened.contents[..], b"committed state\n");

    // Commit/abort without ownership is an error.
    assert!(matches!(
        other.commit_transaction(),
        Err(neptune_server::ClientError::Server(_))
    ));
    server.stop();
}

#[test]
fn disconnect_aborts_open_transaction() {
    let (server, _dir) = start("disconnect");
    let mut a = Client::connect(server.addr()).unwrap();
    let (node, t0) = a.add_node(MAIN_CONTEXT, true).unwrap();
    a.modify_node(MAIN_CONTEXT, node, t0, b"safe\n".to_vec(), vec![])
        .unwrap();

    {
        let mut doomed = Client::connect(server.addr()).unwrap();
        doomed.begin_transaction().unwrap();
        let t = doomed.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
        doomed
            .modify_node(
                MAIN_CONTEXT,
                node,
                t,
                b"lost on disconnect\n".to_vec(),
                vec![],
            )
            .unwrap();
        // Dropped here without commit: the server must abort for us.
    }
    // Give the server a moment to notice the disconnect.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let opened = a
        .open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
        .unwrap();
    assert_eq!(&opened.contents[..], b"safe\n");
    server.stop();
}

#[test]
fn state_survives_server_restart() {
    let dir = tmpdir("restart");
    let pid;
    let node;
    {
        let (ham, p, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        pid = p;
        let server = serve(ham, "127.0.0.1:0").unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        let (n, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
        node = n;
        c.modify_node(MAIN_CONTEXT, n, t0, b"persistent\n".to_vec(), vec![])
            .unwrap();
        server.stop(); // checkpoints
    }
    let (ham, _) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let opened = c
        .open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
        .unwrap();
    assert_eq!(&opened.contents[..], b"persistent\n");
    server.stop();
}

#[test]
fn contexts_and_demons_over_the_wire() {
    let (server, _dir) = start("ctx-demons");
    let mut c = Client::connect(server.addr()).unwrap();

    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, node, t0, b"main\n".to_vec(), vec![])
        .unwrap();

    // Demons.
    c.set_graph_demon_value(
        MAIN_CONTEXT,
        Event::NodeModified,
        Some(DemonSpec::mark_node("dirtier", "dirty", true)),
    )
    .unwrap();
    let demons = c.get_graph_demons(MAIN_CONTEXT, Time::CURRENT).unwrap();
    assert_eq!(demons.len(), 1);

    // Contexts.
    let private = c.create_context(MAIN_CONTEXT).unwrap();
    let t = c.get_node_time_stamp(private, node).unwrap();
    c.modify_node(private, node, t, b"private\n".to_vec(), vec![])
        .unwrap();
    assert_eq!(
        c.open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
            .unwrap()
            .contents[..],
        b"main\n"[..]
    );
    let report = c.merge_context(private, ConflictPolicy::Fail).unwrap();
    assert_eq!(report.nodes_modified, vec![node]);
    assert_eq!(
        c.open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
            .unwrap()
            .contents[..],
        b"private\n"[..]
    );
    // The merge fired the demon on the main context's node.
    let dirty = c.get_attribute_index(MAIN_CONTEXT, "dirty").unwrap();
    // (Demon fires on merge-applied modifications only if the merge path
    // goes through modify events; the direct graph merge does not fire
    // demons, so "dirty" may be unset — the private-world modify did not
    // touch the main context. Verify instead that contexts list correctly.)
    let _ = dirty;
    let contexts = c.list_contexts().unwrap();
    assert!(contexts.contains(&MAIN_CONTEXT));
    assert!(contexts.contains(&private));
    c.destroy_context(private).unwrap();
    assert_eq!(c.list_contexts().unwrap().len(), 1);

    c.checkpoint().unwrap();
    server.stop();
}

#[test]
fn bad_predicate_comes_back_as_server_error() {
    let (server, _dir) = start("bad-pred");
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c.get_graph_query(
        MAIN_CONTEXT,
        Time::CURRENT,
        "document =",
        "true",
        vec![],
        vec![],
    );
    match err {
        Err(neptune_server::ClientError::Server(msg)) => {
            assert!(msg.contains("predicate"), "{msg}");
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // The connection is still usable afterwards.
    c.ping().unwrap();
    server.stop();
}

#[test]
fn waiting_writer_times_out_on_a_hung_transaction() {
    let (server, _dir) = start("lock-timeout");
    let mut holder = Client::connect(server.addr()).unwrap();
    holder.begin_transaction().unwrap();
    holder.add_node(MAIN_CONTEXT, true).unwrap();

    // Another client's request waits LOCK_TIMEOUT, then fails with a
    // timeout error rather than hanging forever.
    let mut waiter = Client::connect(server.addr()).unwrap();
    let started = std::time::Instant::now();
    let result = waiter.add_node(MAIN_CONTEXT, true);
    let waited = started.elapsed();
    match result {
        Err(neptune_server::ClientError::Server(msg)) => {
            assert!(msg.contains("timed out"), "{msg}");
        }
        other => panic!("expected lock timeout, got {other:?}"),
    }
    assert!(waited >= neptune_server::server::LOCK_TIMEOUT);

    // Once the holder finishes, the waiter succeeds.
    holder.commit_transaction().unwrap();
    waiter.add_node(MAIN_CONTEXT, true).unwrap();
    server.stop();
}

#[test]
fn dead_transaction_owner_releases_the_lock_for_the_next_client() {
    let (server, _dir) = start("dead-owner");
    let addr = server.addr();

    // A client dies abruptly while holding the explicit transaction.
    {
        let mut doomed = Client::connect(addr).unwrap();
        doomed.begin_transaction().unwrap();
        doomed.add_node(MAIN_CONTEXT, true).unwrap();
        // Dropped here: the socket closes with the transaction still open.
    }

    // The next client must be able to acquire the transaction lock well
    // within the lock timeout — the server's connection cleanup has to
    // abort the orphaned transaction and clear its ownership.
    let mut next = Client::connect(addr).unwrap();
    let started = std::time::Instant::now();
    next.begin_transaction().unwrap();
    assert!(
        started.elapsed() < neptune_server::server::LOCK_TIMEOUT,
        "begin_transaction should not have waited out the full lock timeout"
    );
    next.add_node(MAIN_CONTEXT, true).unwrap();
    next.commit_transaction().unwrap();
    server.stop();
}

#[test]
fn lock_wait_deadline_is_fixed_across_spurious_wakeups() {
    // A waiter's total wait must be bounded by ONE lock timeout even when
    // the condvar fires repeatedly without the transaction ending; a wait
    // that restarts its timeout on every wakeup would block ~forever here.
    let dir = tmpdir("fixed-deadline");
    let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let timeout = std::time::Duration::from_millis(600);
    let server = serve_with(
        ham,
        "127.0.0.1:0",
        ServeOptions {
            lock_timeout: timeout,
        },
    )
    .unwrap();

    let mut holder = Client::connect(server.addr()).unwrap();
    holder.begin_transaction().unwrap();

    // Hammer the condvar with wakeups while a second client waits.
    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let started = std::time::Instant::now();
        let result = c.add_node(MAIN_CONTEXT, true);
        (result, started.elapsed())
    });
    let poke_until = std::time::Instant::now() + timeout * 4;
    while std::time::Instant::now() < poke_until {
        server.poke_txn_waiters();
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    let (result, waited) = waiter.join().unwrap();
    match result {
        Err(neptune_server::ClientError::Server(msg)) => {
            assert!(msg.contains("timed out"), "{msg}");
        }
        other => panic!("expected lock timeout, got {other:?}"),
    }
    assert!(waited >= timeout, "timed out early: {waited:?}");
    assert!(
        waited < timeout * 3,
        "wakeups extended the deadline: waited {waited:?} against a {timeout:?} timeout"
    );

    holder.abort_transaction().unwrap();
    server.stop();
}

#[test]
fn concurrent_readers_never_see_torn_state() {
    let (server, _dir) = start("read-stress");
    let addr = server.addr();
    let mut setup = Client::connect(addr).unwrap();
    let (node, t0) = setup.add_node(MAIN_CONTEXT, true).unwrap();
    setup
        .modify_node(MAIN_CONTEXT, node, t0, b"gen 0 | gen 0\n".to_vec(), vec![])
        .unwrap();

    // One writer rewrites the node with self-consistent payloads (the
    // generation appears twice); readers hammer it concurrently and verify
    // every snapshot they see is internally consistent — a torn read would
    // surface as mismatched halves.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut generation = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                generation += 1;
                let t = c.get_node_time_stamp(MAIN_CONTEXT, node).unwrap();
                let payload = format!("gen {generation} | gen {generation}\n");
                c.modify_node(MAIN_CONTEXT, node, t, payload.into_bytes(), vec![])
                    .unwrap();
            }
            generation
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let opened = c
                        .open_node(MAIN_CONTEXT, node, Time::CURRENT, vec![])
                        .unwrap();
                    let text = String::from_utf8(opened.contents.to_vec()).unwrap();
                    let (left, right) = text
                        .trim_end()
                        .split_once(" | ")
                        .unwrap_or_else(|| panic!("malformed payload: {text:?}"));
                    assert_eq!(left, right, "torn read: {text:?}");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(1500));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let generations = writer.join().unwrap();
    let total_reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(generations > 0, "writer made no progress");
    assert!(total_reads > 0, "readers made no progress");

    // Historical reads replayed through the cache agree with themselves.
    let versions = setup.get_node_versions(MAIN_CONTEXT, node).unwrap().0;
    for v in versions.iter().rev().take(50) {
        let opened = setup.open_node(MAIN_CONTEXT, node, v.time, vec![]).unwrap();
        let text = String::from_utf8(opened.contents.to_vec()).unwrap();
        let (left, right) = text.trim_end().split_once(" | ").unwrap();
        assert_eq!(left, right, "torn historical read at {:?}", v.time);
    }
    let (hits, misses, _, _) = setup.cache_stats().unwrap();
    assert!(hits + misses > 0, "version cache was never consulted");
    server.stop();
}

#[test]
fn many_clients_interleave_without_corruption() {
    let (server, _dir) = start("many-clients");
    let addr = server.addr();
    let mut c0 = Client::connect(addr).unwrap();
    let doc = c0.get_attribute_index(MAIN_CONTEXT, "document").unwrap();

    let threads: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut my_nodes = Vec::new();
                for j in 0..10 {
                    let (n, t) = c.add_node(MAIN_CONTEXT, true).unwrap();
                    c.modify_node(
                        MAIN_CONTEXT,
                        n,
                        t,
                        format!("client {i} node {j}\n").into_bytes(),
                        vec![],
                    )
                    .unwrap();
                    let doc = c.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
                    c.set_node_attribute_value(
                        MAIN_CONTEXT,
                        n,
                        doc,
                        Value::str(format!("client-{i}")),
                    )
                    .unwrap();
                    my_nodes.push((n, i, j));
                }
                my_nodes
            })
        })
        .collect();
    let mut all: Vec<(neptune_ham::NodeIndex, i32, i32)> = Vec::new();
    for t in threads {
        all.extend(t.join().unwrap());
    }
    // Every node holds exactly what its writer wrote.
    for (n, i, j) in all {
        let opened = c0
            .open_node(MAIN_CONTEXT, n, Time::CURRENT, vec![doc])
            .unwrap();
        assert_eq!(
            opened.contents[..],
            format!("client {i} node {j}\n").into_bytes()[..]
        );
        assert_eq!(opened.values[0], Some(Value::str(format!("client-{i}"))));
    }
    // And the query sees all 40.
    let sg = c0
        .get_graph_query(
            MAIN_CONTEXT,
            Time::CURRENT,
            "exists(document)",
            "true",
            vec![],
            vec![],
        )
        .unwrap();
    assert_eq!(sg.nodes.len(), 40);
    server.stop();
}
