//! Property tests for the wire protocol: every generatable message must
//! survive an encode/decode roundtrip, and arbitrary bytes must never
//! panic the decoder (a hostile or corrupt peer can send anything).

use proptest::prelude::*;

use neptune_ham::context::ConflictPolicy;
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{AttributeIndex, ContextId, LinkIndex, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_server::{Request, Response};
use neptune_storage::codec::{Decode, Encode};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        "\\PC{0,24}".prop_map(Value::Str),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        // Finite floats only: NaN breaks PartialEq-based roundtrip checks.
        (-1e12f64..1e12).prop_map(Value::Float),
    ]
}

fn linkpt_strategy() -> impl Strategy<Value = LinkPt> {
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(n, p, t, track)| LinkPt {
        node: NodeIndex(n),
        position: p,
        time: Time(t),
        track_current: track,
    })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0usize..Event::ALL.len()).prop_map(|i| Event::ALL[i])
}

fn demon_strategy() -> impl Strategy<Value = DemonSpec> {
    prop_oneof![
        ("\\w{1,8}", "\\PC{0,20}").prop_map(|(n, m)| DemonSpec::notify(n, m)),
        ("\\w{1,8}", "\\w{1,8}", value_strategy())
            .prop_map(|(n, a, v)| DemonSpec::mark_node(n, a, v)),
        ("\\w{1,8}", "\\w{1,8}").prop_map(|(n, c)| DemonSpec::call(n, c)),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let ctx = any::<u64>().prop_map(ContextId);
    let node = any::<u64>().prop_map(NodeIndex);
    let link = any::<u64>().prop_map(LinkIndex);
    let time = any::<u64>().prop_map(Time);
    let attr = any::<u64>().prop_map(AttributeIndex);
    prop_oneof![
        (ctx.clone(), any::<bool>())
            .prop_map(|(context, keep_history)| Request::AddNode { context, keep_history }),
        (ctx.clone(), node.clone())
            .prop_map(|(context, node)| Request::DeleteNode { context, node }),
        (ctx.clone(), linkpt_strategy(), linkpt_strategy())
            .prop_map(|(context, from, to)| Request::AddLink { context, from, to }),
        (ctx.clone(), link.clone(), time.clone(), any::<bool>(), linkpt_strategy()).prop_map(
            |(context, link, time, keep_source, pt)| Request::CopyLink {
                context,
                link,
                time,
                keep_source,
                pt
            }
        ),
        (
            ctx.clone(),
            node.clone(),
            time.clone(),
            "\\PC{0,30}",
            "\\PC{0,30}",
            proptest::collection::vec(any::<u64>().prop_map(AttributeIndex), 0..4),
        )
            .prop_map(|(context, start, time, node_pred, link_pred, node_attrs)| {
                Request::LinearizeGraph {
                    context,
                    start,
                    time,
                    node_pred,
                    link_pred,
                    node_attrs,
                    link_attrs: vec![],
                }
            }),
        (
            ctx.clone(),
            node.clone(),
            time.clone(),
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(linkpt_strategy(), 0..4),
        )
            .prop_map(|(context, node, time, contents, link_pts)| Request::ModifyNode {
                context,
                node,
                time,
                contents,
                link_pts
            }),
        (ctx.clone(), node.clone(), attr.clone(), value_strategy()).prop_map(
            |(context, node, attr, value)| Request::SetNodeAttributeValue {
                context,
                node,
                attr,
                value
            }
        ),
        (ctx.clone(), event_strategy(), proptest::option::of(demon_strategy())).prop_map(
            |(context, event, demon)| Request::SetGraphDemonValue { context, event, demon }
        ),
        Just(Request::BeginTransaction),
        Just(Request::CommitTransaction),
        Just(Request::AbortTransaction),
        (ctx.clone()).prop_map(|from| Request::CreateContext { from }),
        (ctx.clone(), prop_oneof![
            Just(ConflictPolicy::Fail),
            Just(ConflictPolicy::PreferChild),
            Just(ConflictPolicy::PreferParent)
        ])
            .prop_map(|(child, policy)| Request::MergeContext { child, policy }),
        Just(Request::Ping),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        (any::<u64>(), any::<u64>())
            .prop_map(|(n, t)| Response::NodeCreated(NodeIndex(n), Time(t))),
        (
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(linkpt_strategy(), 0..4),
            proptest::collection::vec(proptest::option::of(value_strategy()), 0..4),
            any::<u64>(),
        )
            .prop_map(|(contents, link_pts, values, t)| Response::Opened {
                contents,
                link_pts,
                values,
                current_time: Time(t)
            }),
        proptest::collection::vec(value_strategy(), 0..6).prop_map(Response::Values),
        "\\PC{0,40}".prop_map(Response::Error),
        (any::<u64>()).prop_map(Response::TxnStarted),
        proptest::collection::vec(any::<u64>().prop_map(ContextId), 0..4)
            .prop_map(Response::Contexts),
    ]
}

proptest! {
    #[test]
    fn requests_roundtrip(req in request_strategy()) {
        let bytes = req.to_bytes();
        let decoded = Request::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded, req);
    }

    #[test]
    fn responses_roundtrip(resp in response_strategy()) {
        let bytes = resp.to_bytes();
        let decoded = Response::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded, resp);
    }

    #[test]
    fn arbitrary_bytes_never_panic_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
    }

    #[test]
    fn truncation_never_panics(req in request_strategy(), cut in 0usize..64) {
        let bytes = req.to_bytes();
        let cut = cut.min(bytes.len());
        let _ = Request::from_bytes(&bytes[..cut]);
    }
}
