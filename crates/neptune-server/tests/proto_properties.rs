//! Randomized (seeded, deterministic) tests for the wire protocol: every
//! generatable message must survive an encode/decode roundtrip, and
//! arbitrary bytes must never panic the decoder (a hostile or corrupt
//! peer can send anything).

use neptune_ham::context::ConflictPolicy;
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{AttributeIndex, ContextId, LinkIndex, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_server::{Request, Response};
use neptune_storage::codec::{Decode, Encode};
use neptune_storage::testutil::XorShift;

fn gen_string(rng: &mut XorShift, max: usize) -> String {
    let len = rng.below(max as u64 + 1) as usize;
    (0..len)
        .map(|_| match rng.below(5) {
            0 => char::from(b'A' + rng.below(26) as u8),
            1 => char::from(b'a' + rng.below(26) as u8),
            2 => char::from(b'0' + rng.below(10) as u8),
            3 => ['é', '→', '日'][rng.index(3)],
            _ => ' ',
        })
        .collect()
}

fn gen_word(rng: &mut XorShift, max: usize) -> String {
    let len = 1 + rng.below(max as u64) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.below(26) as u8))
        .collect()
}

fn gen_value(rng: &mut XorShift) -> Value {
    match rng.below(4) {
        0 => Value::Str(gen_string(rng, 24)),
        1 => Value::Int(rng.next_u64() as i64),
        2 => Value::Bool(rng.chance(1, 2)),
        // Finite floats only: NaN breaks PartialEq-based roundtrip checks.
        _ => Value::Float((rng.next_u64() % 2_000_000) as f64 - 1_000_000.0),
    }
}

fn gen_linkpt(rng: &mut XorShift) -> LinkPt {
    LinkPt {
        node: NodeIndex(rng.next_u64()),
        position: rng.next_u64(),
        time: Time(rng.next_u64()),
        track_current: rng.chance(1, 2),
    }
}

fn gen_demon(rng: &mut XorShift) -> DemonSpec {
    match rng.below(3) {
        0 => DemonSpec::notify(gen_word(rng, 8), gen_string(rng, 20)),
        1 => DemonSpec::mark_node(gen_word(rng, 8), gen_word(rng, 8), gen_value(rng)),
        _ => DemonSpec::call(gen_word(rng, 8), gen_word(rng, 8)),
    }
}

fn gen_request(rng: &mut XorShift) -> Request {
    match rng.below(13) {
        0 => Request::AddNode {
            context: ContextId(rng.next_u64()),
            keep_history: rng.chance(1, 2),
        },
        1 => Request::DeleteNode {
            context: ContextId(rng.next_u64()),
            node: NodeIndex(rng.next_u64()),
        },
        2 => Request::AddLink {
            context: ContextId(rng.next_u64()),
            from: gen_linkpt(rng),
            to: gen_linkpt(rng),
        },
        3 => Request::CopyLink {
            context: ContextId(rng.next_u64()),
            link: LinkIndex(rng.next_u64()),
            time: Time(rng.next_u64()),
            keep_source: rng.chance(1, 2),
            pt: gen_linkpt(rng),
        },
        4 => Request::LinearizeGraph {
            context: ContextId(rng.next_u64()),
            start: NodeIndex(rng.next_u64()),
            time: Time(rng.next_u64()),
            node_pred: gen_string(rng, 30),
            link_pred: gen_string(rng, 30),
            node_attrs: (0..rng.below(4))
                .map(|_| AttributeIndex(rng.next_u64()))
                .collect(),
            link_attrs: vec![],
        },
        5 => {
            let len = rng.below(64) as usize;
            Request::ModifyNode {
                context: ContextId(rng.next_u64()),
                node: NodeIndex(rng.next_u64()),
                time: Time(rng.next_u64()),
                contents: rng.bytes(len),
                link_pts: (0..rng.below(4)).map(|_| gen_linkpt(rng)).collect(),
            }
        }
        6 => Request::SetNodeAttributeValue {
            context: ContextId(rng.next_u64()),
            node: NodeIndex(rng.next_u64()),
            attr: AttributeIndex(rng.next_u64()),
            value: gen_value(rng),
        },
        7 => Request::SetGraphDemonValue {
            context: ContextId(rng.next_u64()),
            event: Event::ALL[rng.index(Event::ALL.len())],
            demon: if rng.chance(1, 2) {
                Some(gen_demon(rng))
            } else {
                None
            },
        },
        8 => Request::BeginTransaction,
        9 => Request::CommitTransaction,
        10 => Request::AbortTransaction,
        11 => Request::CreateContext {
            from: ContextId(rng.next_u64()),
        },
        _ => match rng.below(4) {
            0 => Request::MergeContext {
                child: ContextId(rng.next_u64()),
                policy: [
                    ConflictPolicy::Fail,
                    ConflictPolicy::PreferChild,
                    ConflictPolicy::PreferParent,
                ][rng.index(3)],
            },
            _ => Request::Ping,
        },
    }
}

fn gen_response(rng: &mut XorShift) -> Response {
    match rng.below(7) {
        0 => Response::Ok,
        1 => Response::NodeCreated(NodeIndex(rng.next_u64()), Time(rng.next_u64())),
        2 => {
            let len = rng.below(64) as usize;
            Response::Opened {
                contents: rng.bytes(len).into(),
                link_pts: (0..rng.below(4)).map(|_| gen_linkpt(rng)).collect(),
                values: (0..rng.below(4))
                    .map(|_| {
                        if rng.chance(1, 2) {
                            Some(gen_value(rng))
                        } else {
                            None
                        }
                    })
                    .collect(),
                current_time: Time(rng.next_u64()),
            }
        }
        3 => Response::Values((0..rng.below(6)).map(|_| gen_value(rng)).collect()),
        4 => Response::Error(gen_string(rng, 40)),
        5 => Response::TxnStarted(rng.next_u64()),
        _ => Response::Contexts(
            (0..rng.below(4))
                .map(|_| ContextId(rng.next_u64()))
                .collect(),
        ),
    }
}

#[test]
fn requests_roundtrip() {
    let mut rng = XorShift::new(0x7001);
    for _ in 0..1000 {
        let req = gen_request(&mut rng);
        let bytes = req.to_bytes();
        let decoded = Request::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, req);
    }
}

#[test]
fn responses_roundtrip() {
    let mut rng = XorShift::new(0x7002);
    for _ in 0..1000 {
        let resp = gen_response(&mut rng);
        let bytes = resp.to_bytes();
        let decoded = Response::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, resp);
    }
}

#[test]
fn arbitrary_bytes_never_panic_decoders() {
    let mut rng = XorShift::new(0x7003);
    for _ in 0..1000 {
        let len = rng.below(200) as usize;
        let bytes = rng.bytes(len);
        let _ = Request::from_bytes(&bytes);
        let _ = Response::from_bytes(&bytes);
    }
}

#[test]
fn truncation_never_panics() {
    let mut rng = XorShift::new(0x7004);
    for _ in 0..500 {
        let req = gen_request(&mut rng);
        let bytes = req.to_bytes();
        let cut = rng.index(bytes.len() + 1);
        let _ = Request::from_bytes(&bytes[..cut]);
    }
}
