//! End-to-end causal tracing: pipelined requests each form one trace whose
//! spans link client → server → view/HAM → storage; the flight recorder
//! keeps slow and failed traces past the recent ring; and pre-tracing
//! clients speaking the unprefixed protocol still get served.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use neptune_ham::types::{Protections, Time, MAIN_CONTEXT};
use neptune_ham::Ham;
use neptune_obs::{SpanRecord, TraceRecord};
use neptune_server::{serve, Client, ObsSetting, Request, Response};
use neptune_storage::vfs::{StdVfs, Vfs, VfsFile};

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neptune-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn span<'t>(t: &'t TraceRecord, name: &str) -> Option<&'t SpanRecord> {
    t.spans.iter().find(|s| s.name == name)
}

/// Walk parent pointers from `s` to a root; true if `ancestor` is on the way.
fn has_ancestor(t: &TraceRecord, s: &SpanRecord, ancestor: u64) -> bool {
    let mut current = s.parent;
    let mut hops = 0;
    while let Some(p) = current {
        if p == ancestor {
            return true;
        }
        hops += 1;
        if hops > t.spans.len() {
            return false; // corrupt chain — fail the lookup, not the test harness
        }
        current = t
            .spans
            .iter()
            .find(|x| x.span_id == p)
            .and_then(|x| x.parent);
    }
    false
}

#[test]
fn pipelined_requests_each_produce_one_linked_trace() {
    let dir = tmpdir("pipeline");
    let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(
        MAIN_CONTEXT,
        node,
        t0,
        b"traced contents\n".to_vec(),
        vec![],
    )
    .unwrap();

    // Four reads in one pipelined flight: four concurrent wire scopes, four
    // independent traces.
    let open = Request::OpenNode {
        context: MAIN_CONTEXT,
        node,
        time: Time::CURRENT,
        attrs: vec![],
    };
    let responses = c
        .pipeline(&[open.clone(), open.clone(), open.clone(), open])
        .unwrap();
    assert_eq!(responses.len(), 4);

    // Pull the completed traces back over the FlightDump RPC and check the
    // causal chain in each: client.call is the root (the client originated
    // the trace), server.rpc parents directly under it via the wire
    // context, and the read work parents under server.rpc.
    let traces = c.trace_dump().unwrap();
    let opens: Vec<&TraceRecord> = traces
        .iter()
        .filter(|t| t.root_name == "client.call" && t.root_detail == "OpenNode")
        .collect();
    assert!(
        opens.len() >= 4,
        "expected ≥4 OpenNode traces, got {}",
        opens.len()
    );
    let mut ids = std::collections::BTreeSet::new();
    for t in &opens {
        ids.insert(t.trace_id);
        let root = span(t, "client.call").unwrap_or_else(|| panic!("no client span: {t:?}"));
        assert_eq!(root.parent, None, "client.call must be the trace root");
        let rpc = span(t, "server.rpc").unwrap_or_else(|| panic!("no server span: {t:?}"));
        assert_eq!(
            rpc.parent,
            Some(root.span_id),
            "server.rpc must parent under the client's wire span"
        );
        let read = t
            .spans
            .iter()
            .find(|s| s.name.starts_with("view.") || s.name.starts_with("ham."))
            .unwrap_or_else(|| panic!("no view/HAM span in {t:?}"));
        assert!(
            has_ancestor(t, read, rpc.span_id),
            "{} must descend from server.rpc in {t:?}",
            read.name
        );
    }
    assert!(ids.len() >= 4, "pipelined requests must not share a trace");

    // A write's trace reaches all the way into the storage layer.
    let modify = traces
        .iter()
        .find(|t| t.root_detail == "ModifyNode")
        .expect("the setup modifyNode should still be recorded");
    let rpc = span(modify, "server.rpc").unwrap();
    let wal =
        span(modify, "storage.wal_append").unwrap_or_else(|| panic!("no WAL span in {modify:?}"));
    assert!(has_ancestor(modify, wal, rpc.span_id));
    server.stop();
}

/// A Vfs that makes every file fsync slow — the storage-layer fault that the
/// flight recorder's tail-based retention exists to catch.
#[derive(Debug)]
struct DelayVfs {
    inner: Arc<dyn Vfs>,
    delay: Duration,
}

#[derive(Debug)]
struct DelayFile {
    inner: Box<dyn VfsFile>,
    delay: Duration,
}

impl VfsFile for DelayFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.inner.append(data)
    }
    fn sync(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.sync()
    }
    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.inner.read_all()
    }
    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }
}

impl Vfs for DelayVfs {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(DelayFile {
            inner: self.inner.open_append(path)?,
            delay: self.delay,
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(DelayFile {
            inner: self.inner.create(path)?,
            delay: self.delay,
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.inner.sync_dir(dir)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.remove_dir_all(dir)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<std::ffi::OsString>> {
        self.inner.read_dir(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
    fn set_permissions(&self, path: &Path, mode: u32) -> io::Result<()> {
        self.inner.set_permissions(path, mode)
    }
}

#[test]
fn slow_and_failed_traces_outlive_the_recent_ring() {
    let dir = tmpdir("retention");
    let vfs = Arc::new(DelayVfs {
        inner: StdVfs::arc(),
        delay: Duration::from_millis(150),
    });
    let (ham, _, _) = Ham::create_graph_with(vfs, &dir, Protections::DEFAULT).unwrap();
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    // Adjust the retention threshold at runtime, over the wire. The
    // delayed fsync (150ms) is well past it; a loopback ping is well under.
    c.obs_control(ObsSetting::SlowOpMs(Some(75))).unwrap();
    // Enabling when already enabled is a no-op — this just proves the
    // kill-switch RPC round-trips.
    c.obs_control(ObsSetting::Enabled(true)).unwrap();

    // One slow write, one failed read, one fast ping.
    let (node, t0) = c.add_node(MAIN_CONTEXT, true).unwrap();
    c.modify_node(MAIN_CONTEXT, node, t0, b"slow write\n".to_vec(), vec![])
        .unwrap();
    assert!(c
        .open_node(
            MAIN_CONTEXT,
            neptune_ham::NodeIndex(999),
            Time::CURRENT,
            vec![]
        )
        .is_err());
    c.ping().unwrap();

    let dump = c.trace_dump().unwrap();
    let slow_id = dump
        .iter()
        .find(|t| t.root_detail == "ModifyNode" && t.total_ns >= 75_000_000)
        .map(|t| t.trace_id)
        .expect("the delayed modifyNode should be recorded as slow");
    let err_id = dump
        .iter()
        .find(|t| t.root_detail == "OpenNode" && t.error)
        .map(|t| t.trace_id)
        .expect("the failed openNode should be recorded with its error flag");
    let fast_id = dump
        .iter()
        .find(|t| t.root_detail == "Ping" && !t.error && t.total_ns < 75_000_000)
        .map(|t| t.trace_id)
        .expect("the ping should be recorded");

    // Flood the recent ring (capacity 32) with fast traffic.
    for _ in 0..40 {
        c.ping().unwrap();
    }

    // Tail-based retention: the slow and failed traces survive the churn
    // and stay addressable by id over the Trace RPC; the fast one aged out.
    let slow = c
        .trace(slow_id)
        .unwrap()
        .expect("slow trace must be retained");
    assert!(span(&slow, "storage.wal_fsync").is_some(), "{slow:?}");
    let err = c
        .trace(err_id)
        .unwrap()
        .expect("error trace must be retained");
    assert!(err.error);
    assert!(
        c.trace(fast_id).unwrap().is_none(),
        "fast trace should age out"
    );
    server.stop();
}

#[test]
fn pre_tracing_clients_are_served_and_traced_server_side() {
    let dir = tmpdir("legacy");
    let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
    let server = serve(ham, "127.0.0.1:0").unwrap();

    // An old client writes a bare Request frame — no trace-context prefix.
    // The server must serve it and originate the trace itself (root
    // server.rpc, not client.call). Other tests in this binary churn the
    // shared recorder, so retry the observe step a few times.
    let mut c = Client::connect(server.addr()).unwrap();
    let mut found = false;
    for _ in 0..10 {
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).ok();
        neptune_server::frame::write_frame(&mut stream, &Request::Ping).unwrap();
        let response: Response = neptune_server::frame::read_frame(&mut stream).unwrap();
        assert_eq!(response, Response::Ok);

        let dump = c.trace_dump().unwrap();
        if dump
            .iter()
            .any(|t| t.root_name == "server.rpc" && t.root_detail == "Ping")
        {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "legacy request should yield a server-originated trace"
    );
    server.stop();
}
