//! Message framing over a byte stream.
//!
//! Each message travels as `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! The CRC protects against a corrupted or desynchronized stream turning
//! into a silently wrong operation on the server.

use std::io::{Read, Write};

use neptune_storage::checksum::crc32;
use neptune_storage::codec::{Decode, Encode};
use neptune_storage::error::{Result, StorageError};

/// Largest accepted frame (64 MiB): a node's contents can be large, but a
/// length beyond this indicates a desynchronized or hostile stream.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Write one encodable message as a frame.
pub fn write_frame<W: Write, T: Encode>(writer: &mut W, message: &T) -> Result<()> {
    let payload = message.to_bytes();
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    writer.write_all(&frame)?;
    writer.flush()?;
    Ok(())
}

/// Read one frame and decode it as `T`.
///
/// Returns `Err(StorageError::Io)` with `UnexpectedEof` on clean stream
/// close before a frame starts (the caller treats that as disconnect).
pub fn read_frame<R: Read, T: Decode>(reader: &mut R) -> Result<T> {
    let mut header = [0u8; 8];
    reader.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(StorageError::InvalidTag {
            context: "frame length",
            tag: len as u64,
        });
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != expected_crc {
        return Err(StorageError::ChecksumMismatch {
            expected: expected_crc,
            actual,
        });
    }
    T::from_bytes(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"hello hypertext".to_string()).unwrap();
        write_frame(&mut buf, &42u64).unwrap();
        let mut cursor = Cursor::new(buf);
        let s: String = read_frame(&mut cursor).unwrap();
        assert_eq!(s, "hello hypertext");
        let n: u64 = read_frame(&mut cursor).unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"payload".to_string()).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame::<_, String>(&mut cursor),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = Cursor::new(buf);
        assert!(read_frame::<_, String>(&mut cursor).is_err());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"payload".to_string()).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame::<_, String>(&mut cursor).is_err());
    }
}
