//! Message framing over a byte stream.
//!
//! Each message travels as `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! The CRC protects against a corrupted or desynchronized stream turning
//! into a silently wrong operation on the server.
//!
//! [`FrameBuf`] holds per-connection scratch state so the steady-state cost
//! of a frame is zero allocations: reads reuse one payload buffer, writes
//! reuse one encode buffer and stream shared segments
//! ([`Writer::put_bytes_shared`]) straight to the socket without ever
//! materializing the frame contiguously.

use std::io::{Read, Write};
use std::sync::Arc;

use neptune_storage::checksum::{crc32, Crc32};
use neptune_storage::codec::{Decode, Encode, Writer};
use neptune_storage::error::{Result, StorageError};

/// Largest accepted frame (64 MiB): a node's contents can be large, but a
/// length beyond this indicates a desynchronized or hostile stream.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Reusable per-connection framing state: a read scratch buffer, a write
/// encode buffer, and optional byte counters
/// (`neptune_server_bytes_{in,out}_total` on the server side).
///
/// Error behavior is designed so a connection can survive a bad frame
/// without desynchronizing: an oversized length is rejected *before any
/// allocation* ([`StorageError::FrameTooLarge`]), and a CRC mismatch is
/// reported only after the full payload has been drained from the stream,
/// leaving the reader positioned at the next frame boundary.
#[derive(Default)]
pub struct FrameBuf {
    read_scratch: Vec<u8>,
    write_scratch: Writer,
    bytes_in: Option<Arc<neptune_obs::Counter>>,
    bytes_out: Option<Arc<neptune_obs::Counter>>,
}

impl FrameBuf {
    /// Scratch state with no byte accounting (client side).
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Scratch state that adds every frame's wire size (header + payload)
    /// to the given counters.
    pub fn with_counters(
        bytes_in: Arc<neptune_obs::Counter>,
        bytes_out: Arc<neptune_obs::Counter>,
    ) -> Self {
        FrameBuf {
            bytes_in: Some(bytes_in),
            bytes_out: Some(bytes_out),
            ..FrameBuf::default()
        }
    }

    /// Read one frame and decode it as `T`, reusing the scratch buffer.
    ///
    /// Returns `Err(StorageError::Io)` with `UnexpectedEof` on clean stream
    /// close before a frame starts (the caller treats that as disconnect).
    pub fn read_frame<R: Read, T: Decode>(&mut self, reader: &mut R) -> Result<T> {
        let mut header = [0u8; 8];
        reader.read_exact(&mut header)?;
        let [l0, l1, l2, l3, c0, c1, c2, c3] = header;
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        let expected_crc = u32::from_le_bytes([c0, c1, c2, c3]);
        if len > MAX_FRAME {
            // Reject before resizing the scratch buffer: a corrupt length
            // field must not drive a giant allocation.
            return Err(StorageError::FrameTooLarge {
                len: len as u64,
                max: MAX_FRAME as u64,
            });
        }
        self.read_scratch.resize(len as usize, 0);
        reader.read_exact(&mut self.read_scratch)?;
        if let Some(c) = &self.bytes_in {
            c.add(8 + len as u64);
        }
        let actual = crc32(&self.read_scratch);
        if actual != expected_crc {
            return Err(StorageError::ChecksumMismatch {
                expected: expected_crc,
                actual,
            });
        }
        T::from_bytes(&self.read_scratch)
    }

    /// Write one encodable message as a frame, reusing the encode buffer,
    /// then flush the writer. See [`FrameBuf::queue_frame`] for the
    /// pipelined (unflushed) variant.
    pub fn write_frame<W: Write, T: Encode>(&mut self, writer: &mut W, message: &T) -> Result<()> {
        self.queue_frame(writer, message)?;
        writer.flush()?;
        Ok(())
    }

    /// Write one frame *without* flushing, so a pipelining caller can queue
    /// N frames into a buffered writer and pay one flush for all of them.
    ///
    /// The payload is never assembled contiguously: the CRC is computed
    /// incrementally over the encoder's chunks (shared segments included)
    /// and the same chunks are then streamed to `writer`.
    pub fn queue_frame<W: Write, T: Encode>(&mut self, writer: &mut W, message: &T) -> Result<()> {
        self.write_scratch.clear();
        message.encode(&mut self.write_scratch);
        let len = self.write_scratch.len();
        if len > MAX_FRAME as usize {
            return Err(StorageError::FrameTooLarge {
                len: len as u64,
                max: MAX_FRAME as u64,
            });
        }
        let mut hasher = Crc32::new();
        self.write_scratch
            .for_each_chunk(|chunk| hasher.update(chunk));
        let [l0, l1, l2, l3] = (len as u32).to_le_bytes();
        let [c0, c1, c2, c3] = hasher.finish().to_le_bytes();
        let header = [l0, l1, l2, l3, c0, c1, c2, c3];
        writer.write_all(&header)?;
        let mut io_err: Option<std::io::Error> = None;
        self.write_scratch.for_each_chunk(|chunk| {
            if io_err.is_none() {
                if let Err(e) = writer.write_all(chunk) {
                    io_err = Some(e);
                }
            }
        });
        if let Some(e) = io_err {
            return Err(e.into());
        }
        if let Some(c) = &self.bytes_out {
            c.add(8 + len as u64);
        }
        // Drop shared segments now rather than at the next call: holding
        // them would pin large payload allocations between frames.
        self.write_scratch.clear();
        Ok(())
    }
}

/// Write one encodable message as a frame (one-shot convenience; hot paths
/// keep a [`FrameBuf`] instead).
pub fn write_frame<W: Write, T: Encode>(writer: &mut W, message: &T) -> Result<()> {
    FrameBuf::new().write_frame(writer, message)
}

/// Read one frame and decode it as `T` (one-shot convenience; hot paths
/// keep a [`FrameBuf`] instead).
pub fn read_frame<R: Read, T: Decode>(reader: &mut R) -> Result<T> {
    FrameBuf::new().read_frame(reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"hello hypertext".to_string()).unwrap();
        write_frame(&mut buf, &42u64).unwrap();
        let mut cursor = Cursor::new(buf);
        let s: String = read_frame(&mut cursor).unwrap();
        assert_eq!(s, "hello hypertext");
        let n: u64 = read_frame(&mut cursor).unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn reused_framebuf_roundtrips_and_counts_bytes() {
        let registry = neptune_obs::Registry::new(true);
        let mut fb = FrameBuf::with_counters(
            registry.counter("test_bytes_in"),
            registry.counter("test_bytes_out"),
        );
        let mut buf = Vec::new();
        fb.write_frame(&mut buf, &"first".to_string()).unwrap();
        fb.write_frame(&mut buf, &"second, longer".to_string())
            .unwrap();
        let wire_len = buf.len() as u64;
        let mut cursor = Cursor::new(buf);
        let a: String = fb.read_frame(&mut cursor).unwrap();
        let b: String = fb.read_frame(&mut cursor).unwrap();
        assert_eq!((a.as_str(), b.as_str()), ("first", "second, longer"));
        assert_eq!(registry.counter("test_bytes_out").get(), wire_len);
        assert_eq!(registry.counter("test_bytes_in").get(), wire_len);
    }

    #[test]
    fn shared_segments_stream_without_materializing() {
        // An Arc'd payload goes out by reference and arrives intact.
        let payload: Arc<[u8]> = Arc::from(vec![0xABu8; 100_000]);
        let mut fb = FrameBuf::new();
        let mut buf = Vec::new();
        fb.write_frame(&mut buf, &payload).unwrap();
        assert_eq!(
            Arc::strong_count(&payload),
            1,
            "write must not retain the payload"
        );
        let mut cursor = Cursor::new(buf);
        let back: Arc<[u8]> = fb.read_frame(&mut cursor).unwrap();
        assert_eq!(&back[..], &payload[..]);
    }

    #[test]
    fn corrupt_payload_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"payload".to_string()).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xFF;
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            read_frame::<_, String>(&mut cursor),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn crc_mismatch_leaves_stream_frame_aligned() {
        // A CRC-failed frame is fully drained, so the *next* frame still
        // decodes — the connection can report the error and keep going
        // instead of desynchronizing.
        let mut buf = Vec::new();
        write_frame(&mut buf, &"corrupt me".to_string()).unwrap();
        let after_first = buf.len();
        write_frame(&mut buf, &"survivor".to_string()).unwrap();
        buf[after_first - 1] ^= 0xFF; // flip a byte in frame 1's payload
        let mut fb = FrameBuf::new();
        let mut cursor = Cursor::new(buf);
        assert!(matches!(
            fb.read_frame::<_, String>(&mut cursor),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        let s: String = fb.read_frame(&mut cursor).unwrap();
        assert_eq!(s, "survivor");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let mut fb = FrameBuf::new();
        let mut cursor = Cursor::new(buf);
        let err = fb.read_frame::<_, String>(&mut cursor).unwrap_err();
        assert!(
            matches!(err, StorageError::FrameTooLarge { len, max }
                if len == (MAX_FRAME + 1) as u64 && max == MAX_FRAME as u64),
            "want FrameTooLarge, got {err:?}"
        );
        assert_eq!(
            fb.read_scratch.capacity(),
            0,
            "hostile length must be rejected before any allocation"
        );
        // A max-length header is also rejected at *write* time, so a peer
        // never emits a frame the other side won't accept.
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            fb.write_frame(&mut sink, &huge),
            Err(StorageError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncated_stream_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &"payload".to_string()).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = Cursor::new(buf);
        assert!(read_frame::<_, String>(&mut cursor).is_err());
    }
}
