//! # neptune-server
//!
//! Multi-user network access to a Neptune HAM, reproducing the paper's
//! architecture (§2.2, §4.1): *"Neptune has a central server which is
//! accessible over a local area network from a variety of workstations; it
//! is transaction-oriented and provides for complete recovery from any
//! aborted transaction"*, with the UI layer talking to the HAM over *"a
//! remote procedure call mechanism"*.
//!
//! * [`proto`] — one request/response pair per HAM operation;
//! * [`frame`] — checksummed length-prefixed framing;
//! * [`server`] — threaded TCP server over the single-writer HAM: shared
//!   locking for read-only requests, per-connection transaction ownership;
//! * [`client`] — a blocking RPC client mirroring the HAM API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use proto::{ObsSetting, Request, Response, TracedRequest, TRACE_EXT_TAG};
pub use server::{
    serve, serve_sharded, serve_sharded_with, serve_with, ServeOptions, ServerHandle,
};
