//! The Neptune server: multi-user access to one HAM.
//!
//! Paper §2.2: *"Neptune has a central server which is accessible over a
//! local area network from a variety of workstations; it is
//! transaction-oriented and provides for complete recovery from any aborted
//! transaction."* The server owns the (single-writer) [`Ham`] and
//! serializes client operations through it. A client holding an explicit
//! transaction has exclusive write access until it commits or aborts —
//! other clients block (with a timeout) rather than interleave, which is
//! the concurrency control a check-in/check-out CAD workflow expects.
//! A client that disconnects mid-transaction is aborted automatically.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use neptune_ham::predicate::Predicate;
use neptune_ham::types::Time;
use neptune_ham::Ham;

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, Response};

/// How long a client waits for another client's transaction before its
/// request fails with a lock-timeout error.
pub const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

struct Shared {
    state: Mutex<ServerState>,
    txn_released: Condvar,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
}

impl Shared {
    /// Lock the server state, recovering from a poisoned mutex (a panicking
    /// connection thread must not take the whole server down).
    fn lock_state(&self) -> MutexGuard<'_, ServerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

struct ServerState {
    ham: Ham,
    /// Connection currently holding an explicit transaction, if any.
    txn_owner: Option<u64>,
}

/// A running Neptune server; dropping it (or calling [`ServerHandle::stop`])
/// shuts it down and checkpoints the graph.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, abort any open transaction, checkpoint,
    /// and shut down.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let mut state = self.shared.lock_state();
        if state.ham.in_transaction() {
            let _ = state.ham.abort_transaction();
        }
        let _ = state.ham.checkpoint();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_inner();
        }
    }
}

/// Start serving `ham` on `addr` (use port 0 for an ephemeral port).
pub fn serve(ham: Ham, addr: impl Into<String>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr.into())?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        state: Mutex::new(ServerState {
            ham,
            txn_owner: None,
        }),
        txn_released: Condvar::new(),
        shutdown: AtomicBool::new(false),
        next_conn: AtomicU64::new(1),
    });

    let accept_shared = shared.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while !accept_shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn_shared = accept_shared.clone();
                    let id = conn_shared.next_conn.fetch_add(1, Ordering::SeqCst);
                    conn_threads.push(std::thread::spawn(move || {
                        let _ = handle_connection(stream, id, conn_shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for t in conn_threads {
            let _ = t.join();
        }
    });

    Ok(ServerHandle {
        addr: local,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(
    mut stream: TcpStream,
    conn_id: u64,
    shared: Arc<Shared>,
) -> neptune_storage::error::Result<()> {
    stream.set_nodelay(true).ok();
    // Reads poll with a timeout so connection threads notice shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let result = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break Ok(());
        }
        let request: Request = match read_frame(&mut stream) {
            Ok(r) => r,
            Err(neptune_storage::StorageError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(neptune_storage::StorageError::Io(e))
                if e.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                break Ok(()); // clean disconnect
            }
            Err(e) => break Err(e),
        };
        let response = execute(&shared, conn_id, request);
        write_frame(&mut stream, &response)?;
    };
    // Abort an abandoned transaction.
    let mut state = shared.lock_state();
    if state.txn_owner == Some(conn_id) {
        let _ = state.ham.abort_transaction();
        state.txn_owner = None;
        shared.txn_released.notify_all();
    }
    result
}

/// Run one request under the transaction-ownership discipline.
fn execute(shared: &Shared, conn_id: u64, request: Request) -> Response {
    let mut state = shared.lock_state();
    // Wait while another connection holds a transaction.
    while state.txn_owner.is_some() && state.txn_owner != Some(conn_id) {
        let (guard, timeout) = shared
            .txn_released
            .wait_timeout(state, LOCK_TIMEOUT)
            .unwrap_or_else(PoisonError::into_inner);
        state = guard;
        if timeout.timed_out() && state.txn_owner.is_some() && state.txn_owner != Some(conn_id) {
            return Response::Error("timed out waiting for another client's transaction".into());
        }
    }
    match request {
        Request::BeginTransaction => match state.ham.begin_transaction() {
            Ok(id) => {
                state.txn_owner = Some(conn_id);
                Response::TxnStarted(id)
            }
            Err(e) => Response::Error(e.to_string()),
        },
        Request::CommitTransaction => {
            if state.txn_owner != Some(conn_id) {
                return Response::Error("no transaction owned by this connection".into());
            }
            let r = state.ham.commit_transaction();
            state.txn_owner = None;
            shared.txn_released.notify_all();
            result_to_response(r.map(|_| Response::Ok))
        }
        Request::AbortTransaction => {
            if state.txn_owner != Some(conn_id) {
                return Response::Error("no transaction owned by this connection".into());
            }
            let r = state.ham.abort_transaction();
            state.txn_owner = None;
            shared.txn_released.notify_all();
            result_to_response(r.map(|_| Response::Ok))
        }
        other => dispatch(&mut state.ham, other),
    }
}

fn result_to_response(r: neptune_ham::Result<Response>) -> Response {
    match r {
        Ok(resp) => resp,
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Translate a request into a HAM call.
fn dispatch(ham: &mut Ham, request: Request) -> Response {
    use Request as Q;
    use Response as A;
    let result: neptune_ham::Result<Response> = (|| {
        Ok(match request {
            Q::AddNode {
                context,
                keep_history,
            } => {
                let (id, t) = ham.add_node(context, keep_history)?;
                A::NodeCreated(id, t)
            }
            Q::DeleteNode { context, node } => {
                ham.delete_node(context, node)?;
                A::Ok
            }
            Q::AddLink { context, from, to } => {
                let (id, t) = ham.add_link(context, from, to)?;
                A::LinkCreated(id, t)
            }
            Q::CopyLink {
                context,
                link,
                time,
                keep_source,
                pt,
            } => {
                let (id, t) = ham.copy_link(context, link, time, keep_source, pt)?;
                A::LinkCreated(id, t)
            }
            Q::DeleteLink { context, link } => {
                ham.delete_link(context, link)?;
                A::Ok
            }
            Q::LinearizeGraph {
                context,
                start,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(ham.linearize_graph(
                    context,
                    start,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::GetGraphQuery {
                context,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(ham.get_graph_query(
                    context,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::OpenNode {
                context,
                node,
                time,
                attrs,
            } => {
                let opened = ham.open_node(context, node, time, &attrs)?;
                A::Opened {
                    contents: opened.contents,
                    link_pts: opened.link_pts,
                    values: opened.values,
                    current_time: opened.current_time,
                }
            }
            Q::ModifyNode {
                context,
                node,
                time,
                contents,
                link_pts,
            } => A::Time(ham.modify_node(context, node, time, contents, &link_pts)?),
            Q::GetNodeTimeStamp { context, node } => {
                A::Time(ham.get_node_time_stamp(context, node)?)
            }
            Q::ChangeNodeProtection {
                context,
                node,
                protections,
            } => {
                ham.change_node_protection(context, node, protections)?;
                A::Ok
            }
            Q::GetNodeVersions { context, node } => {
                let (major, minor) = ham.get_node_versions(context, node)?;
                A::Versions(major, minor)
            }
            Q::GetNodeDifferences {
                context,
                node,
                time1,
                time2,
            } => A::Differences(ham.get_node_differences(context, node, time1, time2)?),
            Q::GetToNode {
                context,
                link,
                time,
            } => {
                let (n, t) = ham.get_to_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetFromNode {
                context,
                link,
                time,
            } => {
                let (n, t) = ham.get_from_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetAttributes { context, time } => A::Attributes(ham.get_attributes(context, time)?),
            Q::GetAttributeValues {
                context,
                attr,
                time,
            } => A::Values(ham.get_attribute_values(context, attr, time)?),
            Q::GetAttributeIndex { context, name } => {
                A::AttrIndex(ham.get_attribute_index(context, &name)?)
            }
            Q::SetNodeAttributeValue {
                context,
                node,
                attr,
                value,
            } => {
                ham.set_node_attribute_value(context, node, attr, value)?;
                A::Ok
            }
            Q::DeleteNodeAttribute {
                context,
                node,
                attr,
            } => {
                ham.delete_node_attribute(context, node, attr)?;
                A::Ok
            }
            Q::GetNodeAttributeValue {
                context,
                node,
                attr,
                time,
            } => A::Value(ham.get_node_attribute_value(context, node, attr, time)?),
            Q::GetNodeAttributes {
                context,
                node,
                time,
            } => A::AttrTriples(ham.get_node_attributes(context, node, time)?),
            Q::SetLinkAttributeValue {
                context,
                link,
                attr,
                value,
            } => {
                ham.set_link_attribute_value(context, link, attr, value)?;
                A::Ok
            }
            Q::DeleteLinkAttribute {
                context,
                link,
                attr,
            } => {
                ham.delete_link_attribute(context, link, attr)?;
                A::Ok
            }
            Q::GetLinkAttributeValue {
                context,
                link,
                attr,
                time,
            } => A::Value(ham.get_link_attribute_value(context, link, attr, time)?),
            Q::GetLinkAttributes {
                context,
                link,
                time,
            } => A::AttrTriples(ham.get_link_attributes(context, link, time)?),
            Q::SetGraphDemonValue {
                context,
                event,
                demon,
            } => {
                ham.set_graph_demon_value(context, event, demon)?;
                A::Ok
            }
            Q::GetGraphDemons { context, time } => A::Demons(ham.get_graph_demons(context, time)?),
            Q::SetNodeDemon {
                context,
                node,
                event,
                demon,
            } => {
                ham.set_node_demon(context, node, event, demon)?;
                A::Ok
            }
            Q::GetNodeDemons {
                context,
                node,
                time,
            } => A::Demons(ham.get_node_demons(context, node, time)?),
            Q::CreateContext { from } => A::Context(ham.create_context(from)?),
            Q::MergeContext { child, policy } => A::Merged(ham.merge_context(child, policy)?),
            Q::DestroyContext { id } => {
                ham.destroy_context(id)?;
                A::Ok
            }
            Q::ListContexts => A::Contexts(ham.contexts()),
            Q::Checkpoint => {
                ham.checkpoint()?;
                A::Ok
            }
            Q::Ping => A::Ok,
            Q::Verify => A::Findings(neptune_check::verify_open_ham(ham)),
            Q::BeginTransaction | Q::CommitTransaction | Q::AbortTransaction => {
                unreachable!("transaction control handled by execute()")
            }
        })
    })();
    result_to_response(result)
}

fn parse_pred(text: &str) -> neptune_ham::Result<Predicate> {
    Predicate::parse(text).map_err(|message| neptune_ham::HamError::BadPredicate { message })
}

/// Convenience for servers and tests: the Time the HAM currently reports
/// for a context's clock.
pub fn graph_now(ham: &Ham, context: neptune_ham::types::ContextId) -> neptune_ham::Result<Time> {
    Ok(ham.graph(context)?.now())
}
