//! The Neptune server: multi-user access to one HAM.
//!
//! Paper §2.2: *"Neptune has a central server which is accessible over a
//! local area network from a variety of workstations; it is
//! transaction-oriented and provides for complete recovery from any aborted
//! transaction."* The server owns the (single-writer) [`Ham`]. A client
//! holding an explicit transaction has exclusive access until it commits or
//! aborts — other clients block (with a timeout) rather than interleave,
//! which is the concurrency control a check-in/check-out CAD workflow
//! expects. A client that disconnects or whose connection thread panics
//! mid-transaction is aborted automatically.
//!
//! Requests classified read-only by [`Request::is_read_only`] are served
//! **lock-free** from the committed snapshot the HAM publishes at every
//! commit ([`neptune_ham::CommittedView`]): one atomic load yields an
//! immutable `Arc<CommittedView>`, with no gate check and no HAM lock —
//! readers never wait on writers, and an open foreign transaction is
//! invisible to them (they see the last committed state). The one
//! exception is the transaction owner itself, whose reads route through
//! the exclusive path so it observes its own uncommitted writes
//! (read-your-writes).
//!
//! The HAM behind the server is a [`ShardedHam`]: contexts hash to a home
//! shard, and writes touching different shards commit in parallel — the
//! gate serializes only *explicit transactions*, not independent
//! single-context writes. Context-scoped reads load the home shard's
//! published view; global reads (`ListContexts`, `Verify`, batches) use a
//! [`MultiView`] — a commit-sequence-consistent vector of every shard's
//! view — so a batch never observes half of a cross-shard merge.
//!
//! Lock hierarchy (always acquired in this order, never the reverse):
//!
//! 1. `view` — the publication slots behind `Published::load`, ranked
//!    lowest: a view may only be loaded while holding *nothing*.
//! 2. `gate` — a small mutex guarding transaction ownership; the
//!    [`Condvar`] `txn_released` is associated with it.
//! 3. `shard[i]` — the per-shard machine mutexes, ranked ascending by
//!    shard index and acquired *while still holding the gate*, so no
//!    transaction can begin between the ownership check and lock
//!    acquisition. The gate is released as soon as the shard lock is held,
//!    which is what lets disjoint-shard writers run concurrently.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use neptune_ham::predicate::Predicate;
use neptune_ham::types::Time;
use neptune_ham::{CommittedView, Ham, MultiView, ShardedHam};
use neptune_obs::lockcheck;

use crate::frame::FrameBuf;
use crate::proto::{ObsSetting, Request, Response, TracedRequest};

/// How long a client waits for another client's transaction before its
/// request fails with a lock-timeout error. This is a fixed deadline: the
/// total wait is bounded by it no matter how many spurious or unhelpful
/// condvar wakeups occur in between.
pub const LOCK_TIMEOUT: Duration = Duration::from_secs(5);

/// Tuning knobs for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Deadline for waiting on another connection's transaction; defaults
    /// to [`LOCK_TIMEOUT`]. Tests shrink this to keep timeout paths fast.
    pub lock_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            lock_timeout: LOCK_TIMEOUT,
        }
    }
}

/// Transaction-ownership state, guarded by the gate mutex.
struct Gate {
    /// Connection currently holding an explicit transaction, if any.
    txn_owner: Option<u64>,
    /// Standalone (non-transactional) writes in flight. Writers register
    /// here and release the gate before locking their home shard, so
    /// disjoint-shard writes commit concurrently; `BeginTransaction`
    /// claims `txn_owner` first (stopping new registrations) and then
    /// waits for this count to drain to zero, so an explicit transaction
    /// still gets the machine to itself.
    active_writers: u64,
}

struct Shared {
    ham: ShardedHam,
    gate: Mutex<Gate>,
    txn_released: Condvar,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    lock_timeout: Duration,
}

impl Shared {
    /// Lock the transaction gate, recovering from a poisoned mutex (a
    /// panicking connection thread must not take the whole server down).
    fn lock_gate(&self) -> GateGuard<'_> {
        // Rank-check before blocking: an inversion should panic at this
        // call site, not deadlock inside `lock()`.
        let held = lockcheck::acquire(lockcheck::GATE, "server.gate");
        count("neptune_server_gate_acquisitions_total");
        GateGuard {
            guard: self.gate.lock().unwrap_or_else(PoisonError::into_inner),
            held,
        }
    }

    /// Load `context`'s home-shard snapshot — the lock-free read path. The
    /// rank token covers only the load itself (one atomic load, or a brief
    /// slot-mutex clone on the first load after a publish); holding the
    /// returned view is not a lock.
    fn load_view(&self, context: neptune_ham::ContextId) -> Arc<CommittedView> {
        let _held = lockcheck::acquire(lockcheck::VIEW, "server.view");
        self.ham.read_view(context)
    }

    /// Assemble a commit-sequence-consistent snapshot of every shard for
    /// global reads and read-only batches. Lock-free in the common case
    /// (the skew-retry loop reloads publication slots); the rank token
    /// covers the loads.
    fn load_multi_view(&self) -> MultiView {
        let _held = lockcheck::acquire(lockcheck::VIEW, "server.view");
        self.ham.multi_view()
    }
}

/// Gate-mutex guard carrying its [`lockcheck`] rank token, so the dynamic
/// lock-order checker sees exactly the scopes the real guard covers. The
/// guard is declared first: the mutex is released before the rank.
struct GateGuard<'a> {
    guard: MutexGuard<'a, Gate>,
    held: lockcheck::Held,
}

impl Deref for GateGuard<'_> {
    type Target = Gate;
    fn deref(&self) -> &Gate {
        &self.guard
    }
}

impl DerefMut for GateGuard<'_> {
    fn deref_mut(&mut self) -> &mut Gate {
        &mut self.guard
    }
}

/// Cleans up a connection's transaction no matter how its thread exits.
///
/// Constructed at the top of every connection thread; its `Drop` runs on
/// clean disconnect, on protocol error, *and* during a panic unwind, so a
/// dead owner can never strand the transaction lock and starve every other
/// client into timeouts.
struct ConnGuard {
    shared: Arc<Shared>,
    conn_id: u64,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut gate = self.shared.lock_gate();
        if gate.txn_owner == Some(self.conn_id) {
            if self.shared.ham.in_transaction() {
                let _ = self.shared.ham.abort_transaction();
            }
            gate.txn_owner = None;
            drop(gate);
            self.shared.txn_released.notify_all();
        }
    }
}

/// A running Neptune server; dropping it (or calling [`ServerHandle::stop`])
/// shuts it down and checkpoints the graph.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, abort any open transaction, checkpoint,
    /// and shut down.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    /// Test hook: wake every thread blocked on the transaction condvar, as
    /// a spurious wakeup would. The deadline-based wait must shrug these
    /// off without extending a waiter's total timeout.
    pub fn poke_txn_waiters(&self) {
        self.shared.txn_released.notify_all();
    }

    fn stop_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let mut gate = self.shared.lock_gate();
        if self.shared.ham.in_transaction() {
            let _ = self.shared.ham.abort_transaction();
        }
        gate.txn_owner = None;
        let _ = self.shared.ham.checkpoint();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_inner();
        }
    }
}

/// Start serving a single-shard `ham` on `addr` (use port 0 for an
/// ephemeral port). The machine is wrapped as a one-shard [`ShardedHam`];
/// sharded stores go through [`serve_sharded`].
pub fn serve(ham: Ham, addr: impl Into<String>) -> std::io::Result<ServerHandle> {
    serve_sharded_with(ShardedHam::from_ham(ham), addr, ServeOptions::default())
}

/// [`serve`] with explicit [`ServeOptions`].
pub fn serve_with(
    ham: Ham,
    addr: impl Into<String>,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    serve_sharded_with(ShardedHam::from_ham(ham), addr, options)
}

/// Start serving a sharded store on `addr`.
pub fn serve_sharded(ham: ShardedHam, addr: impl Into<String>) -> std::io::Result<ServerHandle> {
    serve_sharded_with(ham, addr, ServeOptions::default())
}

/// [`serve_sharded`] with explicit [`ServeOptions`].
pub fn serve_sharded_with(
    ham: ShardedHam,
    addr: impl Into<String>,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    // A panicking connection thread should leave its last traces behind
    // (written to NEPTUNE_TRACE_DUMP when set) before the unwind proceeds.
    neptune_obs::install_panic_hook();
    let listener = TcpListener::bind(addr.into())?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(Shared {
        ham,
        gate: Mutex::new(Gate {
            txn_owner: None,
            active_writers: 0,
        }),
        txn_released: Condvar::new(),
        shutdown: AtomicBool::new(false),
        next_conn: AtomicU64::new(1),
        lock_timeout: options.lock_timeout,
    });

    let accept_shared = shared.clone();
    let accept_thread = std::thread::spawn(move || {
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while !accept_shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn_shared = accept_shared.clone();
                    let id = conn_shared.next_conn.fetch_add(1, Ordering::SeqCst);
                    conn_threads.push(std::thread::spawn(move || {
                        // The guard must outlive everything the connection
                        // does so its Drop also runs on panic unwind.
                        let _guard = ConnGuard {
                            shared: conn_shared.clone(),
                            conn_id: id,
                        };
                        let _conns = scoped_gauge("neptune_server_active_connections");
                        record_peak_connections();
                        let _ = handle_connection(stream, id, conn_shared);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        for t in conn_threads {
            let _ = t.join();
        }
    });

    Ok(ServerHandle {
        addr: local,
        shared,
        accept_thread: Some(accept_thread),
    })
}

fn handle_connection(
    stream: TcpStream,
    conn_id: u64,
    shared: Arc<Shared>,
) -> neptune_storage::error::Result<()> {
    stream.set_nodelay(true).ok();
    // Reads poll with a timeout so connection threads notice shutdown.
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    // Per-connection reusable framing buffers: steady state is
    // allocation-free, and every frame's wire size feeds the
    // `neptune_server_bytes_{in,out}_total` counters. Responses go through
    // a buffered writer so header + payload chunks coalesce into one
    // syscall.
    let mut frames = if neptune_obs::enabled() {
        let registry = neptune_obs::registry();
        FrameBuf::with_counters(
            registry.counter("neptune_server_bytes_in_total"),
            registry.counter("neptune_server_bytes_out_total"),
        )
    } else {
        FrameBuf::new()
    };
    let mut writer = std::io::BufWriter::new(stream.try_clone()?);
    let mut reader = stream;
    let mut conn = ConnState { owns_txn: false };
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break Ok(());
        }
        let request: TracedRequest = match frames.read_frame(&mut reader) {
            Ok(r) => r,
            Err(neptune_storage::StorageError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(neptune_storage::StorageError::Io(e))
                if e.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                break Ok(()); // clean disconnect; ConnGuard aborts any txn
            }
            Err(e) => break Err(e),
        };
        // `execute` drops the request's trace root before returning, so
        // the server's segment is flushed before this response frame goes
        // out — an in-process client that finalizes the trace after
        // reading the response always sees the server's spans.
        let response = execute(&shared, conn_id, &mut conn, request);
        frames.write_frame(&mut writer, &response)?;
    }
}

/// Hold a named registry gauge up by one for the returned guard's lifetime
/// (no-op when instrumentation is disabled).
fn scoped_gauge(key: &'static str) -> Option<neptune_obs::GaugeGuard> {
    if neptune_obs::enabled() {
        Some(neptune_obs::Gauge::scoped(
            &neptune_obs::registry().gauge(key),
        ))
    } else {
        None
    }
}

fn count(key: &'static str) {
    if neptune_obs::enabled() {
        neptune_obs::registry().counter(key).inc();
    }
}

/// Record the high-water mark of concurrent connections. The bench-metrics
/// deltas read this peak gauge, not the instantaneous active gauge, which
/// at capture time may already have drained back toward zero.
fn record_peak_connections() {
    if neptune_obs::enabled() {
        let registry = neptune_obs::registry();
        let active = registry.gauge("neptune_server_active_connections").get();
        registry
            .gauge("neptune_server_peak_connections")
            .set_max(active);
    }
}

/// Per-connection routing state, owned exclusively by the connection's
/// thread — consulting it takes no lock. `owns_txn` tracks whether this
/// connection holds the explicit transaction: owners route *every* request
/// (reads included) through the exclusive path so they observe their own
/// uncommitted writes; everyone else's reads are served lock-free from the
/// published snapshot. It is set only when the server grants the
/// transaction, so a stale `true` (e.g. after shutdown aborted the
/// transaction) merely routes conservatively through the exclusive path.
struct ConnState {
    owns_txn: bool,
}

/// Record time a request spent blocked at the transaction gate. Only called
/// when a wait actually happened, so the histogram's count is the number of
/// contended requests, not the number of requests.
fn observe_gate_wait(waited: Duration) {
    if neptune_obs::enabled() {
        neptune_obs::registry()
            .histogram("neptune_server_gate_wait_ns")
            .observe_duration(waited);
    }
}

/// Record one `neptune_server_rpc_ns{op=<variant>}` observation, bump the
/// error counter on failure responses, and emit slow-op traces. No-op when
/// instrumentation is disabled.
fn observe_rpc(op: &'static str, elapsed: Duration, response: &Response) {
    if !neptune_obs::enabled() {
        return;
    }
    let registry = neptune_obs::registry();
    registry
        .histogram(&neptune_obs::labeled("neptune_server_rpc_ns", "op", op))
        .observe_duration(elapsed);
    if matches!(response, Response::Error(_)) {
        registry.counter("neptune_server_rpc_errors_total").inc();
    }
    neptune_obs::trace::emit("server.rpc", op, elapsed);
}

/// [`execute_inner`]/[`execute_batch`] plus instrumentation: one
/// `neptune_server_rpc_ns{op=<variant>}` observation per request (batches
/// additionally record each element), an error counter, slow-op visibility
/// via the trace layer, and the request's causal-trace root span.
fn execute(shared: &Shared, conn_id: u64, conn: &mut ConnState, traced: TracedRequest) -> Response {
    let TracedRequest { context, request } = traced;
    let op = request.name();
    // Exactly one root span per request (machine-checked by the
    // `span-parent` lint): joins the client's trace when the frame carried
    // a context, originates a server-side trace otherwise.
    let root = neptune_obs::trace_tree::request_root(context, op);
    let start = Instant::now();
    let response = match request {
        Request::Batch(elements) => execute_batch(shared, conn_id, conn, elements),
        request => execute_inner(shared, conn_id, conn, request),
    };
    observe_rpc(op, start.elapsed(), &response);
    if matches!(response, Response::Error(_)) {
        neptune_obs::tag_error();
    }
    drop(root);
    response
}

/// Wait at the transaction gate until no *foreign* transaction is active,
/// honoring one fixed deadline across spurious wakeups. Returns the held
/// gate on success, or the timeout error response. The gate-wait histogram
/// is observed only when a wait actually happened, so its count is the
/// number of contended acquisitions.
fn wait_for_gate<'a>(
    shared: &'a Shared,
    conn_id: u64,
    deadline: Instant,
) -> std::result::Result<GateGuard<'a>, Box<Response>> {
    let mut gate = shared.lock_gate();
    if gate.txn_owner.is_some() && gate.txn_owner != Some(conn_id) {
        let wait_start = Instant::now();
        while gate.txn_owner.is_some() && gate.txn_owner != Some(conn_id) {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                observe_gate_wait(wait_start.elapsed());
                count("neptune_server_lock_timeouts_total");
                return Err(Box::new(Response::Error(
                    "timed out waiting for another client's transaction".into(),
                )));
            };
            // Condvar::wait_timeout needs the bare MutexGuard; the rank
            // token stays live across the wait (the thread holds nothing
            // else while blocked here), and the guard is rewrapped with it
            // on wakeup.
            let GateGuard { guard, held } = gate;
            let (guard, _) = shared
                .txn_released
                .wait_timeout(guard, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            gate = GateGuard { guard, held };
        }
        observe_gate_wait(wait_start.elapsed());
    }
    Ok(gate)
}

/// Execute a batch under a *single* gate check and one HAM lock
/// acquisition: the whole point of `Request::Batch` is amortizing that
/// cost over N operations. A batch is read-only iff every element is; one
/// mutating element routes the entire batch through the exclusive lock (in
/// order, preserving element semantics). Per-element results: a failing
/// element yields `Response::Error` in its slot and the rest still run.
/// Transaction control is per-connection state that a half-executed batch
/// could corrupt, so it is rejected per-element, as are nested batches.
fn execute_batch(
    shared: &Shared,
    conn_id: u64,
    conn: &mut ConnState,
    elements: Vec<Request>,
) -> Response {
    fn element_error(element: &Request) -> Option<Response> {
        match element {
            Request::BeginTransaction | Request::CommitTransaction | Request::AbortTransaction => {
                Some(Response::Error(
                    "transaction control is not allowed inside a batch".into(),
                ))
            }
            Request::Batch(_) => Some(Response::Error("nested batches are not allowed".into())),
            _ => None,
        }
    }
    if elements.iter().all(Request::is_read_only) && !conn.owns_txn {
        // Lock-free read batch: every element is served from one
        // commit-sequence-consistent multi-shard snapshot, so the batch is
        // internally consistent by construction — a cross-shard merge is
        // either entirely visible or entirely absent, and there is no
        // gate, no shard lock, and no waiting on a foreign transaction.
        let mv = shared.load_multi_view();
        let inflight = scoped_gauge("neptune_server_read_ops_inflight");
        let mut responses = Vec::with_capacity(elements.len());
        let mut bounced = false;
        for element in &elements {
            if let Some(err) = element_error(element) {
                responses.push(err);
                continue;
            }
            let op = element.name();
            let start = Instant::now();
            let served = match element.context_id() {
                Some(context) => dispatch_read(mv.view_for(context), element.clone()),
                None => Ok(global_read(shared, &mv, element.clone())),
            };
            match served {
                Ok(response) => {
                    count("neptune_server_reads_lockfree_total");
                    observe_rpc(op, start.elapsed(), &response);
                    responses.push(response);
                }
                Err(_) => {
                    // A nodeOpened demon must fire: rerun the whole batch
                    // on the write path. The reads already served are
                    // side-effect-free, so discarding them is safe.
                    bounced = true;
                    break;
                }
            }
        }
        if !bounced {
            return Response::Batch(responses);
        }
        drop(inflight);
        count("neptune_server_read_bounces_total");
    }
    // Exclusive path: one gate wait and one writer registration amortized
    // over the whole batch — no explicit transaction can begin until every
    // element has run, and each element locks only its home shard, so a
    // mutating batch never blocks writers bound for other shards.
    let deadline = Instant::now() + shared.lock_timeout;
    let mut gate = match wait_for_gate(shared, conn_id, deadline) {
        Ok(gate) => gate,
        Err(response) => return *response,
    };
    let _inflight = scoped_gauge("neptune_server_exclusive_ops_inflight");
    gate.active_writers += 1;
    drop(gate);
    let _writer = ActiveWriter { shared };
    let responses = elements
        .into_iter()
        .map(|element| {
            if let Some(err) = element_error(&element) {
                return err;
            }
            let op = element.name();
            let start = Instant::now();
            let response = dispatch_exclusive(shared, element);
            observe_rpc(op, start.elapsed(), &response);
            response
        })
        .collect();
    Response::Batch(responses)
}

/// Run one request under the transaction-ownership discipline.
///
/// Read-only requests from non-owners are served lock-free from the
/// published committed snapshot — no gate, no HAM lock, no waiting: an
/// open foreign transaction is simply invisible (readers see the last
/// committed state). Everything else — writes, transaction control, the
/// owner's own reads (read-your-writes), and reads that must fire a
/// `nodeOpened` demon — waits at the gate for any foreign transaction to
/// finish (one fixed deadline across spurious wakeups) and then takes the
/// exclusive lock.
fn execute_inner(
    shared: &Shared,
    conn_id: u64,
    conn: &mut ConnState,
    request: Request,
) -> Response {
    let mut request = request;
    if request.is_read_only() && !conn.owns_txn {
        let inflight = scoped_gauge("neptune_server_read_ops_inflight");
        let served = match request.context_id() {
            Some(context) => {
                // Context-scoped read: one lock-free load of the home
                // shard's published snapshot.
                let view = shared.load_view(context);
                dispatch_read(&view, request)
            }
            None => {
                // Global read (ListContexts, Verify, …): assemble a
                // consistent multi-shard snapshot.
                let mv = shared.load_multi_view();
                Ok(global_read(shared, &mv, request))
            }
        };
        match served {
            Ok(response) => {
                count("neptune_server_reads_lockfree_total");
                return response;
            }
            Err(bounced) => {
                // A nodeOpened demon must fire: retry on the write path.
                drop(inflight);
                count("neptune_server_read_bounces_total");
                request = bounced;
            }
        }
    }
    let deadline = Instant::now() + shared.lock_timeout;
    let mut gate = match wait_for_gate(shared, conn_id, deadline) {
        Ok(gate) => gate,
        Err(response) => return *response,
    };
    match request {
        Request::BeginTransaction => {
            // Claim ownership first so no new standalone writer can
            // register, then drain the ones already in flight — the
            // transaction must observe (and exclude) every independent
            // shard commit that was admitted before it.
            let claimed = gate.txn_owner.is_none();
            if claimed {
                gate.txn_owner = Some(conn_id);
            }
            while gate.active_writers > 0 {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    if claimed {
                        gate.txn_owner = None;
                    }
                    drop(gate);
                    shared.txn_released.notify_all();
                    count("neptune_server_lock_timeouts_total");
                    return Response::Error(
                        "timed out waiting for in-flight writes to drain".into(),
                    );
                };
                let GateGuard { guard, held } = gate;
                let (guard, _) = shared
                    .txn_released
                    .wait_timeout(guard, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                gate = GateGuard { guard, held };
            }
            return match shared.ham.begin_transaction() {
                Ok(id) => {
                    conn.owns_txn = true;
                    Response::TxnStarted(id)
                }
                Err(e) => {
                    if claimed {
                        gate.txn_owner = None;
                        drop(gate);
                        shared.txn_released.notify_all();
                    }
                    Response::Error(e.to_string())
                }
            };
        }
        Request::CommitTransaction | Request::AbortTransaction => {
            // Resync local state with the gate either way: if the server
            // force-aborted this connection's transaction, the gate is the
            // truth and `owns_txn` was stale.
            conn.owns_txn = false;
            if gate.txn_owner != Some(conn_id) {
                return Response::Error("no transaction owned by this connection".into());
            }
            let r = if matches!(request, Request::CommitTransaction) {
                shared.ham.commit_transaction()
            } else {
                shared.ham.abort_transaction()
            };
            gate.txn_owner = None;
            drop(gate);
            shared.txn_released.notify_all();
            return result_to_response(r.map(|_| Response::Ok));
        }
        _ => {}
    }
    // Standalone write (or the transaction owner's own operation): register
    // with the gate and release it *before* touching any shard, so writers
    // on disjoint shards validate, WAL-append, and publish concurrently.
    // The registration is what BeginTransaction drains, preserving an
    // explicit transaction's exclusivity without serializing everyone else.
    let _inflight = scoped_gauge("neptune_server_exclusive_ops_inflight");
    gate.active_writers += 1;
    drop(gate);
    let _writer = ActiveWriter { shared };
    dispatch_exclusive(shared, request)
}

/// Decrements the gate's standalone-writer count on drop (panic-safe), and
/// wakes any `BeginTransaction` waiting for writers to drain.
struct ActiveWriter<'a> {
    shared: &'a Shared,
}

impl Drop for ActiveWriter<'_> {
    fn drop(&mut self) {
        let mut gate = self.shared.lock_gate();
        gate.active_writers = gate.active_writers.saturating_sub(1);
        drop(gate);
        self.shared.txn_released.notify_all();
    }
}

fn result_to_response(r: neptune_ham::Result<Response>) -> Response {
    match r {
        Ok(resp) => resp,
        Err(e) => Response::Error(e.to_string()),
    }
}

/// Sum the per-shard version-cache counters of a consistent snapshot —
/// the lock-free way to serve `CacheStats`/`Metrics` from the read path.
fn multi_cache_stats(mv: &MultiView) -> neptune_storage::vcache::CacheStats {
    let mut total = neptune_storage::vcache::CacheStats::default();
    for k in 0..mv.shard_count() {
        let s = mv.view(k).version_cache_stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.entries += s.entries;
        total.bytes += s.bytes;
    }
    total
}

/// Age of the freshest shard snapshot — "time since the last commit
/// anywhere", which is what the staleness gauge means on a sharded store.
fn multi_view_age(mv: &MultiView) -> Duration {
    (0..mv.shard_count())
        .map(|k| mv.view(k).age())
        .min()
        .unwrap_or(Duration::ZERO)
}

/// Serve a read-only request that is not scoped to a single context
/// (`Request::context_id()` returned `None`) against a consistent
/// multi-shard snapshot. Infallible: none of these can bounce to the
/// exclusive path.
fn global_read(shared: &Shared, mv: &MultiView, request: Request) -> Response {
    use Request as Q;
    use Response as A;
    match request {
        Q::ListContexts => A::Contexts(mv.contexts()),
        // Verify scans on-disk files, which is only safe against quiescent
        // files — verify_sharded takes each shard's lock (one at a time)
        // for its scan phase, the one "read" here that is not lock-free.
        Q::Verify => A::Findings(neptune_check::verify_sharded(&shared.ham)),
        Q::CacheStats => cache_stats_response(multi_cache_stats(mv)),
        Q::Metrics => metrics_response(multi_cache_stats(mv), multi_view_age(mv)),
        Q::Ping => A::Ok,
        Q::FlightDump => flight_dump_response(),
        Q::Trace { trace_id } => trace_response(trace_id),
        Q::ObsControl { setting } => obs_control_response(setting),
        _ => A::Error("internal: non-global request routed to the global read path".into()),
    }
}

/// Dispatch on the exclusive path: machine-level operations go to the
/// sharded coordinator; context-scoped operations lock the context's home
/// shard and run against that machine alone. Callers have already passed
/// the gate (and either hold it or are registered as an active writer).
fn dispatch_exclusive(shared: &Shared, request: Request) -> Response {
    use Request as Q;
    use Response as A;
    match request {
        Q::CreateContext { from } => {
            result_to_response(shared.ham.create_context(from).map(A::Context))
        }
        Q::MergeContext { child, policy } => {
            result_to_response(shared.ham.merge_context(child, policy).map(A::Merged))
        }
        Q::DestroyContext { id } => {
            result_to_response(shared.ham.destroy_context(id).map(|_| A::Ok))
        }
        Q::Checkpoint => result_to_response(shared.ham.checkpoint().map(|_| A::Ok)),
        Q::ListContexts => A::Contexts(shared.ham.live_contexts()),
        Q::Verify => A::Findings(neptune_check::verify_sharded(&shared.ham)),
        Q::CacheStats => cache_stats_response(shared.ham.version_cache_stats()),
        Q::Metrics => {
            let mv = shared.ham.multi_view();
            metrics_response(shared.ham.version_cache_stats(), multi_view_age(&mv))
        }
        Q::Ping => A::Ok,
        Q::FlightDump => flight_dump_response(),
        Q::Trace { trace_id } => trace_response(trace_id),
        Q::ObsControl { setting } => obs_control_response(setting),
        Q::BeginTransaction | Q::CommitTransaction | Q::AbortTransaction => {
            A::Error("internal: transaction control reached dispatch".into())
        }
        Q::Batch(..) => A::Error("internal: batch reached element dispatch".into()),
        request => {
            let Some(context) = request.context_id() else {
                return A::Error("internal: unrouted machine-scoped request".into());
            };
            match shared.ham.lock_home(context) {
                Ok(mut guard) => dispatch(&mut guard, request),
                Err(e) => A::Error(e.to_string()),
            }
        }
    }
}

/// Serve a read-only request against a published committed snapshot.
///
/// Returns `Err(request)` when the request turns out to need the exclusive
/// path after all (an `OpenNode` whose `nodeOpened` demon is registered —
/// firing a demon mutates state, so it cannot run against an immutable
/// view). The match is exhaustive so adding a `Request` variant forces an
/// explicit classification here as well as in [`Request::is_read_only`].
fn dispatch_read(view: &CommittedView, request: Request) -> std::result::Result<Response, Request> {
    use Request as Q;
    use Response as A;
    if let Q::OpenNode { context, node, .. } = &request {
        if view.open_demon_registered(*context, *node) {
            return Err(request);
        }
    }
    let result: neptune_ham::Result<Response> = (|| {
        Ok(match request {
            Q::LinearizeGraph {
                context,
                start,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(view.linearize_graph(
                    context,
                    start,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::GetGraphQuery {
                context,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(view.get_graph_query(
                    context,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::OpenNode {
                context,
                node,
                time,
                attrs,
            } => {
                let opened = view.read_node(context, node, time, &attrs)?;
                A::Opened {
                    contents: opened.contents,
                    link_pts: opened.link_pts,
                    values: opened.values,
                    current_time: opened.current_time,
                }
            }
            Q::GetNodeTimeStamp { context, node } => {
                A::Time(view.get_node_time_stamp(context, node)?)
            }
            Q::GetNodeVersions { context, node } => {
                let (major, minor) = view.get_node_versions(context, node)?;
                A::Versions(major, minor)
            }
            Q::GetNodeDifferences {
                context,
                node,
                time1,
                time2,
            } => A::Differences(view.get_node_differences(context, node, time1, time2)?),
            Q::GetToNode {
                context,
                link,
                time,
            } => {
                let (n, t) = view.get_to_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetFromNode {
                context,
                link,
                time,
            } => {
                let (n, t) = view.get_from_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetAttributes { context, time } => {
                A::Attributes(view.get_attributes(context, time)?)
            }
            Q::GetAttributeValues {
                context,
                attr,
                time,
            } => A::Values(view.get_attribute_values(context, attr, time)?),
            Q::GetNodeAttributeValue {
                context,
                node,
                attr,
                time,
            } => A::Value(view.get_node_attribute_value(context, node, attr, time)?),
            Q::GetNodeAttributes {
                context,
                node,
                time,
            } => A::AttrTriples(view.get_node_attributes(context, node, time)?),
            Q::GetLinkAttributeValue {
                context,
                link,
                attr,
                time,
            } => A::Value(view.get_link_attribute_value(context, link, attr, time)?),
            Q::GetLinkAttributes {
                context,
                link,
                time,
            } => A::AttrTriples(view.get_link_attributes(context, link, time)?),
            Q::GetGraphDemons { context, time } => A::Demons(view.get_graph_demons(context, time)?),
            Q::GetNodeDemons {
                context,
                node,
                time,
            } => A::Demons(view.get_node_demons(context, node, time)?),
            Q::ListContexts => A::Contexts(view.contexts()),
            Q::Ping => A::Ok,
            Q::Verify => A::Findings(neptune_check::verify_view(view)),
            Q::CacheStats => cache_stats_response(view.version_cache_stats()),
            Q::Metrics => metrics_response(view.version_cache_stats(), view.age()),
            Q::FlightDump => flight_dump_response(),
            Q::Trace { trace_id } => trace_response(trace_id),
            Q::ObsControl { setting } => obs_control_response(setting),
            Q::AddNode { .. }
            | Q::DeleteNode { .. }
            | Q::AddLink { .. }
            | Q::CopyLink { .. }
            | Q::DeleteLink { .. }
            | Q::ModifyNode { .. }
            | Q::ChangeNodeProtection { .. }
            | Q::GetAttributeIndex { .. }
            | Q::SetNodeAttributeValue { .. }
            | Q::DeleteNodeAttribute { .. }
            | Q::SetLinkAttributeValue { .. }
            | Q::DeleteLinkAttribute { .. }
            | Q::SetGraphDemonValue { .. }
            | Q::SetNodeDemon { .. }
            | Q::BeginTransaction
            | Q::CommitTransaction
            | Q::AbortTransaction
            | Q::CreateContext { .. }
            | Q::MergeContext { .. }
            | Q::DestroyContext { .. }
            | Q::Checkpoint => {
                // Unreachable by Request::is_read_only's classification,
                // but a misrouted request must degrade to an error the
                // client can read, not a panic (DESIGN.md §13).
                A::Error("internal: mutating request routed to the read dispatcher".into())
            }
            Q::Batch(..) => A::Error("internal: batch routed to the read dispatcher".into()),
        })
    })();
    Ok(result_to_response(result))
}

fn cache_stats_response(s: neptune_storage::vcache::CacheStats) -> Response {
    Response::CacheStats {
        hits: s.hits,
        misses: s.misses,
        entries: s.entries,
        bytes: s.bytes,
    }
}

/// Snapshot the metrics registry as Prometheus text. Cache occupancy and
/// snapshot age are derived state, so their gauges are refreshed here at
/// scrape time rather than on every insert/evict/publish.
fn metrics_response(s: neptune_storage::vcache::CacheStats, snapshot_age: Duration) -> Response {
    let registry = neptune_obs::registry();
    registry
        .gauge("neptune_storage_vcache_entries")
        .set(s.entries as i64);
    registry
        .gauge("neptune_storage_vcache_bytes")
        .set(s.bytes.min(i64::MAX as u64) as i64);
    registry
        .gauge("neptune_ham_snapshot_age_ns")
        .set(snapshot_age.as_nanos().min(i64::MAX as u128) as i64);
    Response::Metrics(registry.expose())
}

/// Translate a request into a HAM call (exclusive path).
fn dispatch(ham: &mut Ham, request: Request) -> Response {
    use Request as Q;
    use Response as A;
    let result: neptune_ham::Result<Response> = (|| {
        Ok(match request {
            Q::AddNode {
                context,
                keep_history,
            } => {
                let (id, t) = ham.add_node(context, keep_history)?;
                A::NodeCreated(id, t)
            }
            Q::DeleteNode { context, node } => {
                ham.delete_node(context, node)?;
                A::Ok
            }
            Q::AddLink { context, from, to } => {
                let (id, t) = ham.add_link(context, from, to)?;
                A::LinkCreated(id, t)
            }
            Q::CopyLink {
                context,
                link,
                time,
                keep_source,
                pt,
            } => {
                let (id, t) = ham.copy_link(context, link, time, keep_source, pt)?;
                A::LinkCreated(id, t)
            }
            Q::DeleteLink { context, link } => {
                ham.delete_link(context, link)?;
                A::Ok
            }
            Q::LinearizeGraph {
                context,
                start,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(ham.linearize_graph(
                    context,
                    start,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::GetGraphQuery {
                context,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                let np = parse_pred(&node_pred)?;
                let lp = parse_pred(&link_pred)?;
                A::SubGraph(ham.get_graph_query(
                    context,
                    time,
                    &np,
                    &lp,
                    &node_attrs,
                    &link_attrs,
                )?)
            }
            Q::OpenNode {
                context,
                node,
                time,
                attrs,
            } => {
                let opened = ham.open_node(context, node, time, &attrs)?;
                A::Opened {
                    contents: opened.contents,
                    link_pts: opened.link_pts,
                    values: opened.values,
                    current_time: opened.current_time,
                }
            }
            Q::ModifyNode {
                context,
                node,
                time,
                contents,
                link_pts,
            } => A::Time(ham.modify_node(context, node, time, contents, &link_pts)?),
            Q::GetNodeTimeStamp { context, node } => {
                A::Time(ham.get_node_time_stamp(context, node)?)
            }
            Q::ChangeNodeProtection {
                context,
                node,
                protections,
            } => {
                ham.change_node_protection(context, node, protections)?;
                A::Ok
            }
            Q::GetNodeVersions { context, node } => {
                let (major, minor) = ham.get_node_versions(context, node)?;
                A::Versions(major, minor)
            }
            Q::GetNodeDifferences {
                context,
                node,
                time1,
                time2,
            } => A::Differences(ham.get_node_differences(context, node, time1, time2)?),
            Q::GetToNode {
                context,
                link,
                time,
            } => {
                let (n, t) = ham.get_to_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetFromNode {
                context,
                link,
                time,
            } => {
                let (n, t) = ham.get_from_node(context, link, time)?;
                A::NodeAt(n, t)
            }
            Q::GetAttributes { context, time } => A::Attributes(ham.get_attributes(context, time)?),
            Q::GetAttributeValues {
                context,
                attr,
                time,
            } => A::Values(ham.get_attribute_values(context, attr, time)?),
            Q::GetAttributeIndex { context, name } => {
                A::AttrIndex(ham.get_attribute_index(context, &name)?)
            }
            Q::SetNodeAttributeValue {
                context,
                node,
                attr,
                value,
            } => {
                ham.set_node_attribute_value(context, node, attr, value)?;
                A::Ok
            }
            Q::DeleteNodeAttribute {
                context,
                node,
                attr,
            } => {
                ham.delete_node_attribute(context, node, attr)?;
                A::Ok
            }
            Q::GetNodeAttributeValue {
                context,
                node,
                attr,
                time,
            } => A::Value(ham.get_node_attribute_value(context, node, attr, time)?),
            Q::GetNodeAttributes {
                context,
                node,
                time,
            } => A::AttrTriples(ham.get_node_attributes(context, node, time)?),
            Q::SetLinkAttributeValue {
                context,
                link,
                attr,
                value,
            } => {
                ham.set_link_attribute_value(context, link, attr, value)?;
                A::Ok
            }
            Q::DeleteLinkAttribute {
                context,
                link,
                attr,
            } => {
                ham.delete_link_attribute(context, link, attr)?;
                A::Ok
            }
            Q::GetLinkAttributeValue {
                context,
                link,
                attr,
                time,
            } => A::Value(ham.get_link_attribute_value(context, link, attr, time)?),
            Q::GetLinkAttributes {
                context,
                link,
                time,
            } => A::AttrTriples(ham.get_link_attributes(context, link, time)?),
            Q::SetGraphDemonValue {
                context,
                event,
                demon,
            } => {
                ham.set_graph_demon_value(context, event, demon)?;
                A::Ok
            }
            Q::GetGraphDemons { context, time } => A::Demons(ham.get_graph_demons(context, time)?),
            Q::SetNodeDemon {
                context,
                node,
                event,
                demon,
            } => {
                ham.set_node_demon(context, node, event, demon)?;
                A::Ok
            }
            Q::GetNodeDemons {
                context,
                node,
                time,
            } => A::Demons(ham.get_node_demons(context, node, time)?),
            Q::CreateContext { .. }
            | Q::MergeContext { .. }
            | Q::DestroyContext { .. }
            | Q::ListContexts
            | Q::Checkpoint
            | Q::Verify
            | Q::CacheStats
            | Q::Metrics
            | Q::FlightDump
            | Q::Trace { .. }
            | Q::ObsControl { .. } => {
                // Machine-level operations must go through the sharded
                // coordinator (`dispatch_exclusive` intercepts them before
                // this per-shard dispatcher); running one against a single
                // shard would corrupt the global context-id space.
                A::Error("internal: machine-scoped request routed to a single shard".into())
            }
            Q::Ping => A::Ok,
            Q::BeginTransaction | Q::CommitTransaction | Q::AbortTransaction => {
                // execute_inner consumes these before dispatch; degrade to
                // an error rather than panicking if that routing changes.
                A::Error("internal: transaction control reached dispatch".into())
            }
            Q::Batch(..) => A::Error("internal: batch reached element dispatch".into()),
        })
    })();
    result_to_response(result)
}

/// Serve [`Request::FlightDump`]: snapshot every retained trace. Touches
/// only process-global observability state (as do the two helpers below),
/// so both dispatchers route here and neither needs the HAM.
fn flight_dump_response() -> Response {
    let traces = neptune_obs::recorder()
        .dump()
        .iter()
        .map(|t| (**t).clone())
        .collect();
    Response::Traces(traces)
}

/// Serve [`Request::Trace`]: zero or one retained trace by id.
fn trace_response(trace_id: u64) -> Response {
    let traces = neptune_obs::recorder()
        .find(trace_id)
        .map(|t| (*t).clone())
        .into_iter()
        .collect();
    Response::Traces(traces)
}

/// Serve [`Request::ObsControl`]: apply a runtime observability setting.
fn obs_control_response(setting: ObsSetting) -> Response {
    match setting {
        ObsSetting::SlowOpMs(ms) => {
            neptune_obs::set_slow_op_threshold(ms.map(Duration::from_millis));
        }
        ObsSetting::Enabled(on) => neptune_obs::registry().set_enabled(on),
    }
    Response::Ok
}

fn parse_pred(text: &str) -> neptune_ham::Result<Predicate> {
    Predicate::parse(text).map_err(|message| neptune_ham::HamError::BadPredicate { message })
}

/// Convenience for servers and tests: the Time the HAM currently reports
/// for a context's clock.
pub fn graph_now(ham: &Ham, context: neptune_ham::types::ContextId) -> neptune_ham::Result<Time> {
    Ok(ham.graph(context)?.now())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::Protections;

    fn test_shared(name: &str) -> Shared {
        let dir =
            std::env::temp_dir().join(format!("neptune-lockcheck-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (ham, _, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        Shared {
            ham: ShardedHam::from_ham(ham),
            gate: Mutex::new(Gate {
                txn_owner: None,
                active_writers: 0,
            }),
            txn_released: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(1),
            lock_timeout: Duration::from_millis(100),
        }
    }

    #[test]
    fn guards_follow_declared_order() {
        let shared = test_shared("ordered");
        // The server's canonical sequence: gate, then home shard, gate
        // released first. Must not trip the dynamic checker.
        let gate = shared.lock_gate();
        let shard = shared.ham.lock_home(neptune_ham::MAIN_CONTEXT).unwrap();
        drop(gate);
        drop(shard);
        // A view load while holding nothing is always legal.
        let view = shared.load_view(neptune_ham::MAIN_CONTEXT);
        let gate = shared.lock_gate();
        drop(gate);
        drop(view);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn inverted_guard_acquisition_panics() {
        let shared = test_shared("inverted");
        // Deliberate hierarchy inversion: shard before gate. In debug
        // builds the lockcheck token panics before `gate.lock()` can
        // deadlock.
        let _shard = shared.ham.lock_home(neptune_ham::MAIN_CONTEXT).unwrap();
        let _gate = shared.lock_gate();
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (tracker compiled out)");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn view_load_under_gate_panics() {
        let shared = test_shared("view-under-gate");
        // A snapshot load must happen before any server lock: loading
        // while holding the gate would hide a blocking dependency inside
        // the "lock-free" path.
        let _gate = shared.lock_gate();
        let _view = shared.load_view(neptune_ham::MAIN_CONTEXT);
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (tracker compiled out)");
    }
}
