//! The Neptune wire protocol.
//!
//! Paper §4.1: *"The user interface process communicates with the HAM using
//! a remote procedure call mechanism; the HAM runs as a separate process,
//! typically on a machine accessed over a network."* Each HAM operation is
//! one [`Request`] variant; the server answers with one [`Response`].
//! Messages are encoded with the storage codec and framed by
//! [`crate::frame`].

use neptune_check::Finding;
use neptune_ham::context::{ConflictPolicy, MergeReport};
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::query::SubGraph;
use neptune_ham::types::{
    AttributeIndex, ContextId, LinkIndex, LinkPt, NodeIndex, Protections, Time, Version,
};
use neptune_ham::value::Value;
use neptune_obs::{SpanRecord, TraceContext, TraceRecord};
use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::diff::Difference;
use neptune_storage::error::{Result as StorageResult, StorageError};
use std::sync::Arc;

fn encode_event(e: Event, w: &mut Writer) {
    // Tags are positions in Event::ALL (decode_event indexes into it); an
    // explicit match keeps the encoder panic-free and forces this list to
    // grow with the enum.
    let tag: u8 = match e {
        Event::GraphOpened => 0,
        Event::NodeAdded => 1,
        Event::NodeDeleted => 2,
        Event::NodeOpened => 3,
        Event::NodeModified => 4,
        Event::LinkAdded => 5,
        Event::LinkDeleted => 6,
        Event::AttributeChanged => 7,
    };
    w.put_u8(tag);
}

fn decode_event(r: &mut Reader<'_>) -> StorageResult<Event> {
    let tag = r.get_u8()?;
    Event::ALL
        .get(tag as usize)
        .copied()
        .ok_or(StorageError::InvalidTag {
            context: "Event",
            tag: tag as u64,
        })
}

fn encode_policy(p: ConflictPolicy, w: &mut Writer) {
    w.put_u8(match p {
        ConflictPolicy::Fail => 0,
        ConflictPolicy::PreferChild => 1,
        ConflictPolicy::PreferParent => 2,
    });
}

fn decode_policy(r: &mut Reader<'_>) -> StorageResult<ConflictPolicy> {
    Ok(match r.get_u8()? {
        0 => ConflictPolicy::Fail,
        1 => ConflictPolicy::PreferChild,
        2 => ConflictPolicy::PreferParent,
        tag => {
            return Err(StorageError::InvalidTag {
                context: "ConflictPolicy",
                tag: tag as u64,
            })
        }
    })
}

/// Tag prefixing a request frame that carries the trace-context extension
/// (see [`TracedRequest`]). Deliberately *outside* the [`Request`] tag
/// space: an old client never sends it (its frames start with a plain
/// request tag and decode with no context), and an old server rejects it
/// as an unknown tag rather than misparsing the payload.
pub const TRACE_EXT_TAG: u8 = 43;

/// A runtime-adjustable observability setting ([`Request::ObsControl`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsSetting {
    /// Set the slow-op threshold in milliseconds; `None` disables both the
    /// slow-op log and latency-based flight-recorder retention.
    SlowOpMs(Option<u64>),
    /// The instrumentation kill-switch: `false` turns every metric,
    /// span, and trace site into a single relaxed atomic load.
    Enabled(bool),
}

fn encode_obs_setting(s: ObsSetting, w: &mut Writer) {
    match s {
        ObsSetting::SlowOpMs(ms) => {
            w.put_u8(0);
            match ms {
                Some(ms) => {
                    w.put_bool(true);
                    w.put_u64(ms);
                }
                None => w.put_bool(false),
            }
        }
        ObsSetting::Enabled(on) => {
            w.put_u8(1);
            w.put_bool(on);
        }
    }
}

fn decode_obs_setting(r: &mut Reader<'_>) -> StorageResult<ObsSetting> {
    Ok(match r.get_u8()? {
        0 => ObsSetting::SlowOpMs(if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        }),
        1 => ObsSetting::Enabled(r.get_bool()?),
        tag => {
            return Err(StorageError::InvalidTag {
                context: "ObsSetting",
                tag: tag as u64,
            })
        }
    })
}

/// A client request: one HAM operation (or transaction control).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `addNode`.
    AddNode {
        /// Target context.
        context: ContextId,
        /// Archive (true) or file (false).
        keep_history: bool,
    },
    /// `deleteNode`.
    DeleteNode {
        /// Target context.
        context: ContextId,
        /// Node to delete.
        node: NodeIndex,
    },
    /// `addLink`.
    AddLink {
        /// Target context.
        context: ContextId,
        /// Source end.
        from: LinkPt,
        /// Destination end.
        to: LinkPt,
    },
    /// `copyLink`.
    CopyLink {
        /// Target context.
        context: ContextId,
        /// Link to copy an end from.
        link: LinkIndex,
        /// Time at which to read the shared end.
        time: Time,
        /// Keep the source end (true) or the destination end (false).
        keep_source: bool,
        /// The other end.
        pt: LinkPt,
    },
    /// `deleteLink`.
    DeleteLink {
        /// Target context.
        context: ContextId,
        /// Link to delete.
        link: LinkIndex,
    },
    /// `linearizeGraph` (predicates as source text).
    LinearizeGraph {
        /// Target context.
        context: ContextId,
        /// Traversal root.
        start: NodeIndex,
        /// Time of the traversal.
        time: Time,
        /// Node visibility predicate.
        node_pred: String,
        /// Link visibility predicate.
        link_pred: String,
        /// Attributes to return per node.
        node_attrs: Vec<AttributeIndex>,
        /// Attributes to return per link.
        link_attrs: Vec<AttributeIndex>,
    },
    /// `getGraphQuery` (predicates as source text).
    GetGraphQuery {
        /// Target context.
        context: ContextId,
        /// Time of the query.
        time: Time,
        /// Node visibility predicate.
        node_pred: String,
        /// Link visibility predicate.
        link_pred: String,
        /// Attributes to return per node.
        node_attrs: Vec<AttributeIndex>,
        /// Attributes to return per link.
        link_attrs: Vec<AttributeIndex>,
    },
    /// `openNode`.
    OpenNode {
        /// Target context.
        context: ContextId,
        /// Node to open.
        node: NodeIndex,
        /// Version time (zero = current).
        time: Time,
        /// Attributes to return.
        attrs: Vec<AttributeIndex>,
    },
    /// `modifyNode`.
    ModifyNode {
        /// Target context.
        context: ContextId,
        /// Node to modify.
        node: NodeIndex,
        /// Expected current version time.
        time: Time,
        /// New contents.
        contents: Vec<u8>,
        /// Attachment points (canonical order).
        link_pts: Vec<LinkPt>,
    },
    /// `getNodeTimeStamp`.
    GetNodeTimeStamp {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
    },
    /// `changeNodeProtection`.
    ChangeNodeProtection {
        /// Target context.
        context: ContextId,
        /// Node affected.
        node: NodeIndex,
        /// New protections.
        protections: Protections,
    },
    /// `getNodeVersions`.
    GetNodeVersions {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
    },
    /// `getNodeDifferences`.
    GetNodeDifferences {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
        /// Old version time.
        time1: Time,
        /// New version time.
        time2: Time,
    },
    /// `getToNode`.
    GetToNode {
        /// Target context.
        context: ContextId,
        /// Link queried.
        link: LinkIndex,
        /// Time of the query.
        time: Time,
    },
    /// `getFromNode`.
    GetFromNode {
        /// Target context.
        context: ContextId,
        /// Link queried.
        link: LinkIndex,
        /// Time of the query.
        time: Time,
    },
    /// `getAttributes`.
    GetAttributes {
        /// Target context.
        context: ContextId,
        /// Time of the query.
        time: Time,
    },
    /// `getAttributeValues`.
    GetAttributeValues {
        /// Target context.
        context: ContextId,
        /// Attribute queried.
        attr: AttributeIndex,
        /// Time of the query.
        time: Time,
    },
    /// `getAttributeIndex`.
    GetAttributeIndex {
        /// Target context.
        context: ContextId,
        /// Attribute name to intern.
        name: String,
    },
    /// `setNodeAttributeValue`.
    SetNodeAttributeValue {
        /// Target context.
        context: ContextId,
        /// Node affected.
        node: NodeIndex,
        /// Attribute set.
        attr: AttributeIndex,
        /// New value.
        value: Value,
    },
    /// `deleteNodeAttribute`.
    DeleteNodeAttribute {
        /// Target context.
        context: ContextId,
        /// Node affected.
        node: NodeIndex,
        /// Attribute deleted.
        attr: AttributeIndex,
    },
    /// `getNodeAttributeValue`.
    GetNodeAttributeValue {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
        /// Attribute queried.
        attr: AttributeIndex,
        /// Time of the query.
        time: Time,
    },
    /// `getNodeAttributes`.
    GetNodeAttributes {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
        /// Time of the query.
        time: Time,
    },
    /// `setLinkAttributeValue`.
    SetLinkAttributeValue {
        /// Target context.
        context: ContextId,
        /// Link affected.
        link: LinkIndex,
        /// Attribute set.
        attr: AttributeIndex,
        /// New value.
        value: Value,
    },
    /// `deleteLinkAttribute`.
    DeleteLinkAttribute {
        /// Target context.
        context: ContextId,
        /// Link affected.
        link: LinkIndex,
        /// Attribute deleted.
        attr: AttributeIndex,
    },
    /// `getLinkAttributeValue`.
    GetLinkAttributeValue {
        /// Target context.
        context: ContextId,
        /// Link queried.
        link: LinkIndex,
        /// Attribute queried.
        attr: AttributeIndex,
        /// Time of the query.
        time: Time,
    },
    /// `getLinkAttributes`.
    GetLinkAttributes {
        /// Target context.
        context: ContextId,
        /// Link queried.
        link: LinkIndex,
        /// Time of the query.
        time: Time,
    },
    /// `setGraphDemonValue`.
    SetGraphDemonValue {
        /// Target context.
        context: ContextId,
        /// Triggering event.
        event: Event,
        /// Demon (None disables).
        demon: Option<DemonSpec>,
    },
    /// `getGraphDemons`.
    GetGraphDemons {
        /// Target context.
        context: ContextId,
        /// Time of the query.
        time: Time,
    },
    /// `setNodeDemon`.
    SetNodeDemon {
        /// Target context.
        context: ContextId,
        /// Node affected.
        node: NodeIndex,
        /// Triggering event.
        event: Event,
        /// Demon (None disables).
        demon: Option<DemonSpec>,
    },
    /// `getNodeDemons`.
    GetNodeDemons {
        /// Target context.
        context: ContextId,
        /// Node queried.
        node: NodeIndex,
        /// Time of the query.
        time: Time,
    },
    /// Begin an explicit transaction owned by this connection.
    BeginTransaction,
    /// Commit this connection's transaction.
    CommitTransaction,
    /// Abort this connection's transaction.
    AbortTransaction,
    /// Fork a context.
    CreateContext {
        /// Parent context.
        from: ContextId,
    },
    /// Merge a context back into its parent.
    MergeContext {
        /// Child to merge.
        child: ContextId,
        /// Conflict policy.
        policy: ConflictPolicy,
    },
    /// Discard a context.
    DestroyContext {
        /// Context to discard.
        id: ContextId,
    },
    /// List live contexts.
    ListContexts,
    /// Force a checkpoint.
    Checkpoint,
    /// Liveness probe.
    Ping,
    /// Run the integrity verifier (`neptune-check`) over the server's
    /// store: file scan plus every in-memory invariant.
    Verify,
    /// Read the version-materialization cache's counters.
    ///
    /// Compatibility alias: everything it reports (and much more) is in
    /// [`Request::Metrics`].
    CacheStats,
    /// Read the full metrics registry as Prometheus-style text exposition:
    /// per-RPC latency histograms, HAM operation timings and transaction
    /// counters, WAL/replay/cache instrumentation.
    Metrics,
    /// Several requests executed back-to-back under one gate check and one
    /// HAM lock acquisition; answered by [`Response::Batch`] with one
    /// element per request, in order (per-element errors do not abort the
    /// rest). Transaction control and nested batches are rejected.
    Batch(Vec<Request>),
    /// Snapshot the server's flight recorder: every retained trace
    /// (recent tail plus slow/error traces), oldest first.
    FlightDump,
    /// Fetch one retained trace by id; answered with an empty
    /// [`Response::Traces`] once the trace has aged out of both rings.
    Trace {
        /// The trace id to look up.
        trace_id: u64,
    },
    /// Adjust an observability knob at runtime (slow-op threshold,
    /// instrumentation kill-switch).
    ObsControl {
        /// The setting to change.
        setting: ObsSetting,
    },
}

impl Request {
    /// Whether this request only observes the HAM.
    ///
    /// The server runs read-only requests under a shared (reader) lock at a
    /// pinned time, so any number of them proceed concurrently; mutating
    /// requests take the exclusive lock. A variant belongs here only if the
    /// HAM method it dispatches to takes `&self` (`GetAttributeIndex`
    /// interns names and `Checkpoint` rewrites files, so neither
    /// qualifies). `OpenNode` is read-only with one exception — a
    /// registered `nodeOpened` demon — which the dispatcher detects and
    /// routes back through the exclusive path.
    pub fn is_read_only(&self) -> bool {
        use Request::*;
        match self {
            // A batch is read-only iff every element is; one write demotes
            // the whole batch to the exclusive path.
            Batch(elements) => elements.iter().all(Request::is_read_only),
            LinearizeGraph { .. }
            | GetGraphQuery { .. }
            | OpenNode { .. }
            | GetNodeTimeStamp { .. }
            | GetNodeVersions { .. }
            | GetNodeDifferences { .. }
            | GetToNode { .. }
            | GetFromNode { .. }
            | GetAttributes { .. }
            | GetAttributeValues { .. }
            | GetNodeAttributeValue { .. }
            | GetNodeAttributes { .. }
            | GetLinkAttributeValue { .. }
            | GetLinkAttributes { .. }
            | GetGraphDemons { .. }
            | GetNodeDemons { .. }
            | ListContexts
            | Ping
            | Verify
            | CacheStats
            | Metrics
            // The observability RPCs touch only process-global obs state,
            // never the HAM: always safe on the shared path.
            | FlightDump
            | Trace { .. }
            | ObsControl { .. } => true,
            AddNode { .. }
            | DeleteNode { .. }
            | AddLink { .. }
            | CopyLink { .. }
            | DeleteLink { .. }
            | ModifyNode { .. }
            | ChangeNodeProtection { .. }
            | GetAttributeIndex { .. }
            | SetNodeAttributeValue { .. }
            | DeleteNodeAttribute { .. }
            | SetLinkAttributeValue { .. }
            | DeleteLinkAttribute { .. }
            | SetGraphDemonValue { .. }
            | SetNodeDemon { .. }
            | BeginTransaction
            | CommitTransaction
            | AbortTransaction
            | CreateContext { .. }
            | MergeContext { .. }
            | DestroyContext { .. }
            | Checkpoint => false,
        }
    }

    /// The context this request is scoped to, if any — the sharded
    /// server's routing key: context-scoped requests go to the context's
    /// home shard, `None` means machine-global (served from a multi-shard
    /// view when read-only, or under the gate when not).
    ///
    /// `MergeContext` reports the *child* context: the server routes to
    /// the sharded merge which discovers the parent (possibly on another
    /// shard) itself. A `Batch` is global — the server classifies its
    /// elements individually.
    pub fn context_id(&self) -> Option<ContextId> {
        use Request::*;
        match self {
            AddNode { context, .. }
            | DeleteNode { context, .. }
            | AddLink { context, .. }
            | CopyLink { context, .. }
            | DeleteLink { context, .. }
            | LinearizeGraph { context, .. }
            | GetGraphQuery { context, .. }
            | OpenNode { context, .. }
            | ModifyNode { context, .. }
            | GetNodeTimeStamp { context, .. }
            | ChangeNodeProtection { context, .. }
            | GetNodeVersions { context, .. }
            | GetNodeDifferences { context, .. }
            | GetToNode { context, .. }
            | GetFromNode { context, .. }
            | GetAttributes { context, .. }
            | GetAttributeValues { context, .. }
            | GetAttributeIndex { context, .. }
            | SetNodeAttributeValue { context, .. }
            | DeleteNodeAttribute { context, .. }
            | GetNodeAttributeValue { context, .. }
            | GetNodeAttributes { context, .. }
            | SetLinkAttributeValue { context, .. }
            | DeleteLinkAttribute { context, .. }
            | GetLinkAttributeValue { context, .. }
            | GetLinkAttributes { context, .. }
            | SetGraphDemonValue { context, .. }
            | GetGraphDemons { context, .. }
            | SetNodeDemon { context, .. }
            | GetNodeDemons { context, .. } => Some(*context),
            CreateContext { from } => Some(*from),
            MergeContext { child, .. } => Some(*child),
            DestroyContext { id } => Some(*id),
            BeginTransaction
            | CommitTransaction
            | AbortTransaction
            | ListContexts
            | Checkpoint
            | Ping
            | Verify
            | CacheStats
            | Metrics
            | Batch(..)
            | FlightDump
            | Trace { .. }
            | ObsControl { .. } => None,
        }
    }

    /// The variant's name, used as the `op` label of the server's
    /// per-request latency histograms (`neptune_server_rpc_ns{op=...}`).
    pub fn name(&self) -> &'static str {
        use Request::*;
        match self {
            AddNode { .. } => "AddNode",
            DeleteNode { .. } => "DeleteNode",
            AddLink { .. } => "AddLink",
            CopyLink { .. } => "CopyLink",
            DeleteLink { .. } => "DeleteLink",
            LinearizeGraph { .. } => "LinearizeGraph",
            GetGraphQuery { .. } => "GetGraphQuery",
            OpenNode { .. } => "OpenNode",
            ModifyNode { .. } => "ModifyNode",
            GetNodeTimeStamp { .. } => "GetNodeTimeStamp",
            ChangeNodeProtection { .. } => "ChangeNodeProtection",
            GetNodeVersions { .. } => "GetNodeVersions",
            GetNodeDifferences { .. } => "GetNodeDifferences",
            GetToNode { .. } => "GetToNode",
            GetFromNode { .. } => "GetFromNode",
            GetAttributes { .. } => "GetAttributes",
            GetAttributeValues { .. } => "GetAttributeValues",
            GetAttributeIndex { .. } => "GetAttributeIndex",
            SetNodeAttributeValue { .. } => "SetNodeAttributeValue",
            DeleteNodeAttribute { .. } => "DeleteNodeAttribute",
            GetNodeAttributeValue { .. } => "GetNodeAttributeValue",
            GetNodeAttributes { .. } => "GetNodeAttributes",
            SetLinkAttributeValue { .. } => "SetLinkAttributeValue",
            DeleteLinkAttribute { .. } => "DeleteLinkAttribute",
            GetLinkAttributeValue { .. } => "GetLinkAttributeValue",
            GetLinkAttributes { .. } => "GetLinkAttributes",
            SetGraphDemonValue { .. } => "SetGraphDemonValue",
            GetGraphDemons { .. } => "GetGraphDemons",
            SetNodeDemon { .. } => "SetNodeDemon",
            GetNodeDemons { .. } => "GetNodeDemons",
            BeginTransaction => "BeginTransaction",
            CommitTransaction => "CommitTransaction",
            AbortTransaction => "AbortTransaction",
            CreateContext { .. } => "CreateContext",
            MergeContext { .. } => "MergeContext",
            DestroyContext { .. } => "DestroyContext",
            ListContexts => "ListContexts",
            Checkpoint => "Checkpoint",
            Ping => "Ping",
            Verify => "Verify",
            CacheStats => "CacheStats",
            Metrics => "Metrics",
            Batch(..) => "Batch",
            FlightDump => "FlightDump",
            Trace { .. } => "Trace",
            ObsControl { .. } => "ObsControl",
        }
    }
}

/// The server's answer to a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Operation succeeded with no payload.
    Ok,
    /// `(NodeIndex, Time)` — addNode.
    NodeCreated(NodeIndex, Time),
    /// `(LinkIndex, Time)` — addLink / copyLink.
    LinkCreated(LinkIndex, Time),
    /// A query result.
    SubGraph(SubGraph),
    /// openNode's result.
    Opened {
        /// Contents at the requested time, shared with the HAM's version
        /// store/cache — encoding splices this buffer by reference.
        contents: Arc<[u8]>,
        /// Link attachments of that version.
        link_pts: Vec<LinkPt>,
        /// Requested attribute values.
        values: Vec<Option<Value>>,
        /// Current version time.
        current_time: Time,
    },
    /// A single time (timestamps, modify results).
    Time(Time),
    /// Version histories (major, minor).
    Versions(Vec<Version>, Vec<Version>),
    /// Differences between versions.
    Differences(Vec<Difference>),
    /// A node and the version of it a link end refers to.
    NodeAt(NodeIndex, Time),
    /// Attribute names and indices.
    Attributes(Vec<(String, AttributeIndex)>),
    /// A set of values.
    Values(Vec<Value>),
    /// An attribute index.
    AttrIndex(AttributeIndex),
    /// A single value.
    Value(Value),
    /// Attribute triples.
    AttrTriples(Vec<(String, AttributeIndex, Value)>),
    /// Demon table entries.
    Demons(Vec<(Event, DemonSpec)>),
    /// A transaction id.
    TxnStarted(u64),
    /// A created context.
    Context(ContextId),
    /// A merge report (serialized as counts + conflict strings).
    Merged(MergeReport),
    /// Live contexts.
    Contexts(Vec<ContextId>),
    /// The operation failed; human-readable reason.
    Error(String),
    /// Integrity-verifier results (empty = clean store).
    Findings(Vec<Finding>),
    /// Version-materialization cache counters.
    CacheStats {
        /// Lookups served from the cache.
        hits: u64,
        /// Lookups that had to materialize.
        misses: u64,
        /// Versions currently cached.
        entries: u64,
        /// Total payload bytes currently cached.
        bytes: u64,
    },
    /// The metrics registry in Prometheus text exposition format.
    Metrics(String),
    /// Answers [`Request::Batch`]: one response per element, in order.
    Batch(Vec<Response>),
    /// Retained traces from the flight recorder — the whole dump for
    /// [`Request::FlightDump`], zero or one for [`Request::Trace`].
    Traces(Vec<TraceRecord>),
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        use Request::*;
        match self {
            AddNode {
                context,
                keep_history,
            } => {
                w.put_u8(0);
                context.encode(w);
                w.put_bool(*keep_history);
            }
            DeleteNode { context, node } => {
                w.put_u8(1);
                context.encode(w);
                node.encode(w);
            }
            AddLink { context, from, to } => {
                w.put_u8(2);
                context.encode(w);
                from.encode(w);
                to.encode(w);
            }
            CopyLink {
                context,
                link,
                time,
                keep_source,
                pt,
            } => {
                w.put_u8(3);
                context.encode(w);
                link.encode(w);
                time.encode(w);
                w.put_bool(*keep_source);
                pt.encode(w);
            }
            DeleteLink { context, link } => {
                w.put_u8(4);
                context.encode(w);
                link.encode(w);
            }
            LinearizeGraph {
                context,
                start,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                w.put_u8(5);
                context.encode(w);
                start.encode(w);
                time.encode(w);
                w.put_str(node_pred);
                w.put_str(link_pred);
                encode_seq(node_attrs, w);
                encode_seq(link_attrs, w);
            }
            GetGraphQuery {
                context,
                time,
                node_pred,
                link_pred,
                node_attrs,
                link_attrs,
            } => {
                w.put_u8(6);
                context.encode(w);
                time.encode(w);
                w.put_str(node_pred);
                w.put_str(link_pred);
                encode_seq(node_attrs, w);
                encode_seq(link_attrs, w);
            }
            OpenNode {
                context,
                node,
                time,
                attrs,
            } => {
                w.put_u8(7);
                context.encode(w);
                node.encode(w);
                time.encode(w);
                encode_seq(attrs, w);
            }
            ModifyNode {
                context,
                node,
                time,
                contents,
                link_pts,
            } => {
                w.put_u8(8);
                context.encode(w);
                node.encode(w);
                time.encode(w);
                w.put_bytes(contents);
                encode_seq(link_pts, w);
            }
            GetNodeTimeStamp { context, node } => {
                w.put_u8(9);
                context.encode(w);
                node.encode(w);
            }
            ChangeNodeProtection {
                context,
                node,
                protections,
            } => {
                w.put_u8(10);
                context.encode(w);
                node.encode(w);
                protections.encode(w);
            }
            GetNodeVersions { context, node } => {
                w.put_u8(11);
                context.encode(w);
                node.encode(w);
            }
            GetNodeDifferences {
                context,
                node,
                time1,
                time2,
            } => {
                w.put_u8(12);
                context.encode(w);
                node.encode(w);
                time1.encode(w);
                time2.encode(w);
            }
            GetToNode {
                context,
                link,
                time,
            } => {
                w.put_u8(13);
                context.encode(w);
                link.encode(w);
                time.encode(w);
            }
            GetFromNode {
                context,
                link,
                time,
            } => {
                w.put_u8(14);
                context.encode(w);
                link.encode(w);
                time.encode(w);
            }
            GetAttributes { context, time } => {
                w.put_u8(15);
                context.encode(w);
                time.encode(w);
            }
            GetAttributeValues {
                context,
                attr,
                time,
            } => {
                w.put_u8(16);
                context.encode(w);
                attr.encode(w);
                time.encode(w);
            }
            GetAttributeIndex { context, name } => {
                w.put_u8(17);
                context.encode(w);
                w.put_str(name);
            }
            SetNodeAttributeValue {
                context,
                node,
                attr,
                value,
            } => {
                w.put_u8(18);
                context.encode(w);
                node.encode(w);
                attr.encode(w);
                value.encode(w);
            }
            DeleteNodeAttribute {
                context,
                node,
                attr,
            } => {
                w.put_u8(19);
                context.encode(w);
                node.encode(w);
                attr.encode(w);
            }
            GetNodeAttributeValue {
                context,
                node,
                attr,
                time,
            } => {
                w.put_u8(20);
                context.encode(w);
                node.encode(w);
                attr.encode(w);
                time.encode(w);
            }
            GetNodeAttributes {
                context,
                node,
                time,
            } => {
                w.put_u8(21);
                context.encode(w);
                node.encode(w);
                time.encode(w);
            }
            SetLinkAttributeValue {
                context,
                link,
                attr,
                value,
            } => {
                w.put_u8(22);
                context.encode(w);
                link.encode(w);
                attr.encode(w);
                value.encode(w);
            }
            DeleteLinkAttribute {
                context,
                link,
                attr,
            } => {
                w.put_u8(23);
                context.encode(w);
                link.encode(w);
                attr.encode(w);
            }
            GetLinkAttributeValue {
                context,
                link,
                attr,
                time,
            } => {
                w.put_u8(24);
                context.encode(w);
                link.encode(w);
                attr.encode(w);
                time.encode(w);
            }
            GetLinkAttributes {
                context,
                link,
                time,
            } => {
                w.put_u8(25);
                context.encode(w);
                link.encode(w);
                time.encode(w);
            }
            SetGraphDemonValue {
                context,
                event,
                demon,
            } => {
                w.put_u8(26);
                context.encode(w);
                encode_event(*event, w);
                demon.encode(w);
            }
            GetGraphDemons { context, time } => {
                w.put_u8(27);
                context.encode(w);
                time.encode(w);
            }
            SetNodeDemon {
                context,
                node,
                event,
                demon,
            } => {
                w.put_u8(28);
                context.encode(w);
                node.encode(w);
                encode_event(*event, w);
                demon.encode(w);
            }
            GetNodeDemons {
                context,
                node,
                time,
            } => {
                w.put_u8(29);
                context.encode(w);
                node.encode(w);
                time.encode(w);
            }
            BeginTransaction => w.put_u8(30),
            CommitTransaction => w.put_u8(31),
            AbortTransaction => w.put_u8(32),
            CreateContext { from } => {
                w.put_u8(33);
                from.encode(w);
            }
            MergeContext { child, policy } => {
                w.put_u8(34);
                child.encode(w);
                encode_policy(*policy, w);
            }
            DestroyContext { id } => {
                w.put_u8(35);
                id.encode(w);
            }
            ListContexts => w.put_u8(36),
            Checkpoint => w.put_u8(37),
            Ping => w.put_u8(38),
            Verify => w.put_u8(39),
            CacheStats => w.put_u8(40),
            Metrics => w.put_u8(41),
            Batch(elements) => {
                w.put_u8(42);
                encode_seq(elements, w);
            }
            // 43 is TRACE_EXT_TAG, reserved for the TracedRequest prefix.
            FlightDump => w.put_u8(44),
            Trace { trace_id } => {
                w.put_u8(45);
                w.put_u64(*trace_id);
            }
            ObsControl { setting } => {
                w.put_u8(46);
                encode_obs_setting(*setting, w);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        decode_request(r, true)
    }
}

/// [`Request::decode`] body. `allow_batch` is true only at the top level:
/// batch elements may not themselves be batches, and rejecting the tag
/// *during* decode bounds recursion depth against hostile deeply-nested
/// payloads.
fn decode_request(r: &mut Reader<'_>, allow_batch: bool) -> StorageResult<Request> {
    let tag = r.get_u8()?;
    decode_request_tag(r, tag, allow_batch)
}

/// Decode a request whose tag byte has already been consumed — the shape
/// [`TracedRequest::decode`] needs after peeking for [`TRACE_EXT_TAG`].
fn decode_request_tag(r: &mut Reader<'_>, tag: u8, allow_batch: bool) -> StorageResult<Request> {
    {
        use Request::*;
        Ok(match tag {
            0 => AddNode {
                context: ContextId::decode(r)?,
                keep_history: r.get_bool()?,
            },
            1 => DeleteNode {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
            },
            2 => AddLink {
                context: ContextId::decode(r)?,
                from: LinkPt::decode(r)?,
                to: LinkPt::decode(r)?,
            },
            3 => CopyLink {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                time: Time::decode(r)?,
                keep_source: r.get_bool()?,
                pt: LinkPt::decode(r)?,
            },
            4 => DeleteLink {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
            },
            5 => LinearizeGraph {
                context: ContextId::decode(r)?,
                start: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
                node_pred: r.get_str()?.to_owned(),
                link_pred: r.get_str()?.to_owned(),
                node_attrs: decode_seq(r)?,
                link_attrs: decode_seq(r)?,
            },
            6 => GetGraphQuery {
                context: ContextId::decode(r)?,
                time: Time::decode(r)?,
                node_pred: r.get_str()?.to_owned(),
                link_pred: r.get_str()?.to_owned(),
                node_attrs: decode_seq(r)?,
                link_attrs: decode_seq(r)?,
            },
            7 => OpenNode {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
                attrs: decode_seq(r)?,
            },
            8 => ModifyNode {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
                contents: r.get_bytes()?.to_vec(),
                link_pts: decode_seq(r)?,
            },
            9 => GetNodeTimeStamp {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
            },
            10 => ChangeNodeProtection {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                protections: Protections::decode(r)?,
            },
            11 => GetNodeVersions {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
            },
            12 => GetNodeDifferences {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                time1: Time::decode(r)?,
                time2: Time::decode(r)?,
            },
            13 => GetToNode {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            14 => GetFromNode {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            15 => GetAttributes {
                context: ContextId::decode(r)?,
                time: Time::decode(r)?,
            },
            16 => GetAttributeValues {
                context: ContextId::decode(r)?,
                attr: AttributeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            17 => GetAttributeIndex {
                context: ContextId::decode(r)?,
                name: r.get_str()?.to_owned(),
            },
            18 => SetNodeAttributeValue {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
                value: Value::decode(r)?,
            },
            19 => DeleteNodeAttribute {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
            },
            20 => GetNodeAttributeValue {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            21 => GetNodeAttributes {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            22 => SetLinkAttributeValue {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
                value: Value::decode(r)?,
            },
            23 => DeleteLinkAttribute {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
            },
            24 => GetLinkAttributeValue {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                attr: AttributeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            25 => GetLinkAttributes {
                context: ContextId::decode(r)?,
                link: LinkIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            26 => SetGraphDemonValue {
                context: ContextId::decode(r)?,
                event: decode_event(r)?,
                demon: Option::<DemonSpec>::decode(r)?,
            },
            27 => GetGraphDemons {
                context: ContextId::decode(r)?,
                time: Time::decode(r)?,
            },
            28 => SetNodeDemon {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                event: decode_event(r)?,
                demon: Option::<DemonSpec>::decode(r)?,
            },
            29 => GetNodeDemons {
                context: ContextId::decode(r)?,
                node: NodeIndex::decode(r)?,
                time: Time::decode(r)?,
            },
            30 => BeginTransaction,
            31 => CommitTransaction,
            32 => AbortTransaction,
            33 => CreateContext {
                from: ContextId::decode(r)?,
            },
            34 => MergeContext {
                child: ContextId::decode(r)?,
                policy: decode_policy(r)?,
            },
            35 => DestroyContext {
                id: ContextId::decode(r)?,
            },
            36 => ListContexts,
            37 => Checkpoint,
            38 => Ping,
            39 => Verify,
            40 => CacheStats,
            41 => Metrics,
            42 if allow_batch => {
                let count = r.get_u64()? as usize;
                let mut elements = Vec::with_capacity(count.min(r.remaining()));
                for _ in 0..count {
                    elements.push(decode_request(r, false)?);
                }
                Batch(elements)
            }
            44 => FlightDump,
            45 => Trace {
                trace_id: r.get_u64()?,
            },
            46 => ObsControl {
                setting: decode_obs_setting(r)?,
            },
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "Request",
                    tag: tag as u64,
                })
            }
        })
    }
}

/// A [`Request`] plus the optional trace-context extension the server's
/// connection loop decodes.
///
/// Wire compatibility is by construction: an old client's frame starts
/// directly with a `Request` tag and decodes here with `context: None` —
/// the server then originates the trace itself. A new client prefixes the
/// frame with [`TRACE_EXT_TAG`] followed by the context's `(trace_id,
/// span_id)` pair, and the ordinary request after it.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedRequest {
    /// The caller's trace context, when the frame carried one.
    pub context: Option<TraceContext>,
    /// The request itself.
    pub request: Request,
}

impl From<Request> for TracedRequest {
    fn from(request: Request) -> TracedRequest {
        TracedRequest {
            context: None,
            request,
        }
    }
}

impl Encode for TracedRequest {
    fn encode(&self, w: &mut Writer) {
        if let Some(ctx) = &self.context {
            w.put_u8(TRACE_EXT_TAG);
            w.put_u64(ctx.trace_id);
            w.put_u64(ctx.span_id);
        }
        self.request.encode(w);
    }
}

impl Decode for TracedRequest {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        let tag = r.get_u8()?;
        if tag == TRACE_EXT_TAG {
            let trace_id = r.get_u64()?;
            let span_id = r.get_u64()?;
            let inner = r.get_u8()?;
            Ok(TracedRequest {
                context: Some(TraceContext {
                    trace_id,
                    span_id,
                    parent: None,
                }),
                request: decode_request_tag(r, inner, true)?,
            })
        } else {
            Ok(TracedRequest {
                context: None,
                request: decode_request_tag(r, tag, true)?,
            })
        }
    }
}

fn encode_subgraph(sg: &SubGraph, w: &mut Writer) {
    w.put_u64(sg.nodes.len() as u64);
    for (id, values) in &sg.nodes {
        id.encode(w);
        encode_seq(values, w);
    }
    w.put_u64(sg.links.len() as u64);
    for (id, values) in &sg.links {
        id.encode(w);
        encode_seq(values, w);
    }
}

fn decode_subgraph(r: &mut Reader<'_>) -> StorageResult<SubGraph> {
    let node_count = r.get_u64()? as usize;
    let mut nodes = Vec::with_capacity(node_count.min(r.remaining()));
    for _ in 0..node_count {
        let id = NodeIndex::decode(r)?;
        let values: Vec<Option<Value>> = decode_seq(r)?;
        nodes.push((id, values));
    }
    let link_count = r.get_u64()? as usize;
    let mut links = Vec::with_capacity(link_count.min(r.remaining()));
    for _ in 0..link_count {
        let id = LinkIndex::decode(r)?;
        let values: Vec<Option<Value>> = decode_seq(r)?;
        links.push((id, values));
    }
    Ok(SubGraph { nodes, links })
}

fn encode_merge_report(m: &MergeReport, w: &mut Writer) {
    encode_seq(&m.nodes_added, w);
    encode_seq(&m.links_added, w);
    encode_seq(&m.nodes_modified, w);
    w.put_u64(m.attrs_changed as u64);
    encode_seq(&m.nodes_deleted, w);
    encode_seq(&m.links_deleted, w);
    encode_seq(&m.conflicts, w);
}

// TraceRecord/SpanRecord live in neptune-obs, which knows nothing of the
// storage codec (and the orphan rule bars implementing its traits here),
// so the wire form is spelled out with helper functions.
fn encode_span_record(s: &SpanRecord, w: &mut Writer) {
    w.put_u64(s.span_id);
    match s.parent {
        Some(p) => {
            w.put_bool(true);
            w.put_u64(p);
        }
        None => w.put_bool(false),
    }
    w.put_str(&s.name);
    w.put_str(&s.detail);
    w.put_u64(s.start_ns);
    w.put_u64(s.duration_ns);
}

fn decode_span_record(r: &mut Reader<'_>) -> StorageResult<SpanRecord> {
    Ok(SpanRecord {
        span_id: r.get_u64()?,
        parent: if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        },
        name: r.get_str()?.to_owned(),
        detail: r.get_str()?.to_owned(),
        start_ns: r.get_u64()?,
        duration_ns: r.get_u64()?,
    })
}

fn encode_trace_record(t: &TraceRecord, w: &mut Writer) {
    w.put_u64(t.trace_id);
    w.put_str(&t.root_name);
    w.put_str(&t.root_detail);
    w.put_u64(t.total_ns);
    w.put_bool(t.error);
    w.put_u64(t.dropped_spans);
    w.put_u64(t.seq);
    w.put_u64(t.spans.len() as u64);
    for s in &t.spans {
        encode_span_record(s, w);
    }
}

fn decode_trace_record(r: &mut Reader<'_>) -> StorageResult<TraceRecord> {
    let trace_id = r.get_u64()?;
    let root_name = r.get_str()?.to_owned();
    let root_detail = r.get_str()?.to_owned();
    let total_ns = r.get_u64()?;
    let error = r.get_bool()?;
    let dropped_spans = r.get_u64()?;
    let seq = r.get_u64()?;
    let count = r.get_u64()? as usize;
    let mut spans = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        spans.push(decode_span_record(r)?);
    }
    Ok(TraceRecord {
        trace_id,
        root_name,
        root_detail,
        total_ns,
        error,
        dropped_spans,
        seq,
        spans,
    })
}

fn decode_merge_report(r: &mut Reader<'_>) -> StorageResult<MergeReport> {
    Ok(MergeReport {
        nodes_added: decode_seq(r)?,
        links_added: decode_seq(r)?,
        nodes_modified: decode_seq(r)?,
        attrs_changed: r.get_u64()? as usize,
        nodes_deleted: decode_seq(r)?,
        links_deleted: decode_seq(r)?,
        conflicts: decode_seq(r)?,
    })
}

impl Encode for Response {
    fn encode(&self, w: &mut Writer) {
        use Response::*;
        match self {
            Ok => w.put_u8(0),
            NodeCreated(id, t) => {
                w.put_u8(1);
                id.encode(w);
                t.encode(w);
            }
            LinkCreated(id, t) => {
                w.put_u8(2);
                id.encode(w);
                t.encode(w);
            }
            SubGraph(sg) => {
                w.put_u8(3);
                encode_subgraph(sg, w);
            }
            Opened {
                contents,
                link_pts,
                values,
                current_time,
            } => {
                w.put_u8(4);
                // Refcount bump, not a memcpy: the frame writer streams the
                // shared buffer straight to the socket.
                w.put_bytes_shared(contents.clone());
                encode_seq(link_pts, w);
                encode_seq(values, w);
                current_time.encode(w);
            }
            Time(t) => {
                w.put_u8(5);
                t.encode(w);
            }
            Versions(major, minor) => {
                w.put_u8(6);
                encode_seq(major, w);
                encode_seq(minor, w);
            }
            Differences(ds) => {
                w.put_u8(7);
                encode_seq(ds, w);
            }
            NodeAt(id, t) => {
                w.put_u8(8);
                id.encode(w);
                t.encode(w);
            }
            Attributes(items) => {
                w.put_u8(9);
                encode_seq(items, w);
            }
            Values(vs) => {
                w.put_u8(10);
                encode_seq(vs, w);
            }
            AttrIndex(idx) => {
                w.put_u8(11);
                idx.encode(w);
            }
            Value(v) => {
                w.put_u8(12);
                v.encode(w);
            }
            AttrTriples(items) => {
                w.put_u8(13);
                encode_seq(items, w);
            }
            Demons(items) => {
                w.put_u8(14);
                w.put_u64(items.len() as u64);
                for (e, d) in items {
                    encode_event(*e, w);
                    d.encode(w);
                }
            }
            TxnStarted(id) => {
                w.put_u8(15);
                w.put_u64(*id);
            }
            Context(id) => {
                w.put_u8(16);
                id.encode(w);
            }
            Merged(m) => {
                w.put_u8(17);
                encode_merge_report(m, w);
            }
            Contexts(ids) => {
                w.put_u8(18);
                encode_seq(ids, w);
            }
            Error(msg) => {
                w.put_u8(19);
                w.put_str(msg);
            }
            Findings(fs) => {
                w.put_u8(20);
                encode_seq(fs, w);
            }
            CacheStats {
                hits,
                misses,
                entries,
                bytes,
            } => {
                w.put_u8(21);
                w.put_u64(*hits);
                w.put_u64(*misses);
                w.put_u64(*entries);
                w.put_u64(*bytes);
            }
            Metrics(text) => {
                w.put_u8(22);
                w.put_str(text);
            }
            Batch(elements) => {
                w.put_u8(23);
                encode_seq(elements, w);
            }
            Traces(ts) => {
                w.put_u8(24);
                w.put_u64(ts.len() as u64);
                for t in ts {
                    encode_trace_record(t, w);
                }
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> StorageResult<Self> {
        decode_response(r, true)
    }
}

/// [`Response::decode`] body; see [`decode_request`] for the `allow_batch`
/// recursion guard.
fn decode_response(r: &mut Reader<'_>, allow_batch: bool) -> StorageResult<Response> {
    {
        use Response as A;
        Ok(match r.get_u8()? {
            0 => A::Ok,
            1 => A::NodeCreated(NodeIndex::decode(r)?, Time::decode(r)?),
            2 => A::LinkCreated(LinkIndex::decode(r)?, Time::decode(r)?),
            3 => A::SubGraph(decode_subgraph(r)?),
            4 => A::Opened {
                contents: r.get_bytes()?.into(),
                link_pts: decode_seq(r)?,
                values: decode_seq(r)?,
                current_time: Time::decode(r)?,
            },
            5 => A::Time(Time::decode(r)?),
            6 => A::Versions(decode_seq(r)?, decode_seq(r)?),
            7 => A::Differences(decode_seq(r)?),
            8 => A::NodeAt(NodeIndex::decode(r)?, Time::decode(r)?),
            9 => A::Attributes(decode_seq(r)?),
            10 => A::Values(decode_seq(r)?),
            11 => A::AttrIndex(AttributeIndex::decode(r)?),
            12 => A::Value(Value::decode(r)?),
            13 => A::AttrTriples(decode_seq(r)?),
            14 => {
                let count = r.get_u64()? as usize;
                let mut items = Vec::with_capacity(count.min(r.remaining()));
                for _ in 0..count {
                    let e = decode_event(r)?;
                    let d = DemonSpec::decode(r)?;
                    items.push((e, d));
                }
                A::Demons(items)
            }
            15 => A::TxnStarted(r.get_u64()?),
            16 => A::Context(ContextId::decode(r)?),
            17 => A::Merged(decode_merge_report(r)?),
            18 => A::Contexts(decode_seq(r)?),
            19 => A::Error(r.get_str()?.to_owned()),
            20 => A::Findings(decode_seq(r)?),
            21 => A::CacheStats {
                hits: r.get_u64()?,
                misses: r.get_u64()?,
                entries: r.get_u64()?,
                bytes: r.get_u64()?,
            },
            22 => A::Metrics(r.get_str()?.to_owned()),
            23 if allow_batch => {
                let count = r.get_u64()? as usize;
                let mut elements = Vec::with_capacity(count.min(r.remaining()));
                for _ in 0..count {
                    elements.push(decode_response(r, false)?);
                }
                A::Batch(elements)
            }
            24 => {
                let count = r.get_u64()? as usize;
                let mut ts = Vec::with_capacity(count.min(r.remaining()));
                for _ in 0..count {
                    ts.push(decode_trace_record(r)?);
                }
                A::Traces(ts)
            }
            tag => {
                return Err(StorageError::InvalidTag {
                    context: "Response",
                    tag: tag as u64,
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let requests = vec![
            Request::AddNode {
                context: ContextId(0),
                keep_history: true,
            },
            Request::DeleteNode {
                context: ContextId(0),
                node: NodeIndex(3),
            },
            Request::AddLink {
                context: ContextId(1),
                from: LinkPt::current(NodeIndex(1), 5),
                to: LinkPt::pinned(NodeIndex(2), 0, Time(3)),
            },
            Request::LinearizeGraph {
                context: ContextId(0),
                start: NodeIndex(1),
                time: Time(0),
                node_pred: "document = spec".into(),
                link_pred: "true".into(),
                node_attrs: vec![AttributeIndex(0)],
                link_attrs: vec![],
            },
            Request::OpenNode {
                context: ContextId(0),
                node: NodeIndex(1),
                time: Time(7),
                attrs: vec![AttributeIndex(1), AttributeIndex(2)],
            },
            Request::ModifyNode {
                context: ContextId(0),
                node: NodeIndex(1),
                time: Time(7),
                contents: b"body".to_vec(),
                link_pts: vec![LinkPt::current(NodeIndex(1), 3)],
            },
            Request::SetNodeAttributeValue {
                context: ContextId(0),
                node: NodeIndex(1),
                attr: AttributeIndex(0),
                value: Value::str("requirements"),
            },
            Request::SetGraphDemonValue {
                context: ContextId(0),
                event: Event::NodeModified,
                demon: Some(DemonSpec::notify("d", "m")),
            },
            Request::BeginTransaction,
            Request::MergeContext {
                child: ContextId(2),
                policy: ConflictPolicy::PreferChild,
            },
            Request::Ping,
            Request::Verify,
            Request::CacheStats,
            Request::Metrics,
        ];
        for req in requests {
            let decoded = Request::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let responses = vec![
            Response::Ok,
            Response::NodeCreated(NodeIndex(4), Time(9)),
            Response::SubGraph(SubGraph {
                nodes: vec![(NodeIndex(1), vec![Some(Value::str("x")), None])],
                links: vec![(LinkIndex(2), vec![])],
            }),
            Response::Opened {
                contents: b"text"[..].into(),
                link_pts: vec![LinkPt::current(NodeIndex(1), 0)],
                values: vec![None, Some(Value::Int(3))],
                current_time: Time(12),
            },
            Response::Versions(
                vec![Version::new(Time(1), "created")],
                vec![Version::new(Time(2), "attr")],
            ),
            Response::Differences(vec![Difference::Insertion {
                at: 0,
                new_lines: vec![b"x\n".to_vec()],
            }]),
            Response::Attributes(vec![("doc".into(), AttributeIndex(0))]),
            Response::AttrTriples(vec![("doc".into(), AttributeIndex(0), Value::str("v"))]),
            Response::Demons(vec![(Event::NodeAdded, DemonSpec::notify("n", "m"))]),
            Response::Merged(MergeReport {
                nodes_added: vec![(NodeIndex(5), NodeIndex(9))],
                conflicts: vec!["x".into()],
                attrs_changed: 2,
                ..Default::default()
            }),
            Response::Contexts(vec![ContextId(0), ContextId(3)]),
            Response::Error("boom".into()),
            Response::Findings(vec![Finding::new(
                neptune_check::Severity::Error,
                neptune_check::RULE_DELTA_CHAIN,
                "context 0 node 3",
                "delta at time 4 replays to 65 bytes, head holds 64",
            )]),
            Response::Metrics("# TYPE neptune_server_rpc_ns histogram\n".into()),
        ];
        for resp in responses {
            let decoded = Response::from_bytes(&resp.to_bytes()).unwrap();
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn cache_stats_response_roundtrips() {
        let resp = Response::CacheStats {
            hits: 10,
            misses: 3,
            entries: 7,
            bytes: 4096,
        };
        assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
    }

    #[test]
    fn read_only_classification_spot_checks() {
        assert!(Request::Ping.is_read_only());
        assert!(Request::ListContexts.is_read_only());
        assert!(Request::Verify.is_read_only());
        assert!(Request::CacheStats.is_read_only());
        assert!(Request::Metrics.is_read_only());
        assert!(Request::OpenNode {
            context: ContextId(0),
            node: NodeIndex(1),
            time: Time(0),
            attrs: vec![],
        }
        .is_read_only());
        assert!(!Request::BeginTransaction.is_read_only());
        assert!(!Request::Checkpoint.is_read_only());
        // Interns the attribute name on first use: mutating.
        assert!(!Request::GetAttributeIndex {
            context: ContextId(0),
            name: "document".into(),
        }
        .is_read_only());
        assert!(!Request::ModifyNode {
            context: ContextId(0),
            node: NodeIndex(1),
            time: Time(1),
            contents: vec![],
            link_pts: vec![],
        }
        .is_read_only());
    }

    #[test]
    fn batch_roundtrips_and_classifies() {
        let read_batch = Request::Batch(vec![
            Request::Ping,
            Request::OpenNode {
                context: ContextId(0),
                node: NodeIndex(1),
                time: Time(0),
                attrs: vec![AttributeIndex(2)],
            },
            Request::CacheStats,
        ]);
        assert_eq!(
            Request::from_bytes(&read_batch.to_bytes()).unwrap(),
            read_batch
        );
        // A batch is read-only iff every element is.
        assert!(read_batch.is_read_only());
        let write_batch = Request::Batch(vec![
            Request::Ping,
            Request::ModifyNode {
                context: ContextId(0),
                node: NodeIndex(1),
                time: Time(1),
                contents: b"x".to_vec(),
                link_pts: vec![],
            },
        ]);
        assert!(!write_batch.is_read_only());
        assert_eq!(
            Request::from_bytes(&write_batch.to_bytes()).unwrap(),
            write_batch
        );
        assert!(Request::Batch(vec![]).is_read_only());

        let response = Response::Batch(vec![
            Response::Ok,
            Response::Error("nope".into()),
            Response::Time(Time(9)),
        ]);
        assert_eq!(
            Response::from_bytes(&response.to_bytes()).unwrap(),
            response
        );
    }

    #[test]
    fn nested_batches_are_rejected_at_decode() {
        // A nested batch would let a hostile frame drive unbounded decode
        // recursion, so the inner tag is refused while decoding.
        let nested = Request::Batch(vec![Request::Batch(vec![Request::Ping])]);
        assert!(matches!(
            Request::from_bytes(&nested.to_bytes()),
            Err(neptune_storage::StorageError::InvalidTag { .. })
        ));
        let nested = Response::Batch(vec![Response::Batch(vec![Response::Ok])]);
        assert!(matches!(
            Response::from_bytes(&nested.to_bytes()),
            Err(neptune_storage::StorageError::InvalidTag { .. })
        ));
    }

    #[test]
    fn request_names_are_unique() {
        let requests = [
            Request::Ping,
            Request::Metrics,
            Request::CacheStats,
            Request::BeginTransaction,
            Request::AddNode {
                context: ContextId(0),
                keep_history: true,
            },
        ];
        let names: std::collections::BTreeSet<&str> = requests.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), requests.len());
        assert_eq!(Request::Metrics.name(), "Metrics");
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(Request::from_bytes(&[99]).is_err());
        assert!(Response::from_bytes(&[99]).is_err());
        // The trace-extension tag is not a Request tag: a plain decoder
        // (an old server) rejects a prefixed frame rather than misparsing.
        assert!(Request::from_bytes(&[TRACE_EXT_TAG]).is_err());
    }

    #[test]
    fn obs_requests_roundtrip_and_classify() {
        let requests = vec![
            Request::FlightDump,
            Request::Trace { trace_id: 0xdead },
            Request::ObsControl {
                setting: ObsSetting::SlowOpMs(Some(25)),
            },
            Request::ObsControl {
                setting: ObsSetting::SlowOpMs(None),
            },
            Request::ObsControl {
                setting: ObsSetting::Enabled(false),
            },
        ];
        for req in requests {
            let decoded = Request::from_bytes(&req.to_bytes()).unwrap();
            assert_eq!(decoded, req);
            assert!(
                req.is_read_only(),
                "{} must take the shared path",
                req.name()
            );
        }
        assert_eq!(Request::FlightDump.name(), "FlightDump");
        assert_eq!(Request::Trace { trace_id: 1 }.name(), "Trace");
        assert_eq!(
            Request::ObsControl {
                setting: ObsSetting::Enabled(true)
            }
            .name(),
            "ObsControl"
        );
    }

    #[test]
    fn traces_response_roundtrips() {
        let resp = Response::Traces(vec![TraceRecord {
            trace_id: 0xfeed,
            root_name: "server.rpc".into(),
            root_detail: "OpenNode".into(),
            total_ns: 1_234_567,
            error: true,
            dropped_spans: 2,
            seq: 9,
            spans: vec![
                SpanRecord {
                    span_id: 11,
                    parent: None,
                    name: "server.rpc".into(),
                    detail: "OpenNode".into(),
                    start_ns: 0,
                    duration_ns: 1_234_567,
                },
                SpanRecord {
                    span_id: 12,
                    parent: Some(11),
                    name: "view.read_node".into(),
                    detail: "ctx0 node3".into(),
                    start_ns: 400,
                    duration_ns: 1_000_000,
                },
            ],
        }]);
        assert_eq!(Response::from_bytes(&resp.to_bytes()).unwrap(), resp);
        let empty = Response::Traces(vec![]);
        assert_eq!(Response::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn traced_request_roundtrips_and_accepts_legacy_frames() {
        // With a context: the extension prefix rides ahead of the request.
        let traced = TracedRequest {
            context: Some(TraceContext {
                trace_id: 0xaaaa,
                span_id: 0xbbbb,
                parent: None,
            }),
            request: Request::Ping,
        };
        let decoded = TracedRequest::from_bytes(&traced.to_bytes()).unwrap();
        assert_eq!(decoded, traced);

        // Without a context the wire form IS the plain request encoding —
        // byte-identical, so old servers keep accepting new no-context
        // clients too.
        let bare = TracedRequest::from(Request::Metrics);
        assert_eq!(bare.to_bytes(), Request::Metrics.to_bytes());

        // An old client's plain frame decodes with context: None.
        let legacy = Request::OpenNode {
            context: ContextId(0),
            node: NodeIndex(1),
            time: Time(0),
            attrs: vec![],
        };
        let decoded = TracedRequest::from_bytes(&legacy.to_bytes()).unwrap();
        assert_eq!(decoded.context, None);
        assert_eq!(decoded.request, legacy);

        // Batches decode through the traced path as well.
        let traced_batch = TracedRequest {
            context: Some(TraceContext {
                trace_id: 7,
                span_id: 8,
                parent: None,
            }),
            request: Request::Batch(vec![Request::Ping, Request::CacheStats]),
        };
        assert_eq!(
            TracedRequest::from_bytes(&traced_batch.to_bytes()).unwrap(),
            traced_batch
        );
    }
}
