//! Blocking RPC client for the Neptune server.
//!
//! Mirrors the HAM operations over the wire — the role of the Smalltalk
//! user interface process's RPC stubs in the paper (§4.1). One `Client`
//! holds one connection; an explicit transaction gives that connection
//! exclusive write access on the server until commit/abort.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

use neptune_ham::context::{ConflictPolicy, MergeReport};
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::ham::OpenedNode;
use neptune_ham::query::SubGraph;
use neptune_ham::types::{
    AttributeIndex, ContextId, LinkIndex, LinkPt, NodeIndex, Protections, Time, Version,
};
use neptune_ham::value::Value;
use neptune_storage::diff::Difference;

use crate::frame::FrameBuf;
use crate::proto::{ObsSetting, Request, Response, TracedRequest};

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Transport(neptune_storage::StorageError),
    /// The server reported an operation failure.
    Server(String),
    /// The server answered with an unexpected response shape.
    Protocol {
        /// What the client expected.
        expected: &'static str,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol { expected } => {
                write!(f, "protocol error: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<neptune_storage::StorageError> for ClientError {
    fn from(e: neptune_storage::StorageError) -> Self {
        ClientError::Transport(e)
    }
}

/// Result alias for client calls.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connection to a Neptune server.
///
/// The socket is split into a read half and a buffered write half so
/// requests can be pipelined: [`Client::pipeline`] queues N frames, flushes
/// once, then drains N responses — amortizing syscall and round-trip cost.
/// [`Client::batch`] goes further and ships the N requests as one
/// `Request::Batch` frame the server executes under a single lock
/// acquisition.
pub struct Client {
    reader: TcpStream,
    writer: std::io::BufWriter<TcpStream>,
    frames: FrameBuf,
}

/// Maximum requests in flight during [`Client::pipeline`]: enough depth
/// that round-trip latency is fully amortized, small enough that the
/// worst-case response backlog (window × max node contents) stays well
/// inside a default TCP receive buffer — see `pipeline` for the stall
/// this bounds.
pub const PIPELINE_WINDOW: usize = 4;

macro_rules! expect {
    ($self:expr, $req:expr, $pat:pat => $out:expr, $name:literal) => {{
        match $self.call($req)? {
            $pat => Ok($out),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Protocol { expected: $name }),
        }
    }};
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = std::io::BufWriter::new(stream.try_clone()?);
        Ok(Client {
            reader: stream,
            writer,
            frames: FrameBuf::new(),
        })
    }

    /// Send a raw request and wait for the response.
    ///
    /// Every call opens a `client.call` trace scope: if a trace is active
    /// on this thread (a shell command, a test root) the request joins it,
    /// otherwise the call originates its own. The scope's context rides
    /// the wire as the [`TracedRequest`] extension so the server's spans
    /// parent under this client span.
    pub fn call(&mut self, request: Request) -> Result<Response> {
        let mut scope = neptune_obs::wire_scope("client.call", request.name());
        let traced = TracedRequest {
            context: scope.context(),
            request,
        };
        self.frames.write_frame(&mut self.writer, &traced)?;
        let response: Response = self.frames.read_frame(&mut self.reader)?;
        if matches!(response, Response::Error(_)) {
            scope.tag_error();
        }
        Ok(response)
    }

    /// Send several requests as one `Request::Batch` frame.
    ///
    /// The server executes the whole batch under a single gate check and
    /// one HAM lock acquisition, returning per-element results in order
    /// (a failing element yields `Response::Error` in its slot; the rest
    /// still run). The batch takes the shared read path iff every element
    /// is read-only.
    pub fn batch(&mut self, requests: Vec<Request>) -> Result<Vec<Response>> {
        match self.call(Request::Batch(requests))? {
            Response::Batch(responses) => Ok(responses),
            Response::Error(msg) => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Protocol { expected: "Batch" }),
        }
    }

    /// Pipelined mode: keep up to [`PIPELINE_WINDOW`] requests in flight,
    /// draining responses in order and topping the window back up in
    /// half-window chunks (so request writes stay batched).
    ///
    /// Unlike [`Client::batch`], each request is still a separate server
    /// round of gate/lock work — pipelining only removes the
    /// write→wait→read lockstep, keeping requests in flight on the wire.
    ///
    /// The window is bounded because writing *every* request before
    /// reading any response lets the response backlog grow as N × response
    /// size. Once that overruns the client's receive buffer, TCP closes
    /// the window, and reopening it occasionally loses a kernel race and
    /// waits out the ~200ms zero-window persist probe — observed as
    /// intermittent 10x stalls of whole `pipelined/N` bench flights
    /// (EXPERIMENTS.md E11, diagnosed with a causal trace: the server's
    /// `server.rpc` span completes in microseconds mid-flight while
    /// `client.call` waits 200ms+ for the response bytes). Four requests
    /// in flight is empirically stall-free with 16KiB responses (windows
    /// of 8 and 16 were not) and already amortizes the loopback round
    /// trip completely — the bandwidth-delay product here is tiny.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>> {
        // One trace scope per in-flight request (scopes never occupy the
        // thread-local span stack, so several may be open at once); scope
        // i closes — recording the client span and finalizing its trace —
        // as soon as response i is read.
        let mut scopes = std::collections::VecDeque::with_capacity(PIPELINE_WINDOW);
        let mut responses = Vec::with_capacity(requests.len());
        let mut pending = requests.iter();
        loop {
            if scopes.len() <= PIPELINE_WINDOW / 2 {
                let mut queued = false;
                while scopes.len() < PIPELINE_WINDOW {
                    let Some(request) = pending.next() else { break };
                    let scope = neptune_obs::wire_scope("client.call", request.name());
                    let traced = TracedRequest {
                        context: scope.context(),
                        request: request.clone(),
                    };
                    self.frames.queue_frame(&mut self.writer, &traced)?;
                    scopes.push_back(scope);
                    queued = true;
                }
                if queued {
                    std::io::Write::flush(&mut self.writer)
                        .map_err(neptune_storage::StorageError::from)?;
                }
            }
            let Some(mut scope) = scopes.pop_front() else {
                break;
            };
            let response: Response = self.frames.read_frame(&mut self.reader)?;
            if matches!(response, Response::Error(_)) {
                scope.tag_error();
            }
            drop(scope);
            responses.push(response);
        }
        Ok(responses)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        expect!(self, Request::Ping, Response::Ok => (), "Ok")
    }

    /// `addNode`.
    pub fn add_node(
        &mut self,
        context: ContextId,
        keep_history: bool,
    ) -> Result<(NodeIndex, Time)> {
        expect!(self, Request::AddNode { context, keep_history },
            Response::NodeCreated(id, t) => (id, t), "NodeCreated")
    }

    /// `deleteNode`.
    pub fn delete_node(&mut self, context: ContextId, node: NodeIndex) -> Result<()> {
        expect!(self, Request::DeleteNode { context, node }, Response::Ok => (), "Ok")
    }

    /// `addLink`.
    pub fn add_link(
        &mut self,
        context: ContextId,
        from: LinkPt,
        to: LinkPt,
    ) -> Result<(LinkIndex, Time)> {
        expect!(self, Request::AddLink { context, from, to },
            Response::LinkCreated(id, t) => (id, t), "LinkCreated")
    }

    /// `copyLink`.
    pub fn copy_link(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
        keep_source: bool,
        pt: LinkPt,
    ) -> Result<(LinkIndex, Time)> {
        expect!(self, Request::CopyLink { context, link, time, keep_source, pt },
            Response::LinkCreated(id, t) => (id, t), "LinkCreated")
    }

    /// `deleteLink`.
    pub fn delete_link(&mut self, context: ContextId, link: LinkIndex) -> Result<()> {
        expect!(self, Request::DeleteLink { context, link }, Response::Ok => (), "Ok")
    }

    /// `linearizeGraph` with predicate source text.
    #[allow(clippy::too_many_arguments)]
    pub fn linearize_graph(
        &mut self,
        context: ContextId,
        start: NodeIndex,
        time: Time,
        node_pred: &str,
        link_pred: &str,
        node_attrs: Vec<AttributeIndex>,
        link_attrs: Vec<AttributeIndex>,
    ) -> Result<SubGraph> {
        expect!(self, Request::LinearizeGraph {
                context, start, time,
                node_pred: node_pred.to_string(),
                link_pred: link_pred.to_string(),
                node_attrs, link_attrs,
            },
            Response::SubGraph(sg) => sg, "SubGraph")
    }

    /// `getGraphQuery` with predicate source text.
    pub fn get_graph_query(
        &mut self,
        context: ContextId,
        time: Time,
        node_pred: &str,
        link_pred: &str,
        node_attrs: Vec<AttributeIndex>,
        link_attrs: Vec<AttributeIndex>,
    ) -> Result<SubGraph> {
        expect!(self, Request::GetGraphQuery {
                context, time,
                node_pred: node_pred.to_string(),
                link_pred: link_pred.to_string(),
                node_attrs, link_attrs,
            },
            Response::SubGraph(sg) => sg, "SubGraph")
    }

    /// `openNode`.
    pub fn open_node(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        attrs: Vec<AttributeIndex>,
    ) -> Result<OpenedNode> {
        expect!(self, Request::OpenNode { context, node, time, attrs },
            Response::Opened { contents, link_pts, values, current_time } =>
                OpenedNode { contents, link_pts, values, current_time },
            "Opened")
    }

    /// `modifyNode`.
    pub fn modify_node(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
        contents: Vec<u8>,
        link_pts: Vec<LinkPt>,
    ) -> Result<Time> {
        expect!(self, Request::ModifyNode { context, node, time, contents, link_pts },
            Response::Time(t) => t, "Time")
    }

    /// `getNodeTimeStamp`.
    pub fn get_node_time_stamp(&mut self, context: ContextId, node: NodeIndex) -> Result<Time> {
        expect!(self, Request::GetNodeTimeStamp { context, node }, Response::Time(t) => t, "Time")
    }

    /// `changeNodeProtection`.
    pub fn change_node_protection(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        protections: Protections,
    ) -> Result<()> {
        expect!(self, Request::ChangeNodeProtection { context, node, protections },
            Response::Ok => (), "Ok")
    }

    /// `getNodeVersions`.
    pub fn get_node_versions(
        &mut self,
        context: ContextId,
        node: NodeIndex,
    ) -> Result<(Vec<Version>, Vec<Version>)> {
        expect!(self, Request::GetNodeVersions { context, node },
            Response::Versions(major, minor) => (major, minor), "Versions")
    }

    /// `getNodeDifferences`.
    pub fn get_node_differences(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time1: Time,
        time2: Time,
    ) -> Result<Vec<Difference>> {
        expect!(self, Request::GetNodeDifferences { context, node, time1, time2 },
            Response::Differences(ds) => ds, "Differences")
    }

    /// `getToNode`.
    pub fn get_to_node(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<(NodeIndex, Time)> {
        expect!(self, Request::GetToNode { context, link, time },
            Response::NodeAt(n, t) => (n, t), "NodeAt")
    }

    /// `getFromNode`.
    pub fn get_from_node(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<(NodeIndex, Time)> {
        expect!(self, Request::GetFromNode { context, link, time },
            Response::NodeAt(n, t) => (n, t), "NodeAt")
    }

    /// `getAttributes`.
    pub fn get_attributes(
        &mut self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex)>> {
        expect!(self, Request::GetAttributes { context, time },
            Response::Attributes(items) => items, "Attributes")
    }

    /// `getAttributeValues`.
    pub fn get_attribute_values(
        &mut self,
        context: ContextId,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Vec<Value>> {
        expect!(self, Request::GetAttributeValues { context, attr, time },
            Response::Values(vs) => vs, "Values")
    }

    /// `getAttributeIndex`.
    pub fn get_attribute_index(
        &mut self,
        context: ContextId,
        name: &str,
    ) -> Result<AttributeIndex> {
        expect!(self, Request::GetAttributeIndex { context, name: name.to_string() },
            Response::AttrIndex(idx) => idx, "AttrIndex")
    }

    /// `setNodeAttributeValue`.
    pub fn set_node_attribute_value(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<()> {
        expect!(self, Request::SetNodeAttributeValue { context, node, attr, value },
            Response::Ok => (), "Ok")
    }

    /// `deleteNodeAttribute`.
    pub fn delete_node_attribute(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
    ) -> Result<()> {
        expect!(self, Request::DeleteNodeAttribute { context, node, attr },
            Response::Ok => (), "Ok")
    }

    /// `getNodeAttributeValue`.
    pub fn get_node_attribute_value(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        expect!(self, Request::GetNodeAttributeValue { context, node, attr, time },
            Response::Value(v) => v, "Value")
    }

    /// `getNodeAttributes`.
    pub fn get_node_attributes(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        expect!(self, Request::GetNodeAttributes { context, node, time },
            Response::AttrTriples(items) => items, "AttrTriples")
    }

    /// `setLinkAttributeValue`.
    pub fn set_link_attribute_value(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        value: Value,
    ) -> Result<()> {
        expect!(self, Request::SetLinkAttributeValue { context, link, attr, value },
            Response::Ok => (), "Ok")
    }

    /// `deleteLinkAttribute`.
    pub fn delete_link_attribute(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
    ) -> Result<()> {
        expect!(self, Request::DeleteLinkAttribute { context, link, attr },
            Response::Ok => (), "Ok")
    }

    /// `getLinkAttributeValue`.
    pub fn get_link_attribute_value(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        attr: AttributeIndex,
        time: Time,
    ) -> Result<Value> {
        expect!(self, Request::GetLinkAttributeValue { context, link, attr, time },
            Response::Value(v) => v, "Value")
    }

    /// `getLinkAttributes`.
    pub fn get_link_attributes(
        &mut self,
        context: ContextId,
        link: LinkIndex,
        time: Time,
    ) -> Result<Vec<(String, AttributeIndex, Value)>> {
        expect!(self, Request::GetLinkAttributes { context, link, time },
            Response::AttrTriples(items) => items, "AttrTriples")
    }

    /// `setGraphDemonValue`.
    pub fn set_graph_demon_value(
        &mut self,
        context: ContextId,
        event: Event,
        demon: Option<DemonSpec>,
    ) -> Result<()> {
        expect!(self, Request::SetGraphDemonValue { context, event, demon },
            Response::Ok => (), "Ok")
    }

    /// `getGraphDemons`.
    pub fn get_graph_demons(
        &mut self,
        context: ContextId,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        expect!(self, Request::GetGraphDemons { context, time },
            Response::Demons(items) => items, "Demons")
    }

    /// `setNodeDemon`.
    pub fn set_node_demon(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        event: Event,
        demon: Option<DemonSpec>,
    ) -> Result<()> {
        expect!(self, Request::SetNodeDemon { context, node, event, demon },
            Response::Ok => (), "Ok")
    }

    /// `getNodeDemons`.
    pub fn get_node_demons(
        &mut self,
        context: ContextId,
        node: NodeIndex,
        time: Time,
    ) -> Result<Vec<(Event, DemonSpec)>> {
        expect!(self, Request::GetNodeDemons { context, node, time },
            Response::Demons(items) => items, "Demons")
    }

    /// Begin an explicit transaction (exclusive write access until
    /// commit/abort).
    pub fn begin_transaction(&mut self) -> Result<u64> {
        expect!(self, Request::BeginTransaction, Response::TxnStarted(id) => id, "TxnStarted")
    }

    /// Commit this connection's transaction.
    pub fn commit_transaction(&mut self) -> Result<()> {
        expect!(self, Request::CommitTransaction, Response::Ok => (), "Ok")
    }

    /// Abort this connection's transaction.
    pub fn abort_transaction(&mut self) -> Result<()> {
        expect!(self, Request::AbortTransaction, Response::Ok => (), "Ok")
    }

    /// Fork a context.
    pub fn create_context(&mut self, from: ContextId) -> Result<ContextId> {
        expect!(self, Request::CreateContext { from }, Response::Context(id) => id, "Context")
    }

    /// Merge a context into its parent.
    pub fn merge_context(
        &mut self,
        child: ContextId,
        policy: ConflictPolicy,
    ) -> Result<MergeReport> {
        expect!(self, Request::MergeContext { child, policy },
            Response::Merged(m) => m, "Merged")
    }

    /// Discard a context.
    pub fn destroy_context(&mut self, id: ContextId) -> Result<()> {
        expect!(self, Request::DestroyContext { id }, Response::Ok => (), "Ok")
    }

    /// List live contexts.
    pub fn list_contexts(&mut self) -> Result<Vec<ContextId>> {
        expect!(self, Request::ListContexts, Response::Contexts(ids) => ids, "Contexts")
    }

    /// Force a checkpoint on the server.
    pub fn checkpoint(&mut self) -> Result<()> {
        expect!(self, Request::Checkpoint, Response::Ok => (), "Ok")
    }

    /// Run the integrity verifier over the server's store. An empty vector
    /// means the store is clean.
    pub fn verify(&mut self) -> Result<Vec<neptune_check::Finding>> {
        expect!(self, Request::Verify, Response::Findings(fs) => fs, "Findings")
    }

    /// Fetch the server's full metrics registry in Prometheus text
    /// exposition format. [`Client::cache_stats`] remains as a narrower
    /// compatibility call.
    pub fn metrics(&mut self) -> Result<String> {
        expect!(self, Request::Metrics, Response::Metrics(text) => text, "Metrics")
    }

    /// Read the server's version-materialization cache counters as
    /// `(hits, misses, entries, bytes)`.
    pub fn cache_stats(&mut self) -> Result<(u64, u64, u64, u64)> {
        expect!(self, Request::CacheStats,
            Response::CacheStats { hits, misses, entries, bytes } =>
                (hits, misses, entries, bytes),
            "CacheStats")
    }

    /// Snapshot the server's flight recorder: every retained trace
    /// (recent tail plus slow/error traces), oldest first.
    pub fn trace_dump(&mut self) -> Result<Vec<neptune_obs::TraceRecord>> {
        expect!(self, Request::FlightDump, Response::Traces(ts) => ts, "Traces")
    }

    /// Fetch one retained trace from the server by id; `None` once it has
    /// aged out of both recorder rings.
    pub fn trace(&mut self, trace_id: u64) -> Result<Option<neptune_obs::TraceRecord>> {
        expect!(self, Request::Trace { trace_id },
            Response::Traces(ts) => ts.into_iter().next(), "Traces")
    }

    /// Adjust a server observability setting at runtime (slow-op
    /// threshold, instrumentation kill-switch).
    pub fn obs_control(&mut self, setting: ObsSetting) -> Result<()> {
        expect!(self, Request::ObsControl { setting }, Response::Ok => (), "Ok")
    }
}
