//! A small Rust tokenizer, sufficient for syntactic invariant lints.
//!
//! The container this repo builds in has no network access to crates.io, so
//! a full `syn` AST is off the table; the lint rules are instead written
//! against a flat token stream with source positions. The lexer understands
//! everything that would otherwise corrupt a naive scan — nested block
//! comments, raw strings with arbitrary `#` fences, byte/char literals vs.
//! lifetimes — and hands comments to the engine separately so suppression
//! directives can be matched to the lines they govern.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `gate`, `unwrap`, ...).
    Ident,
    /// A string or byte-string literal; `text` holds the *contents*
    /// (fences and quotes stripped) so rules can inspect the value.
    Str,
    /// A character or byte literal.
    Char,
    /// A numeric literal (integer or float, any base).
    Num,
    /// A lifetime (`'a`), including the leading quote in `text`.
    Lifetime,
    /// Punctuation. Multi-character operators that rules care about
    /// (`::`, `=>`, `..`) are fused into one token; everything else is a
    /// single character.
    Punct,
}

/// One token with its source position (1-based line, 1-based column).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A comment with the line it starts on; the engine scans these for
/// `neptune-lint: allow(...)` suppression directives.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lex `source` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder is swallowed) — the linter must never panic on
/// the code it judges, and rustc will reject such a file anyway.
pub fn lex(source: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: Kind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                '"' => self.string(line, col),
                '\'' => self.quote(line, col),
                _ => self.punct(line, col),
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment { text, line });
    }

    /// An identifier — or, when it turns out to be `r"`/`r#"`/`b"`/`br#"`/
    /// `b'`, the prefix of a literal, which is then lexed as such.
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (text.as_str(), self.peek(0)) {
            // Raw strings have no escapes, so they get the fence-aware
            // lexer even with zero `#`s; b"..." keeps escape handling.
            ("r" | "br", Some('"')) => self.raw_string(line, col),
            ("b", Some('"')) => self.string(line, col),
            // r#"..."# — but only when the fence really opens a string, so
            // raw identifiers like r#fn stay identifiers.
            ("r" | "br", Some('#')) if self.fence_opens_string() => self.raw_string(line, col),
            ("b", Some('\'')) => {
                // Byte literal b'x'.
                self.bump();
                self.char_literal(line, col);
            }
            _ => self.push(Kind::Ident, text, line, col),
        }
    }

    /// Whether the `#`s at the cursor are a raw-string fence (i.e. followed
    /// by a `"`), as opposed to a raw identifier like `r#fn`.
    fn fence_opens_string(&self) -> bool {
        let mut i = 0;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Integer part, including radix prefixes and `_` separators; also
        // consumes type suffixes (`0u8`, `0xFFu64`) since those are
        // alphanumeric.
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part only if `.` is followed by a digit — this is
        // what keeps `0..4` lexing as `0`, `..`, `4`.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(Kind::Num, text, line, col);
    }

    fn string(&mut self, line: u32, col: u32) {
        // Positioned at the opening quote (any r/b prefix already consumed).
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(Kind::Str, text, line, col);
    }

    fn raw_string(&mut self, line: u32, col: u32) {
        // Positioned at the first `#` of r#"..."# (prefix consumed).
        let mut fences = 0usize;
        while self.peek(0) == Some('#') {
            fences += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A quote closes the literal only when followed by the
                // full fence.
                for i in 0..fences {
                    if self.peek(1 + i) != Some('#') {
                        text.push(c);
                        self.bump();
                        continue 'outer;
                    }
                }
                self.bump();
                for _ in 0..fences {
                    self.bump();
                }
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(Kind::Str, text, line, col);
    }

    /// A `'` is either a char literal or a lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump();
        match self.peek(0) {
            // '\n' etc.: escapes are always char literals.
            Some('\\') => self.char_literal(line, col),
            // 'x' (closing quote right after one char) is a literal;
            // 'abc / 'static (no closing quote) is a lifetime.
            Some(c) if c.is_alphanumeric() || c == '_' => {
                if self.peek(1) == Some('\'') {
                    self.char_literal(line, col);
                } else {
                    let mut text = String::from("'");
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(Kind::Lifetime, text, line, col);
                }
            }
            // ')' and friends: a one-char literal like '(' .
            Some(_) => self.char_literal(line, col),
            None => {}
        }
    }

    /// Positioned just after the opening quote of a char/byte literal.
    fn char_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '\'' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(Kind::Char, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        let c = self.bump().unwrap_or(' ');
        // Fuse the few multi-char operators rules match on; `..=`/`...`
        // collapse to `..` which is all the rules distinguish.
        let fused = match (c, self.peek(0)) {
            (':', Some(':')) => {
                self.bump();
                "::".to_string()
            }
            ('=', Some('>')) => {
                self.bump();
                "=>".to_string()
            }
            ('.', Some('.')) => {
                self.bump();
                if matches!(self.peek(0), Some('=' | '.')) {
                    self.bump();
                }
                "..".to_string()
            }
            _ => c.to_string(),
        };
        self.push(Kind::Punct, fused, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_paths_and_ranges() {
        let toks = kinds("std::fs::read(x[0..4])");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            vec!["std", "::", "fs", "::", "read", "(", "x", "[", "0", "..", "4", "]", ")"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(c: char) { let x = 'y'; let z = '\\n'; }");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Lifetime && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Char && t == "y"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Char && t == "\\n"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let a = r#"has "quotes" inside"#; let b = b"bytes";"####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Str && t == r#"has "quotes" inside"#));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Str && t == "bytes"));
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let (toks, comments) =
            lex("let a = 1; // neptune-lint: allow(x)\n/* block\n span */ let b = 2;");
        assert!(toks.iter().all(|t| t.kind != Kind::Str));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("neptune-lint"));
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks[0].text, "fn");
    }

    #[test]
    fn positions_are_one_based() {
        let (toks, _) = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn string_with_escaped_quote() {
        let toks = kinds(r#"let s = "a \" b";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Str && t == r#"a \" b"#));
    }
}
