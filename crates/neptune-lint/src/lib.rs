//! # neptune-lint
//!
//! Architecture-enforcing static analysis for the Neptune workspace.
//!
//! PRs 1–5 established hard invariants — all durable I/O flows through
//! `Vfs`, a strict gate→HAM lock hierarchy, panic-free server request
//! paths, metric-name conventions — but until this crate they lived only in
//! prose (DESIGN.md §9/§12) and reviewer memory. `neptune-lint` walks every
//! crate's source as a token stream (see [`lexer`]; the build environment
//! has no crates.io access, so `syn` is not an option) and enforces each
//! invariant as a named, individually suppressable rule. DESIGN.md §13 is
//! the rule catalog.
//!
//! ## Rules
//!
//! | id | scope | invariant |
//! |----|-------|-----------|
//! | `vfs-bypass` | neptune-storage, neptune-ham | no direct `std::fs` / `File::` / `OpenOptions` outside `vfs.rs`/`fault.rs` |
//! | `lock-order` | neptune-server | gate before HAM, never the reverse; no blocking calls under a held HAM guard |
//! | `panic-path` | neptune-server (minus client.rs) | no `unwrap`/`expect`/panic macros/indexing in request-handling code |
//! | `metric-name` | whole workspace | metric literals match `neptune_<crate>_<noun>_<unit>` |
//! | `rpc-histogram` | neptune-server/proto.rs | every `Request` variant keyed to its exact name in `name()` and classified in `is_read_only()` |
//! | `span-parent` | neptune-server/server.rs | the request-scoped trace root (`request_root`) is opened exactly once per request dispatch |
//!
//! ## Suppression
//!
//! A finding is suppressed by a comment on the same line or the line
//! directly above:
//!
//! ```text
//! // neptune-lint: allow(vfs-bypass): durable-image reconstruction is the fault model itself
//! ```
//!
//! `allow-file(rule-id)` anywhere in a file suppresses the rule for the
//! whole file. Suppressions that match no finding are themselves reported
//! (`unused-suppression`), so stale allowances cannot accumulate.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use lexer::{Comment, Kind, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// A single rule violation at a source position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier, e.g. `vfs-bypass`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the linted root.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// One source file prepared for rule passes: lexed, with `#[cfg(test)]`
/// items stripped from the token stream (test code may use `std::fs`,
/// `unwrap`, and friends freely).
pub struct SourceFile {
    /// Crate directory name (`neptune-storage`, ...); the root crate is
    /// `neptune`.
    pub crate_name: String,
    /// File name without directories (`wal.rs`).
    pub file_name: String,
    /// Path relative to the linted root, `/`-separated.
    pub rel_path: String,
    /// Token stream with test-only items removed.
    pub tokens: Vec<Token>,
    /// All comments, including those inside test items.
    pub comments: Vec<Comment>,
}

impl SourceFile {
    /// Lex and prepare one file's source text.
    pub fn parse(crate_name: &str, rel_path: &str, source: &str) -> SourceFile {
        let (tokens, comments) = lexer::lex(source);
        let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path).to_string();
        SourceFile {
            crate_name: crate_name.to_string(),
            file_name,
            rel_path: rel_path.to_string(),
            tokens: strip_cfg_test(tokens),
            comments,
        }
    }
}

/// Remove every item annotated `#[cfg(test)]` (almost always `mod tests {
/// ... }`) from the token stream. The invariants the rules enforce are
/// production-path contracts; tests routinely violate them on purpose
/// (tempdir setup, `unwrap`, direct `std::fs` corruption of stores).
fn strip_cfg_test(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(&tokens, i) {
            // Skip the attribute: # [ cfg ( test ) ]
            i += 7;
            // Skip any further attributes on the same item.
            while tokens.get(i).is_some_and(|t| t.text == "#")
                && tokens.get(i + 1).is_some_and(|t| t.text == "[")
            {
                let mut depth = 0i32;
                i += 1; // at '['
                loop {
                    match tokens.get(i) {
                        Some(t) if t.text == "[" => depth += 1,
                        Some(t) if t.text == "]" => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Skip the item itself: through the matching `}` of its first
            // brace, or through a top-level `;` for brace-less items
            // (`use ...;`, `mod tests;`).
            let mut depth = 0i32;
            while let Some(t) = tokens.get(i) {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let text = |k: usize| tokens.get(i + k).map(|t| t.text.as_str());
    text(0) == Some("#")
        && text(1) == Some("[")
        && text(2) == Some("cfg")
        && text(3) == Some("(")
        && text(4) == Some("test")
        && text(5) == Some(")")
        && text(6) == Some("]")
}

/// A suppression directive parsed from a comment.
struct Suppression {
    rule: String,
    /// Line the directive governs (`allow`: its own line and the next);
    /// `None` for `allow-file`.
    line: Option<u32>,
    used: std::cell::Cell<bool>,
    col: u32,
}

fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        // Directives live in plain `//` comments only; doc comments merely
        // *talk about* the syntax (as this crate's own docs do).
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let Some(idx) = c.text.find("neptune-lint:") else {
            continue;
        };
        let rest = c.text[idx + "neptune-lint:".len()..].trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        for rule in rest[..close].split(',') {
            out.push(Suppression {
                rule: rule.trim().to_string(),
                line: if file_wide { None } else { Some(c.line) },
                used: std::cell::Cell::new(false),
                col: 1,
            });
        }
    }
    out
}

/// Lint every crate under `root` (`crates/*/src/**/*.rs` plus the root
/// crate's `src/`), returning all unsuppressed findings sorted by path and
/// position. Unused suppression directives are reported as findings too.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (crate_name, src_dir) in crate_src_dirs(root)? {
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let source = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let file = SourceFile::parse(&crate_name, &rel, &source);
            findings.extend(lint_file(&file));
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Run every applicable rule over one prepared file and apply suppressions.
pub fn lint_file(file: &SourceFile) -> Vec<Finding> {
    let raw = rules::run_all(file);
    let suppressions = parse_suppressions(&file.comments);
    let mut findings = Vec::new();
    for f in raw {
        let suppressed = suppressions.iter().any(|s| {
            s.rule == f.rule
                && match s.line {
                    None => true,
                    Some(line) => line == f.line || line + 1 == f.line,
                }
        });
        if suppressed {
            for s in &suppressions {
                if s.rule == f.rule
                    && s.line
                        .is_none_or(|line| line == f.line || line + 1 == f.line)
                {
                    s.used.set(true);
                }
            }
        } else {
            findings.push(f);
        }
    }
    for s in &suppressions {
        if !s.used.get() {
            findings.push(Finding {
                rule: "unused-suppression",
                path: file.rel_path.clone(),
                line: s.line.unwrap_or(1),
                col: s.col,
                message: format!("suppression for `{}` matches no finding; remove it", s.rule),
            });
        }
    }
    findings
}

fn crate_src_dirs(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut dirs = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for dir in entries {
            let src = dir.join("src");
            if src.is_dir() {
                let name = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                dirs.push((name, src));
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        dirs.push(("neptune".to_string(), root_src));
    }
    Ok(dirs)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings as a JSON array (hand-rolled; the workspace has no
/// external dependencies, serde included).
pub fn to_json(findings: &[Finding]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}{}\n",
            escape(f.rule),
            escape(&f.path),
            f.line,
            f.col,
            escape(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// Token-stream helpers shared by the rules.
pub(crate) mod tokutil {
    use super::Token;

    /// Text of the token at `i`, or `""` past the end.
    pub fn text(tokens: &[Token], i: usize) -> &str {
        tokens.get(i).map_or("", |t| t.text.as_str())
    }
}
