//! The rule registry. Each rule is a pure function over one prepared
//! [`SourceFile`](crate::SourceFile); scoping (which crates and files a rule
//! applies to) lives with the rule, so the engine stays rule-agnostic.

mod lock_order;
mod metrics;
mod panic_path;
mod parse_path;
mod span_parent;
mod vfs_bypass;

use crate::{Finding, SourceFile};

/// Rule identifiers, in the order rules run. `--list` prints these.
pub const ALL_RULES: &[(&str, &str)] = &[
    (
        "vfs-bypass",
        "no direct std::fs/File/OpenOptions in neptune-storage or neptune-ham outside the Vfs layer (DESIGN.md \u{a7}12: FaultVfs sweeps must cover all durable I/O)",
    ),
    (
        "lock-order",
        "committed view before gate mutex before HAM RwLock, never the reverse; no blocking calls while a HAM guard is held (DESIGN.md \u{a7}9)",
    ),
    (
        "panic-path",
        "no unwrap/expect/panic!/indexing in neptune-server request-handling code; errors must become Response::Error",
    ),
    (
        "parse-path",
        "no unwrap/expect/panic!/indexing inside the decode functions of neptune-storage wal.rs and snapshot.rs; truncated input must become a StorageError, never a panic (DESIGN.md \u{a7}12)",
    ),
    (
        "metric-name",
        "metric name literals match neptune_<crate>_<noun>_<unit> (DESIGN.md \u{a7}10)",
    ),
    (
        "rpc-histogram",
        "every Request variant is keyed to its exact name in Request::name() (the rpc latency histogram key) and classified in is_read_only()",
    ),
    (
        "span-parent",
        "neptune-server/server.rs opens the request-scoped trace root (request_root) exactly once per request dispatch (DESIGN.md \u{a7}10)",
    ),
];

/// Run every rule applicable to `file`.
pub fn run_all(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(vfs_bypass::run(file));
    findings.extend(lock_order::run(file));
    findings.extend(panic_path::run(file));
    findings.extend(parse_path::run(file));
    findings.extend(metrics::run_metric_name(file));
    findings.extend(metrics::run_rpc_histogram(file));
    findings.extend(span_parent::run(file));
    findings
}
