//! `parse-path`: file-decode code in neptune-storage must not be able to
//! panic on truncated or corrupt input.
//!
//! The WAL and snapshot readers face bytes that crashed mid-write or were
//! damaged at rest; DESIGN.md §12 requires such damage to surface as
//! `CorruptLog`/`BadFileHeader`-style errors that recovery and
//! `neptune-check` can classify — a panic instead turns a recoverable torn
//! tail into a crash loop at open. This rule scans the *decode functions*
//! of `wal.rs` and `snapshot.rs` (`scan`, `decode`, `from_tag`, and every
//! `read_*`) for the panic-capable constructs: `.unwrap()`, `.expect(..)`,
//! the panic macro family, and index expressions. Encode paths and the
//! rest of the crate are out of scope — they operate on data the process
//! itself produced.

use crate::tokutil::text;
use crate::{lexer::Token, Finding, Kind, SourceFile};

const SCOPED_FILES: &[&str] = &["wal.rs", "snapshot.rs"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = ...`, `match x { [..] => ... }`).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "as", "move", "break", "continue",
    "where", "dyn", "impl", "fn", "pub", "use", "crate", "self", "Self", "super", "type", "const",
    "static", "enum", "struct", "trait", "mod", "loop", "while", "for", "unsafe", "box", "async",
    "await", "yield",
];

/// Whether `name` names a decode-path function.
fn is_decode_fn(name: &str) -> bool {
    name == "scan" || name == "decode" || name == "from_tag" || name.starts_with("read_")
}

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name != "neptune-storage" || !SCOPED_FILES.contains(&file.file_name.as_str()) {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut findings = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == Kind::Ident && toks[i].text == "fn" {
            let name = text(toks, i + 1).to_string();
            // Scan to the body's opening brace.
            let mut j = i + 2;
            while j < toks.len() && text(toks, j) != "{" {
                j += 1;
            }
            let close = skip_balanced(toks, j);
            if is_decode_fn(&name) {
                check_body(file, toks, j + 1, close.saturating_sub(1), &mut findings);
            }
            i = close;
            continue;
        }
        i += 1;
    }
    findings
}

/// Flag panic-capable constructs in the token range `[start, end)`.
fn check_body(
    file: &SourceFile,
    toks: &[Token],
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
) {
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        let message = match (t.kind, t.text.as_str()) {
            (Kind::Ident, "unwrap")
                if i > start
                    && text(toks, i - 1) == "."
                    && text(toks, i + 1) == "("
                    && text(toks, i + 2) == ")" =>
            {
                Some(
                    "`.unwrap()` can panic on truncated input in a decode path; \
                     return a StorageError (DESIGN.md \u{a7}12)"
                        .to_string(),
                )
            }
            (Kind::Ident, "expect")
                if i > start && text(toks, i - 1) == "." && text(toks, i + 1) == "(" =>
            {
                Some(
                    "`.expect(..)` can panic on truncated input in a decode path; \
                     return a StorageError (DESIGN.md \u{a7}12)"
                        .to_string(),
                )
            }
            (Kind::Ident, m) if PANIC_MACROS.contains(&m) && text(toks, i + 1) == "!" => {
                Some(format!(
                    "`{m}!` can panic in a decode path; corrupt input must become \
                     a StorageError (DESIGN.md \u{a7}12)"
                ))
            }
            (Kind::Punct, "[") if i > start && is_index_base(toks, i - 1) => Some(
                "index expression can panic on truncated input in a decode path; \
                 use `get(..)` or the checked codec readers"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(message) = message {
            findings.push(Finding {
                rule: "parse-path",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    }
}

/// Whether the token before a `[` makes it an index expression (an
/// identifier that is not a keyword, `]`, or `)`).
fn is_index_base(toks: &[Token], prev: usize) -> bool {
    let Some(p) = toks.get(prev) else {
        return false;
    };
    match p.kind {
        Kind::Ident => !NON_INDEX_PRECEDERS.contains(&p.text.as_str()),
        Kind::Punct => p.text == "]" || p.text == ")",
        _ => false,
    }
}

/// Index just past the brace group opened at `open_idx`.
fn skip_balanced(toks: &[Token], open_idx: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open_idx;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}
