//! `vfs-bypass`: all durable I/O in the storage and HAM crates must flow
//! through the `Vfs` trait.
//!
//! PR 5's durability contract (DESIGN.md §12) is proven by `FaultVfs`
//! sweeping a fault across *every* I/O step; a single call site that talks
//! to `std::fs` directly is invisible to the sweep and voids the proof.
//! Only `vfs.rs` (the production passthrough) and `fault.rs` (the fault
//! model itself, which must touch the real filesystem to build its shadow
//! durable image) may name the standard library's file API.

use crate::tokutil::text;
use crate::{Finding, Kind, SourceFile};

const SCOPED_CRATES: &[&str] = &["neptune-storage", "neptune-ham"];
const EXEMPT_FILES: &[&str] = &["vfs.rs", "fault.rs"];

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if !SCOPED_CRATES.contains(&file.crate_name.as_str())
        || EXEMPT_FILES.contains(&file.file_name.as_str())
    {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }
        let offense = match t.text.as_str() {
            // `fs::...` — catches `std::fs::read`, `use std::fs`, and the
            // module used through any alias path ending in `fs`.
            "fs" if text(toks, i + 1) == "::" => Some("`fs::` path"),
            // `File::open(...)` and friends.
            "File" if text(toks, i + 1) == "::" => Some("`File::`"),
            "OpenOptions" => Some("`OpenOptions`"),
            _ => None,
        };
        if let Some(what) = offense {
            findings.push(Finding {
                rule: "vfs-bypass",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{what} bypasses the Vfs layer; route this I/O through `Vfs` \
                     so FaultVfs crash sweeps cover it (DESIGN.md \u{a7}12)"
                ),
            });
        }
    }
    findings
}
