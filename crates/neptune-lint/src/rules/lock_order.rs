//! `lock-order`: the server's lock hierarchy (DESIGN.md §9) is committed
//! view first, then the gate mutex, then the legacy whole-machine HAM
//! lock, then the shard locks in ascending index order — never the
//! reverse — and nothing that can block indefinitely may run while a
//! machine guard is held. A view load sits *below* every lock because the
//! lock-free read path must never develop a blocking dependency: loading
//! a snapshot while holding the gate or a shard lock smuggles the
//! publication slot into a critical section.
//!
//! The pass is a linear scan over the token stream that tracks *live
//! guards*: every syntactic acquisition site (`load_view()`,
//! `load_multi_view()`, `view.load()`, `multi_view()`, `lock_gate()`,
//! `wait_for_gate(...)`, `gate.lock()`, `read_ham()`/`write_ham()`,
//! `ham.read()`/`ham.write()`, `lock_home(...)`/`lock_shard(...)`)
//! records a ranked guard bound to its `let` binding (or to the enclosing
//! statement for temporaries). A guard dies at `drop(name)`, at the end
//! of its statement (temporaries), or when its scope's brace closes. Two
//! violations:
//!
//! * acquiring a rank while a guard of equal or higher rank is live
//!   (e.g. taking the gate while holding a shard — the inversion that
//!   deadlocks against the correct order). Shard-over-shard acquisition
//!   in *ascending index* order is the two-phase cross-shard path and
//!   lives inside neptune-ham, which this server-scoped pass does not
//!   scan; server code holds at most one shard guard, so same-rank shard
//!   re-entry is flagged like any other re-entry;
//! * calling a blocking primitive (condvar waits, sleeps, fsync-shaped
//!   syncs, socket frame I/O) while any HAM or shard guard is live.
//!   Machine *methods* that fsync internally (`checkpoint`,
//!   `commit_transaction`) are the durability barrier and are
//!   intentionally exempt: the contract is about foreign blocking work,
//!   not the machine's own write path.

use crate::tokutil::text;
use crate::{lexer::Token, Finding, Kind, SourceFile};

const RANK_VIEW: u8 = 0;
const RANK_GATE: u8 = 1;
const RANK_HAM: u8 = 2;
const RANK_SHARD: u8 = 3;

const BLOCKING_CALLS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "wait_while",
    "sleep",
    "sync",
    "sync_all",
    "sync_data",
    "fsync",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_frame",
    "write_frame",
    "queue_frame",
    "recv",
    "recv_timeout",
    "join",
    "accept",
];

struct Guard {
    rank: u8,
    depth: i32,
    /// `let` binding the guard lives in; `None` marks a temporary that
    /// dies at the next statement end.
    name: Option<String>,
    line: u32,
    what: &'static str,
}

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name != "neptune-server" {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;

    for i in 0..toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == Kind::Punct => depth += 1,
            "}" if t.kind == Kind::Punct => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            ";" if t.kind == Kind::Punct => {
                guards.retain(|g| !(g.name.is_none() && g.depth >= depth));
            }
            _ => {}
        }

        // drop(name) kills the named guard.
        if t.kind == Kind::Ident
            && t.text == "drop"
            && text(toks, i + 1) == "("
            && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
            && text(toks, i + 3) == ")"
        {
            let name = text(toks, i + 2);
            if let Some(pos) = guards.iter().rposition(|g| g.name.as_deref() == Some(name)) {
                guards.remove(pos);
            }
        }

        let acquired = acquisition(toks, i);
        if let Some((rank, what)) = acquired {
            // A held view is an `Arc` clone, not a lock: two live views
            // never conflict, so same-rank re-entry is flagged only for
            // the real locks.
            if let Some(held) = guards
                .iter()
                .filter(|g| g.rank > rank || (g.rank == rank && rank != RANK_VIEW))
                .max_by_key(|g| g.rank)
            {
                findings.push(Finding {
                    rule: "lock-order",
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "{what} acquired while {} (acquired line {}) is still held; \
                         the hierarchy is view \u{2192} gate \u{2192} HAM \u{2192} \
                         shard[i] ascending, and no lock rank may be re-entered \
                         (DESIGN.md \u{a7}9)",
                        held.what, held.line
                    ),
                });
            }
            guards.push(Guard {
                rank,
                depth,
                name: binding_name(toks, i),
                line: t.line,
                what,
            });
        } else if t.kind == Kind::Ident
            && BLOCKING_CALLS.contains(&t.text.as_str())
            && text(toks, i + 1) == "("
            && text(toks, i.wrapping_sub(1)) != "fn"
        {
            if let Some(held) = guards.iter().find(|g| g.rank >= RANK_HAM) {
                findings.push(Finding {
                    rule: "lock-order",
                    path: file.rel_path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "blocking call `{}` while {} from line {} is held; \
                         blocking under a machine lock starves every writer queued \
                         on that shard (DESIGN.md \u{a7}9)",
                        t.text, held.what, held.line
                    ),
                });
            }
        }
    }
    findings
}

/// Is the token at `i` a lock acquisition? Returns its rank and a label.
fn acquisition(toks: &[Token], i: usize) -> Option<(u8, &'static str)> {
    let t = toks.get(i)?;
    if t.kind != Kind::Ident || text(toks, i + 1) != "(" {
        return None;
    }
    // Definitions (`fn lock_gate(...)`) are not acquisitions.
    if i > 0 && text(toks, i - 1) == "fn" {
        return None;
    }
    let prev_is_dot = i > 0 && text(toks, i - 1) == ".";
    let receiver = if prev_is_dot && i >= 2 {
        text(toks, i - 2)
    } else {
        ""
    };
    match t.text.as_str() {
        "load_view" | "load_multi_view" | "multi_view" => Some((RANK_VIEW, "the committed view")),
        "load" if receiver.contains("view") || receiver.contains("published") => {
            Some((RANK_VIEW, "the committed view"))
        }
        "lock_gate" | "wait_for_gate" => Some((RANK_GATE, "the gate mutex")),
        "lock" if receiver.contains("gate") => Some((RANK_GATE, "the gate mutex")),
        "read_ham" => Some((RANK_HAM, "the HAM read guard")),
        "write_ham" => Some((RANK_HAM, "the HAM write guard")),
        "read" if receiver == "ham" => Some((RANK_HAM, "the HAM read guard")),
        "write" if receiver == "ham" => Some((RANK_HAM, "the HAM write guard")),
        "lock_home" | "lock_shard" => Some((RANK_SHARD, "a shard guard")),
        _ => None,
    }
}

/// The `let` binding a guard acquired at token `i` lives in: scan back to
/// the start of the statement and take the first identifier after `let`
/// (skipping `mut`). `None` means the guard is a temporary.
fn binding_name(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if t.kind == Kind::Ident && t.text == "let" {
            let mut k = j + 1;
            while let Some(n) = toks.get(k) {
                match (n.kind, n.text.as_str()) {
                    (Kind::Ident, "mut") | (Kind::Punct, "(") => k += 1,
                    (Kind::Ident, name) => return Some(name.to_string()),
                    _ => return None,
                }
            }
            return None;
        }
    }
    None
}
