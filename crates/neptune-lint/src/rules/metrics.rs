//! Metrics hygiene, two rules.
//!
//! `metric-name`: every metric-name string literal (anything starting
//! `neptune_`) follows `neptune_<crate>_<noun>_<unit>` (DESIGN.md §10) —
//! the crate segment keeps dashboards groupable by layer, the unit suffix
//! keeps Prometheus semantics readable. Format templates (containing `{`)
//! are skipped: their crate segment is filled at runtime. The
//! `neptune-lint` crate itself is exempt (its sources name the convention
//! in order to check it).
//!
//! `rpc-histogram`: the per-RPC latency histogram family
//! `neptune_server_rpc_ns{op=...}` is keyed by `Request::name()`, so a
//! variant whose `name()` arm returns the wrong string silently splits or
//! merges histogram series — rustc cannot catch that, only the string can
//! be checked. Every variant must also appear in `is_read_only()` (the
//! match is wildcard-free by design; this lint makes the convention
//! machine-checked even if someone adds a `_ =>` arm later).

use crate::tokutil::text;
use crate::{lexer::Token, Finding, Kind, SourceFile};

/// Crate segments allowed in metric names (`neptune_<crate>_...`).
const CRATE_SEGMENTS: &[&str] = &[
    "obs",
    "storage",
    "ham",
    "server",
    "check",
    "case",
    "document",
    "relational",
    "shell",
    "bench",
];

/// Unit suffixes with defined semantics (counters end `_total`, durations
/// `_ns`/`_ms`, sizes `_bytes`, gauges name their unit; `epoch` is a
/// monotonic publication sequence number, e.g. the committed-view epoch).
const UNIT_SEGMENTS: &[&str] = &[
    "total",
    "ns",
    "ms",
    "seconds",
    "bytes",
    "entries",
    "depth",
    "ratio",
    "connections",
    "inflight",
    "epoch",
];

pub fn run_metric_name(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name == "neptune-lint" {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for t in &file.tokens {
        if t.kind != Kind::Str || !t.text.starts_with("neptune_") || t.text.contains('{') {
            continue;
        }
        if let Err(why) = validate_metric_name(&t.text) {
            findings.push(Finding {
                rule: "metric-name",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "metric name `{}` {why}; the convention is \
                     neptune_<crate>_<noun>_<unit> (DESIGN.md \u{a7}10)",
                    t.text
                ),
            });
        }
    }
    findings
}

fn validate_metric_name(name: &str) -> Result<(), String> {
    let segments: Vec<&str> = name.split('_').collect();
    if segments.len() < 4 {
        return Err("is missing segments (crate, noun, and unit are all required)".to_string());
    }
    let crate_seg = segments[1];
    if !CRATE_SEGMENTS.contains(&crate_seg) {
        return Err(format!(
            "has unknown crate segment `{crate_seg}` (expected one of {})",
            CRATE_SEGMENTS.join(", ")
        ));
    }
    let unit = segments[segments.len() - 1];
    if !UNIT_SEGMENTS.contains(&unit) {
        return Err(format!(
            "has unknown unit suffix `{unit}` (expected one of {})",
            UNIT_SEGMENTS.join(", ")
        ));
    }
    Ok(())
}

pub fn run_rpc_histogram(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name != "neptune-server" || file.file_name != "proto.rs" {
        return Vec::new();
    }
    let toks = &file.tokens;
    let Some(variants) = enum_variants(toks, "Request") else {
        return Vec::new();
    };
    let name_arms = fn_match_arms(toks, "name");
    let read_only_idents = fn_body_idents(toks, "is_read_only");
    let mut findings = Vec::new();
    for v in &variants {
        match name_arms.iter().find(|(ident, _, _)| ident == &v.name) {
            None => findings.push(Finding {
                rule: "rpc-histogram",
                path: file.rel_path.clone(),
                line: v.line,
                col: v.col,
                message: format!(
                    "Request::{} has no arm in Request::name(); its rpc latency \
                     histogram (`neptune_server_rpc_ns{{op=..}}`) would never be keyed",
                    v.name
                ),
            }),
            Some((_, s, line)) if s != &v.name => findings.push(Finding {
                rule: "rpc-histogram",
                path: file.rel_path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "Request::{} is keyed as \"{s}\" in Request::name(); the histogram \
                     op label must match the variant name exactly",
                    v.name
                ),
            }),
            _ => {}
        }
        if !read_only_idents.iter().any(|i| i == &v.name) {
            findings.push(Finding {
                rule: "rpc-histogram",
                path: file.rel_path.clone(),
                line: v.line,
                col: v.col,
                message: format!(
                    "Request::{} is not classified in Request::is_read_only(); every \
                     variant needs an explicit read/write decision (DESIGN.md \u{a7}9)",
                    v.name
                ),
            });
        }
    }
    findings
}

struct Variant {
    name: String,
    line: u32,
    col: u32,
}

/// The variants of `enum <name> { ... }`, skipping payloads and attributes.
fn enum_variants(toks: &[Token], name: &str) -> Option<Vec<Variant>> {
    let mut i = 0;
    // Find `enum <name> {`.
    loop {
        if i >= toks.len() {
            return None;
        }
        if toks[i].kind == Kind::Ident
            && toks[i].text == "enum"
            && text(toks, i + 1) == name
            && text(toks, i + 2) == "{"
        {
            i += 3;
            break;
        }
        i += 1;
    }
    let mut variants = Vec::new();
    let mut expecting_variant = true;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (Kind::Punct, "}") => break,
            // Attributes on a variant.
            (Kind::Punct, "#") if text(toks, i + 1) == "[" => {
                i = skip_balanced(toks, i + 1, "[", "]");
                continue;
            }
            (Kind::Ident, _) if expecting_variant => {
                variants.push(Variant {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                expecting_variant = false;
                i += 1;
                // Skip the payload.
                match text(toks, i) {
                    "{" => i = skip_balanced(toks, i, "{", "}"),
                    "(" => i = skip_balanced(toks, i, "(", ")"),
                    _ => {}
                }
            }
            (Kind::Punct, ",") => {
                expecting_variant = true;
                i += 1;
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// Arms of the match inside `fn <name>`: `(variant_ident, string, line)`.
fn fn_match_arms(toks: &[Token], fn_name: &str) -> Vec<(String, String, u32)> {
    let Some((start, end)) = fn_body(toks, fn_name) else {
        return Vec::new();
    };
    let mut arms = Vec::new();
    let mut i = start;
    while i < end {
        // `Ident [{ .. } | (..)] => "str"` — also tolerates a leading
        // `Request ::` path qualifier.
        if toks[i].kind == Kind::Ident {
            let ident = toks[i].text.clone();
            let mut j = i + 1;
            match text(toks, j) {
                "{" => j = skip_balanced(toks, j, "{", "}"),
                "(" => j = skip_balanced(toks, j, "(", ")"),
                _ => {}
            }
            if text(toks, j) == "=>" && toks.get(j + 1).is_some_and(|t| t.kind == Kind::Str) {
                arms.push((ident, toks[j + 1].text.clone(), toks[j + 1].line));
                i = j + 2;
                continue;
            }
        }
        i += 1;
    }
    arms
}

/// All identifiers appearing in the body of `fn <name>`.
fn fn_body_idents(toks: &[Token], fn_name: &str) -> Vec<String> {
    let Some((start, end)) = fn_body(toks, fn_name) else {
        return Vec::new();
    };
    toks[start..end]
        .iter()
        .filter(|t| t.kind == Kind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Token range of the `{ ... }` body of `fn <name>` (exclusive of braces).
fn fn_body(toks: &[Token], fn_name: &str) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == Kind::Ident && toks[i].text == "fn" && text(toks, i + 1) == fn_name {
            // Scan to the opening brace of the body.
            let mut j = i + 2;
            while j < toks.len() && text(toks, j) != "{" {
                j += 1;
            }
            let close = skip_balanced(toks, j, "{", "}");
            return Some((j + 1, close.saturating_sub(1)));
        }
        i += 1;
    }
    None
}

/// Index just past the group opened at `open_idx` (which must hold `open`).
fn skip_balanced(toks: &[Token], open_idx: usize, open: &str, close: &str) -> usize {
    let mut depth = 0i32;
    let mut i = open_idx;
    while i < toks.len() {
        let t = &toks[i].text;
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}
