//! `span-parent`: the server creates the request-scoped root span exactly
//! once per request.
//!
//! The causal trace tree (DESIGN.md §10) hangs every server-side span off
//! one `request_root` guard created at the top of `execute` — it adopts the
//! client's wire context (or originates a trace when there is none) and its
//! drop order against the response write is what guarantees an in-process
//! client sees the server's spans. A second call site would open a second
//! root for the same request (splitting the tree and double-counting the
//! RPC); zero call sites would silently detach every `span!` below the
//! dispatch layer into per-thread orphan traces. Both regress silently —
//! tests that look at *a* trace still pass — so the invariant is pinned
//! here: `neptune-server/src/server.rs` mentions `request_root` exactly
//! once outside of tests and comments.

use crate::{Finding, Kind, SourceFile};

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name != "neptune-server" || file.file_name != "server.rs" {
        return Vec::new();
    }
    let sites: Vec<_> = file
        .tokens
        .iter()
        .filter(|t| t.kind == Kind::Ident && t.text == "request_root")
        .collect();
    match sites.as_slice() {
        [] => vec![Finding {
            rule: "span-parent",
            path: file.rel_path.clone(),
            line: 1,
            col: 1,
            message: "server.rs never calls `request_root`: RPC dispatch must open the \
                      request-scoped trace root exactly once, before executing the request \
                      (DESIGN.md \u{a7}10)"
                .to_string(),
        }],
        [_one] => Vec::new(),
        [_first, extras @ ..] => extras
            .iter()
            .map(|t| Finding {
                rule: "span-parent",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: "second `request_root` call site: a request must have exactly one \
                          server-side trace root or its span tree splits (DESIGN.md \u{a7}10)"
                    .to_string(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use crate::SourceFile;

    #[test]
    fn missing_root_is_reported_at_file_top() {
        let file = SourceFile::parse(
            "neptune-server",
            "crates/neptune-server/src/server.rs",
            "pub fn execute() {}\n",
        );
        let findings = super::run(&file);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("never calls"));
    }

    #[test]
    fn a_root_only_in_tests_still_counts_as_missing() {
        let file = SourceFile::parse(
            "neptune-server",
            "crates/neptune-server/src/server.rs",
            "pub fn execute() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let _r = request_root(None, \"x\"); }\n\
             }\n",
        );
        assert_eq!(super::run(&file).len(), 1);
    }

    #[test]
    fn comments_naming_the_function_do_not_count() {
        let file = SourceFile::parse(
            "neptune-server",
            "crates/neptune-server/src/server.rs",
            "// request_root is discussed here but the real call is below\n\
             pub fn execute() { let _r = request_root(None, \"x\"); }\n",
        );
        assert!(super::run(&file).is_empty());
    }

    #[test]
    fn other_files_and_crates_are_out_of_scope() {
        let client = SourceFile::parse(
            "neptune-server",
            "crates/neptune-server/src/client.rs",
            "pub fn call() {}\n",
        );
        assert!(super::run(&client).is_empty());
        let elsewhere = SourceFile::parse(
            "neptune-obs",
            "crates/neptune-obs/src/server.rs",
            "pub fn serve() {}\n",
        );
        assert!(super::run(&elsewhere).is_empty());
    }
}
