//! `panic-path`: server request-handling code must not be able to panic.
//!
//! A panic in a connection thread aborts that client's transaction (the
//! `ConnGuard` unwinds correctly), but it also poisons shared locks, costs
//! an unwind per malformed request, and converts a protocol-level problem
//! into a silent disconnect instead of a `Response::Error` the client can
//! read. Everything reachable from request handling — `server.rs`
//! dispatch, `proto.rs` wire decoding (which faces untrusted bytes), and
//! `frame.rs` framing — must surface failures as values. `client.rs` runs
//! on the client's side of the socket and is exempt.
//!
//! Flagged: `.unwrap()`, `.expect(...)`, the panic macro family
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert*!`), and
//! index expressions (`buf[i]`, `&bytes[a..b]`), which panic on
//! out-of-range input — exactly what untrusted frames provide. Use
//! `get(..)`, array-pattern destructuring, or checked decoding instead.

use crate::tokutil::text;
use crate::{Finding, Kind, SourceFile};

const EXEMPT_FILES: &[&str] = &["client.rs"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = ...`, `match x { [..] => ... }`).
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "as", "move", "break", "continue",
    "where", "dyn", "impl", "fn", "pub", "use", "crate", "self", "Self", "super", "type", "const",
    "static", "enum", "struct", "trait", "mod", "loop", "while", "for", "unsafe", "box", "async",
    "await", "yield",
];

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if file.crate_name != "neptune-server" || EXEMPT_FILES.contains(&file.file_name.as_str()) {
        return Vec::new();
    }
    let toks = &file.tokens;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let message = match (t.kind, t.text.as_str()) {
            (Kind::Ident, "unwrap")
                if i > 0
                    && text(toks, i - 1) == "."
                    && text(toks, i + 1) == "("
                    && text(toks, i + 2) == ")" =>
            {
                Some("`.unwrap()` can panic on a request path; surface the error as `Response::Error`".to_string())
            }
            (Kind::Ident, "expect") if i > 0 && text(toks, i - 1) == "." && text(toks, i + 1) == "(" => {
                Some("`.expect(..)` can panic on a request path; surface the error as `Response::Error`".to_string())
            }
            (Kind::Ident, m) if PANIC_MACROS.contains(&m) && text(toks, i + 1) == "!" => {
                Some(format!(
                    "`{m}!` can panic on a request path; return an error value instead"
                ))
            }
            (Kind::Punct, "[") if i > 0 && is_index_base(toks, i - 1) => Some(
                "index expression can panic on out-of-range input; use `get(..)` or \
                 array-pattern destructuring"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(message) = message {
            findings.push(Finding {
                rule: "panic-path",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message,
            });
        }
    }
    findings
}

/// Whether the token before a `[` makes it an index expression: an
/// identifier (that is not a keyword), a closing bracket, or a closing
/// paren. `#[attr]`, `vec![..]`, `&[u8]`, `<[u8]>`, and `= [0; 8]` all
/// have other preceders.
fn is_index_base(toks: &[crate::lexer::Token], prev: usize) -> bool {
    let Some(p) = toks.get(prev) else {
        return false;
    };
    match p.kind {
        Kind::Ident => !NON_INDEX_PRECEDERS.contains(&p.text.as_str()),
        Kind::Punct => p.text == "]" || p.text == ")",
        _ => false,
    }
}
