//! `cargo run -p neptune-lint` — lint the workspace, exit nonzero on
//! findings.
//!
//! ```text
//! neptune-lint [--root <dir>] [--json] [--list]
//! ```
//!
//! `--root` defaults to the nearest ancestor of the current directory that
//! contains a `crates/` directory (so the tool works from any subdirectory
//! of the workspace). `--json` emits a machine-readable findings array on
//! stdout; the human format is `path:line:col: [rule] message`, one per
//! line, clickable in most terminals.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Print to stdout, tolerating a closed pipe (`neptune-lint | head`): the
/// findings already printed are the answer, not a reason to panic.
fn out(line: std::fmt::Arguments<'_>) {
    let _ = writeln!(std::io::stdout(), "{line}");
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => {
                for (id, description) in neptune_lint::rules::ALL_RULES {
                    out(format_args!("{id}: {description}"));
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (expected --root <dir>, --json, --list)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("no workspace root found (no ancestor contains crates/); pass --root");
            return ExitCode::from(2);
        }
    };

    let findings = match neptune_lint::lint_root(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("neptune-lint: I/O error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        out(format_args!("{}", neptune_lint::to_json(&findings)));
    } else {
        for f in &findings {
            out(format_args!("{f}"));
        }
        if findings.is_empty() {
            eprintln!(
                "neptune-lint: workspace clean ({} rules)",
                neptune_lint::rules::ALL_RULES.len()
            );
        } else {
            eprintln!(
                "neptune-lint: {} finding{} — suppress a deliberate exception with \
                 `// neptune-lint: allow(<rule>): <reason>` (DESIGN.md \u{a7}13)",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The nearest ancestor of the current directory containing `crates/`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
