//! Fixture-driven proof that every rule family fires — and only where it
//! should.
//!
//! `tests/fixtures/violations/` is a miniature workspace where each rule
//! has at least one deliberate violation at a known line; the test pins the
//! exact `(rule, path, line)` set, so a rule that silently stops firing (or
//! starts over-firing) fails here, not in review. `tests/fixtures/clean/`
//! exercises every way a finding is legitimately absent: exempt files
//! (`vfs.rs`, `client.rs`), `#[cfg(test)]` stripping, inline suppressions,
//! and plain conforming code. The final test lints the real workspace,
//! keeping the tree clean by construction.

use std::path::{Path, PathBuf};

use neptune_lint::lint_root;

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violating_fixture_fires_every_rule_family() {
    let findings = lint_root(&fixture_root("violations")).expect("fixture tree readable");
    let mut got: Vec<(String, String, u32)> = findings
        .iter()
        .map(|f| (f.rule.to_string(), f.path.clone(), f.line))
        .collect();
    got.sort();
    let mut expected: Vec<(String, String, u32)> = [
        // bad_metrics.rs: too few segments, unknown unit, unknown crate —
        // plus a directive that suppresses nothing.
        ("metric-name", "crates/neptune-obs/src/bad_metrics.rs", 3),
        ("metric-name", "crates/neptune-obs/src/bad_metrics.rs", 4),
        ("metric-name", "crates/neptune-obs/src/bad_metrics.rs", 5),
        (
            "unused-suppression",
            "crates/neptune-obs/src/bad_metrics.rs",
            7,
        ),
        // bad_handler.rs: indexing, unwrap, unreachable!, expect + indexing.
        ("panic-path", "crates/neptune-server/src/bad_handler.rs", 4),
        ("panic-path", "crates/neptune-server/src/bad_handler.rs", 9),
        ("panic-path", "crates/neptune-server/src/bad_handler.rs", 16),
        ("panic-path", "crates/neptune-server/src/bad_handler.rs", 21),
        ("panic-path", "crates/neptune-server/src/bad_handler.rs", 21),
        // bad_order.rs: gate-after-HAM inversion, blocking sleep under a
        // read guard, same-rank re-entry, and a view loaded under the gate
        // and under the HAM lock (views rank below both).
        ("lock-order", "crates/neptune-server/src/bad_order.rs", 5),
        ("lock-order", "crates/neptune-server/src/bad_order.rs", 12),
        ("lock-order", "crates/neptune-server/src/bad_order.rs", 18),
        ("lock-order", "crates/neptune-server/src/bad_order.rs", 25),
        ("lock-order", "crates/neptune-server/src/bad_order.rs", 32),
        // proto.rs: Shutdown has no name() arm and no read/write
        // classification (both reported at the variant, line 6); GetNode is
        // keyed "get_node" (reported at the arm's string, line 13).
        ("rpc-histogram", "crates/neptune-server/src/proto.rs", 6),
        ("rpc-histogram", "crates/neptune-server/src/proto.rs", 6),
        ("rpc-histogram", "crates/neptune-server/src/proto.rs", 13),
        // server.rs: a duplicate request_root call site (the extra one is
        // reported; the first is the legitimate root).
        ("span-parent", "crates/neptune-server/src/server.rs", 5),
        // bad_io.rs: `fs::write`, then `std::fs::File::open` (both the
        // `fs::` path and `File::` are reported).
        ("vfs-bypass", "crates/neptune-storage/src/bad_io.rs", 6),
        ("vfs-bypass", "crates/neptune-storage/src/bad_io.rs", 10),
        ("vfs-bypass", "crates/neptune-storage/src/bad_io.rs", 10),
        // wal.rs: decode fns with indexing + expect (both on line 4),
        // unreachable! in from_tag, unwrap in read_magic; the assert! in
        // encode() is deliberately out of the rule's scope.
        ("parse-path", "crates/neptune-storage/src/wal.rs", 4),
        ("parse-path", "crates/neptune-storage/src/wal.rs", 4),
        ("parse-path", "crates/neptune-storage/src/wal.rs", 11),
        ("parse-path", "crates/neptune-storage/src/wal.rs", 16),
    ]
    .iter()
    .map(|(r, p, l)| (r.to_string(), p.to_string(), *l))
    .collect();
    expected.sort();
    assert_eq!(
        got, expected,
        "fixture findings drifted; update the fixture or the rule"
    );
}

#[test]
fn clean_fixture_produces_no_findings() {
    let findings = lint_root(&fixture_root("clean")).expect("fixture tree readable");
    assert!(
        findings.is_empty(),
        "clean fixture should lint clean, got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_self_check_is_clean() {
    // crates/neptune-lint/../.. is the real workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolvable");
    let findings = lint_root(&root).expect("workspace readable");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean (suppress intentional exceptions \
         with `// neptune-lint: allow(rule): reason`), got:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
