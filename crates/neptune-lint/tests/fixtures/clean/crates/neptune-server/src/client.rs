//! Fixture: client-side code is exempt from panic-path.

pub fn connect(addr: &str) -> std::net::TcpStream {
    std::net::TcpStream::connect(addr).unwrap()
}
