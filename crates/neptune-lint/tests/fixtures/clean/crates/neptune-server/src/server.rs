//! span-parent: exactly one request-scoped root per dispatch lints clean,
//! including when tests open extra roots (stripped before the count).

pub fn execute(context: Option<u64>, op: &str) {
    let root = neptune_obs::trace_tree::request_root(context, op);
    respond(op);
    drop(root);
}

fn respond(_op: &str) {}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_open_their_own_roots() {
        let extra = request_root(None, "TestOnly");
        drop(extra);
    }
}
