//! Fixture: the canonical view → gate → HAM sequence.

pub fn ordered(shared: &Shared) {
    let gate = shared.lock_gate();
    let ham = shared.write_ham();
    drop(gate);
    process(&ham);
    drop(ham);
}

pub fn lock_free_read_then_exclusive(shared: &Shared) {
    // Views sit below every lock: loading one first (or several — a view
    // is an Arc clone, not a lock) never conflicts with taking the gate.
    let view = shared.load_view();
    let again = shared.load_view();
    let gate = shared.lock_gate();
    let ham = shared.write_ham();
    drop(ham);
    drop(gate);
    process(&view);
    drop(again);
}
