//! Fixture: the canonical gate → HAM sequence.

pub fn ordered(shared: &Shared) {
    let gate = shared.lock_gate();
    let ham = shared.write_ham();
    drop(gate);
    process(&ham);
    drop(ham);
}
