//! Fixture: correctly keyed Request enum.

pub enum Request {
    Ping,
    GetNode(u64),
}

impl Request {
    pub fn name(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::GetNode(_) => "GetNode",
        }
    }

    pub fn is_read_only(&self) -> bool {
        matches!(self, Request::Ping | Request::GetNode(_))
    }
}
