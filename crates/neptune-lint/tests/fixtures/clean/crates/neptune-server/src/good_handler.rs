//! Fixture: request-path error handling without panics.

pub fn decode(buf: &[u8]) -> Result<u8, String> {
    match buf.first() {
        Some(b) => Ok(*b),
        None => Err("empty frame".to_string()),
    }
}
