//! Fixture: test-only code may use std::fs freely.

pub fn production_metric() -> &'static str {
    "neptune_storage_wal_bytes"
}

#[cfg(test)]
mod tests {
    use std::fs;

    #[test]
    fn scratch() {
        fs::write("scratch", b"x").unwrap();
    }
}
