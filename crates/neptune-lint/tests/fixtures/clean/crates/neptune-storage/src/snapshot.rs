//! parse-path clean fixture: checked decoding — `get(..)`, `?`, and array
//! patterns instead of indexing and unwraps.

pub fn read_header(bytes: &[u8]) -> Option<(u64, u32)> {
    let len = u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?);
    let crc = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?);
    Some((len, crc))
}

pub fn decode(bytes: &[u8]) -> Option<u8> {
    let [tag, ..] = bytes else { return None };
    Some(*tag)
}
