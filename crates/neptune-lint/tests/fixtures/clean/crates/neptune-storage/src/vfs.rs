//! Fixture: vfs.rs is the sanctioned std::fs passthrough.

use std::fs::{File, OpenOptions};

pub fn open(path: &std::path::Path) -> std::io::Result<File> {
    OpenOptions::new().read(true).open(path)
}
