//! Fixture: a justified, suppressed direct-I/O call.

pub fn probe(path: &std::path::Path) -> bool {
    // neptune-lint: allow(vfs-bypass): existence probe for diagnostics only
    std::fs::metadata(path).is_ok()
}
