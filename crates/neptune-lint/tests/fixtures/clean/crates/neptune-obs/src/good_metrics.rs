//! Fixture: conforming metric names and runtime templates.

pub const RPC: &str = "neptune_server_rpc_ns";
pub const TEMPLATE: &str = "neptune_{layer}_op_ns";
