//! Fixture: panicking constructs on the request path.

pub fn decode(buf: &[u8]) -> u8 {
    let first = buf[0];
    first
}

pub fn lookup(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap()
}

pub fn classify(kind: u8) -> &'static str {
    match kind {
        0 => "read",
        1 => "write",
        _ => unreachable!(),
    }
}

pub fn header(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"))
}
