//! span-parent: a second server-side trace root for the same request.

pub fn execute(context: Option<u64>) {
    let root = request_root(context, "Ping");
    let duplicate = request_root(context, "Ping");
    drop(duplicate);
    drop(root);
}
