//! Fixture: lock-hierarchy violations (DESIGN.md §9).

pub fn inverted(shared: &Shared) {
    let ham = shared.write_ham();
    let gate = shared.lock_gate();
    drop(gate);
    drop(ham);
}

pub fn blocking_under_ham(shared: &Shared) {
    let ham = shared.read_ham();
    std::thread::sleep(core::time::Duration::from_millis(1));
    drop(ham);
}

pub fn reentrant(shared: &Shared) {
    let first = shared.read_ham();
    let second = shared.read_ham();
    drop(second);
    drop(first);
}

pub fn view_under_gate(shared: &Shared) {
    let gate = shared.lock_gate();
    let view = shared.load_view();
    drop(view);
    drop(gate);
}

pub fn view_under_ham(shared: &Shared) {
    let ham = shared.write_ham();
    let view = shared.published_view.load();
    drop(view);
    drop(ham);
}
