//! Fixture: lock-hierarchy violations (DESIGN.md §9).

pub fn inverted(shared: &Shared) {
    let ham = shared.write_ham();
    let gate = shared.lock_gate();
    drop(gate);
    drop(ham);
}

pub fn blocking_under_ham(shared: &Shared) {
    let ham = shared.read_ham();
    std::thread::sleep(core::time::Duration::from_millis(1));
    drop(ham);
}

pub fn reentrant(shared: &Shared) {
    let first = shared.read_ham();
    let second = shared.read_ham();
    drop(second);
    drop(first);
}
