//! Fixture: Request variants with broken histogram keying.

pub enum Request {
    Ping,
    GetNode(u64),
    Shutdown,
}

impl Request {
    pub fn name(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::GetNode(_) => "get_node",
        }
    }

    pub fn is_read_only(&self) -> bool {
        matches!(self, Request::Ping | Request::GetNode(_))
    }
}
