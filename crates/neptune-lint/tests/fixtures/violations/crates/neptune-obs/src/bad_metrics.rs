//! Fixture: metric-name convention violations.

pub const SPAN: &str = "neptune_span_ns";
pub const FLUSH: &str = "neptune_storage_wal_flushcount";
pub const BOGUS: &str = "neptune_bogus_thing_total";

// neptune-lint: allow(metric-name): nothing on the next line violates
pub const OK: &str = "neptune_obs_span_ns";
