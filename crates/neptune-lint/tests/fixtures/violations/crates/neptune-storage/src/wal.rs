//! parse-path violations: panic-capable constructs inside decode functions.

pub fn decode(bytes: &[u8]) -> u32 {
    let len = bytes[0..4].try_into().expect("length prefix");
    u32::from_le_bytes(len)
}

pub fn from_tag(tag: u8) -> u8 {
    match tag {
        0 => 0,
        _ => unreachable!("bad tag"),
    }
}

pub fn read_magic(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}

// Encode paths are out of scope: assertions on self-produced data are fine.
pub fn encode(value: u32) -> Vec<u8> {
    let out = value.to_le_bytes().to_vec();
    assert!(out.len() == 4);
    out
}
