//! Fixture: direct std::fs access outside vfs.rs.

use std::fs;

pub fn side_channel(path: &std::path::Path, bytes: &[u8]) {
    let _ = fs::write(path, bytes);
}

pub fn reopen(path: &std::path::Path) {
    let _ = std::fs::File::open(path);
}
