//! The `annotate` command.
//!
//! Paper §4.1: *"There are special commands that bundle together several
//! primitive hypertext operations into a single transaction. For example,
//! an annotate command creates a new node, creates a link from the current
//! cursor position to the new node, attaches attribute values that
//! distinguish the new node and link as an annotation and finally, opens a
//! browser on the new annotation node."*

use neptune_ham::types::{ContextId, LinkIndex, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Result};

use crate::conventions::{ANNOTATES, ICON, RELATION};

/// The objects an [`annotate`] call creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Annotation {
    /// The new annotation node.
    pub node: NodeIndex,
    /// The link from the annotated position to the annotation.
    pub link: LinkIndex,
}

/// Attach an annotation at byte offset `cursor` inside `target`: one
/// transaction creating the node, the link, and the distinguishing
/// attributes (`relation = annotates` on the link, an `icon` on the node).
pub fn annotate(
    ham: &mut Ham,
    context: ContextId,
    target: NodeIndex,
    cursor: u64,
    text: &str,
) -> Result<Annotation> {
    ham.begin_transaction()?;
    let result = (|| {
        let (node, t) = ham.add_node(context, true)?;
        ham.modify_node(context, node, t, text.as_bytes().to_vec(), &[])?;
        let (link, _) = ham.add_link(
            context,
            LinkPt::current(target, cursor),
            LinkPt::current(node, 0),
        )?;
        let rel = ham.get_attribute_index(context, RELATION)?;
        ham.set_link_attribute_value(context, link, rel, Value::str(ANNOTATES))?;
        let icon = ham.get_attribute_index(context, ICON)?;
        let label: String = text
            .lines()
            .next()
            .unwrap_or("annotation")
            .chars()
            .take(24)
            .collect();
        ham.set_node_attribute_value(context, node, icon, Value::str(label))?;
        Ok(Annotation { node, link })
    })();
    match result {
        Ok(a) => {
            ham.commit_transaction()?;
            Ok(a)
        }
        Err(e) => {
            let _ = ham.abort_transaction();
            Err(e)
        }
    }
}

/// All annotations attached to `target` at `time`, in offset order.
pub fn annotations_of(
    ham: &Ham,
    context: ContextId,
    target: NodeIndex,
    time: Time,
) -> Result<Vec<(u64, Annotation)>> {
    let graph = ham.graph(context)?;
    let rel = graph.attr_table.lookup(RELATION);
    let node = graph.node(target)?;
    let mut out = Vec::new();
    for &link_id in &node.incident_links {
        let link = graph.link(link_id)?;
        if link.from.node != target || !link.exists_at(time) {
            continue;
        }
        let is_annotation = rel
            .and_then(|attr| link.attrs.get(attr, time))
            .map(|v| *v == Value::str(ANNOTATES))
            .unwrap_or(false);
        if !is_annotation {
            continue;
        }
        if let Some(offset) = link.from.position_at(time) {
            out.push((
                offset,
                Annotation {
                    node: link.to.node,
                    link: link_id,
                },
            ));
        }
    }
    out.sort_by_key(|(offset, a)| (*offset, a.link));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn fresh(name: &str) -> (Ham, NodeIndex) {
        let dir = std::env::temp_dir().join(format!("neptune-annot-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, n, t, b"The quick brown fox.\n".to_vec(), &[])
            .unwrap();
        (ham, n)
    }

    #[test]
    fn annotate_bundles_everything() {
        let (mut ham, target) = fresh("bundle");
        let a = annotate(
            &mut ham,
            MAIN_CONTEXT,
            target,
            4,
            "really? citation needed\n",
        )
        .unwrap();
        // The annotation node holds the text.
        let opened = ham
            .open_node(MAIN_CONTEXT, a.node, Time::CURRENT, &[])
            .unwrap();
        assert_eq!(&opened.contents[..], b"really? citation needed\n");
        // The link is tagged as an annotation at the cursor.
        let found = annotations_of(&ham, MAIN_CONTEXT, target, Time::CURRENT).unwrap();
        assert_eq!(found, vec![(4, a)]);
        // The annotation node has an icon derived from its first line.
        let icon = ham.get_attribute_index(MAIN_CONTEXT, ICON).unwrap();
        let v = ham
            .get_node_attribute_value(MAIN_CONTEXT, a.node, icon, Time::CURRENT)
            .unwrap();
        assert_eq!(v, Value::str("really? citation needed"));
    }

    #[test]
    fn annotations_sorted_by_offset() {
        let (mut ham, target) = fresh("sorted");
        let late = annotate(&mut ham, MAIN_CONTEXT, target, 15, "late\n").unwrap();
        let early = annotate(&mut ham, MAIN_CONTEXT, target, 2, "early\n").unwrap();
        let found = annotations_of(&ham, MAIN_CONTEXT, target, Time::CURRENT).unwrap();
        assert_eq!(found, vec![(2, early), (15, late)]);
    }

    #[test]
    fn annotate_on_missing_target_rolls_back() {
        let (mut ham, _) = fresh("missing");
        let before = ham.graph(MAIN_CONTEXT).unwrap().live_node_count();
        assert!(annotate(&mut ham, MAIN_CONTEXT, NodeIndex(404), 0, "nope").is_err());
        assert_eq!(ham.graph(MAIN_CONTEXT).unwrap().live_node_count(), before);
        assert!(!ham.in_transaction());
    }

    #[test]
    fn annotations_are_time_scoped() {
        let (mut ham, target) = fresh("time");
        let t_before = ham.graph(MAIN_CONTEXT).unwrap().now();
        annotate(&mut ham, MAIN_CONTEXT, target, 0, "new note\n").unwrap();
        assert!(annotations_of(&ham, MAIN_CONTEXT, target, t_before)
            .unwrap()
            .is_empty());
        assert_eq!(
            annotations_of(&ham, MAIN_CONTEXT, target, Time::CURRENT)
                .unwrap()
                .len(),
            1
        );
    }
}
