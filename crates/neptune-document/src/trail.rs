//! Trails: saved traversal histories.
//!
//! Paper §2.2: *"As a hypertext reader follows link after link in reading
//! portions of hyperdocuments, he or she may want to keep a trail of which
//! links were followed. This trail allows other readers to follow the same
//! path and makes it easier to resume reading a document after a diversion
//! has been followed. A capability for saving a traversal history was a
//! key component of Bush's memex."*
//!
//! A trail is itself hypertext: a node whose contents record the path, so
//! trails persist with the graph, version like everything else, and are
//! sharable between readers. Each step records the link followed and the
//! node reached.

use neptune_ham::types::{ContextId, LinkIndex, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, HamError, Result};

use crate::conventions::ICON;

/// `contentType` value identifying trail nodes.
pub const TRAIL_CONTENT_TYPE: &str = "trail";

/// One recorded step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrailStep {
    /// The link that was followed (`None` for the starting node).
    pub link: Option<LinkIndex>,
    /// The node the reader arrived at.
    pub node: NodeIndex,
}

/// A reader's trail through a hyperdocument.
#[derive(Debug, Clone)]
pub struct Trail {
    /// The hypertext node storing this trail.
    pub node: NodeIndex,
    /// The reader's name (stored as the trail node's icon).
    pub name: String,
    steps: Vec<TrailStep>,
}

impl Trail {
    /// Start a new trail named `name` at `start`.
    pub fn start(ham: &mut Ham, context: ContextId, name: &str, start: NodeIndex) -> Result<Trail> {
        ham.graph(context)?.live_node(start, Time::CURRENT)?;
        ham.begin_transaction()?;
        let result = (|| {
            let (node, t) = ham.add_node(context, true)?;
            let mut trail = Trail {
                node,
                name: name.to_string(),
                steps: vec![TrailStep {
                    link: None,
                    node: start,
                }],
            };
            ham.modify_node(context, node, t, trail.serialize(), &[])?;
            let icon = ham.get_attribute_index(context, ICON)?;
            ham.set_node_attribute_value(context, node, icon, Value::str(name))?;
            let ct = ham.get_attribute_index(context, "contentType")?;
            ham.set_node_attribute_value(context, node, ct, Value::str(TRAIL_CONTENT_TYPE))?;
            trail.steps = vec![TrailStep {
                link: None,
                node: start,
            }];
            Ok(trail)
        })();
        match result {
            Ok(trail) => {
                ham.commit_transaction()?;
                Ok(trail)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    /// The node the reader is currently at (for resuming after a
    /// diversion).
    pub fn current(&self) -> NodeIndex {
        self.steps.last().expect("trails always have a start").node
    }

    /// The recorded steps, start first.
    pub fn steps(&self) -> &[TrailStep] {
        &self.steps
    }

    /// Follow `link` from the current node, recording the step and
    /// persisting the trail. The link must leave the current node and be
    /// alive now.
    pub fn follow(
        &mut self,
        ham: &mut Ham,
        context: ContextId,
        link: LinkIndex,
    ) -> Result<NodeIndex> {
        let (from, _) = ham.get_from_node(context, link, Time::CURRENT)?;
        if from != self.current() {
            return Err(HamError::BadEndpoint {
                node: from,
                time: Time::CURRENT,
            });
        }
        let (target, _) = ham.get_to_node(context, link, Time::CURRENT)?;
        self.steps.push(TrailStep {
            link: Some(link),
            node: target,
        });
        self.persist(ham, context)?;
        Ok(target)
    }

    /// Step back to the previous node (after a diversion), recording the
    /// retreat as a step with no link.
    pub fn back(&mut self, ham: &mut Ham, context: ContextId) -> Result<Option<NodeIndex>> {
        if self.steps.len() < 2 {
            return Ok(None);
        }
        let previous = self.steps[self.steps.len() - 2].node;
        self.steps.push(TrailStep {
            link: None,
            node: previous,
        });
        self.persist(ham, context)?;
        Ok(Some(previous))
    }

    fn persist(&self, ham: &mut Ham, context: ContextId) -> Result<()> {
        let opened = ham.open_node(context, self.node, Time::CURRENT, &[])?;
        ham.modify_node(
            context,
            self.node,
            opened.current_time,
            self.serialize(),
            &opened.link_pts,
        )?;
        Ok(())
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = format!("TRAIL {}\n", self.name);
        for step in &self.steps {
            match step.link {
                Some(link) => out.push_str(&format!("via {} -> node {}\n", link.0, step.node.0)),
                None => out.push_str(&format!("at node {}\n", step.node.0)),
            }
        }
        out.into_bytes()
    }

    /// Load a trail another reader saved, so their path can be replayed.
    pub fn load(ham: &mut Ham, context: ContextId, node: NodeIndex) -> Result<Trail> {
        let contents = ham.open_node(context, node, Time::CURRENT, &[])?.contents;
        let text = String::from_utf8_lossy(&contents);
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        let name = header
            .strip_prefix("TRAIL ")
            .unwrap_or("unnamed")
            .to_string();
        let mut steps = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("at node ") {
                if let Ok(id) = rest.trim().parse::<u64>() {
                    steps.push(TrailStep {
                        link: None,
                        node: NodeIndex(id),
                    });
                }
            } else if let Some(rest) = line.strip_prefix("via ") {
                let mut parts = rest.split(" -> node ");
                let link = parts.next().and_then(|p| p.trim().parse::<u64>().ok());
                let node_id = parts.next().and_then(|p| p.trim().parse::<u64>().ok());
                if let (Some(link), Some(node_id)) = (link, node_id) {
                    steps.push(TrailStep {
                        link: Some(LinkIndex(link)),
                        node: NodeIndex(node_id),
                    });
                }
            }
        }
        if steps.is_empty() {
            return Err(HamError::BadPredicate {
                message: format!("node {} does not contain a trail", node.0),
            });
        }
        Ok(Trail { node, name, steps })
    }

    /// Replay the trail: the sequence of nodes another reader visited, in
    /// order — "allows other readers to follow the same path".
    pub fn replay(&self) -> Vec<NodeIndex> {
        self.steps.iter().map(|s| s.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{LinkPt, Protections, MAIN_CONTEXT};

    fn reading_graph() -> (Ham, Vec<NodeIndex>, Vec<LinkIndex>) {
        let dir = std::env::temp_dir().join(format!("neptune-trail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let mut nodes = Vec::new();
        for i in 0..4 {
            let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            ham.modify_node(MAIN_CONTEXT, n, t, format!("page {i}\n").into_bytes(), &[])
                .unwrap();
            nodes.push(n);
        }
        let mut links = Vec::new();
        for w in nodes.windows(2) {
            let (l, _) = ham
                .add_link(
                    MAIN_CONTEXT,
                    LinkPt::current(w[0], 0),
                    LinkPt::current(w[1], 0),
                )
                .unwrap();
            links.push(l);
        }
        (ham, nodes, links)
    }

    #[test]
    fn trail_records_followed_links() {
        let (mut ham, nodes, links) = reading_graph();
        let mut trail = Trail::start(&mut ham, MAIN_CONTEXT, "norm", nodes[0]).unwrap();
        assert_eq!(trail.current(), nodes[0]);
        trail.follow(&mut ham, MAIN_CONTEXT, links[0]).unwrap();
        trail.follow(&mut ham, MAIN_CONTEXT, links[1]).unwrap();
        assert_eq!(trail.current(), nodes[2]);
        assert_eq!(trail.replay(), vec![nodes[0], nodes[1], nodes[2]]);
    }

    #[test]
    fn wrong_link_is_rejected() {
        let (mut ham, nodes, links) = reading_graph();
        let mut trail = Trail::start(&mut ham, MAIN_CONTEXT, "norm", nodes[0]).unwrap();
        // links[1] starts at nodes[1], not the current node.
        assert!(trail.follow(&mut ham, MAIN_CONTEXT, links[1]).is_err());
        assert_eq!(trail.current(), nodes[0], "failed follow does not move");
    }

    #[test]
    fn back_resumes_after_diversion() {
        let (mut ham, nodes, links) = reading_graph();
        let mut trail = Trail::start(&mut ham, MAIN_CONTEXT, "norm", nodes[0]).unwrap();
        trail.follow(&mut ham, MAIN_CONTEXT, links[0]).unwrap();
        let resumed = trail.back(&mut ham, MAIN_CONTEXT).unwrap();
        assert_eq!(resumed, Some(nodes[0]));
        assert_eq!(trail.current(), nodes[0]);
        // Backing past the start is a no-op... from the start of this trail
        // the previous node is nodes[1] (the step before the retreat).
        assert!(trail.back(&mut ham, MAIN_CONTEXT).unwrap().is_some());
    }

    #[test]
    fn another_reader_loads_and_replays() {
        let (mut ham, nodes, links) = reading_graph();
        let trail_node;
        {
            let mut trail = Trail::start(&mut ham, MAIN_CONTEXT, "norm", nodes[0]).unwrap();
            trail.follow(&mut ham, MAIN_CONTEXT, links[0]).unwrap();
            trail.follow(&mut ham, MAIN_CONTEXT, links[1]).unwrap();
            trail_node = trail.node;
        }
        let loaded = Trail::load(&mut ham, MAIN_CONTEXT, trail_node).unwrap();
        assert_eq!(loaded.name, "norm");
        assert_eq!(loaded.replay(), vec![nodes[0], nodes[1], nodes[2]]);
        assert_eq!(loaded.current(), nodes[2]);
    }

    #[test]
    fn loading_a_non_trail_node_fails() {
        let (mut ham, nodes, _) = reading_graph();
        assert!(Trail::load(&mut ham, MAIN_CONTEXT, nodes[0]).is_err());
    }

    #[test]
    fn trails_are_versioned_hypertext() {
        let (mut ham, nodes, links) = reading_graph();
        let mut trail = Trail::start(&mut ham, MAIN_CONTEXT, "norm", nodes[0]).unwrap();
        let t_short = ham.graph(MAIN_CONTEXT).unwrap().now();
        trail.follow(&mut ham, MAIN_CONTEXT, links[0]).unwrap();
        // The earlier, shorter trail is still visible at the earlier time.
        let old = ham
            .open_node(MAIN_CONTEXT, trail.node, t_short, &[])
            .unwrap();
        let old_text = String::from_utf8_lossy(&old.contents).into_owned();
        assert!(!old_text.contains("via"), "{old_text}");
        let new = ham
            .open_node(MAIN_CONTEXT, trail.node, Time::CURRENT, &[])
            .unwrap();
        assert!(String::from_utf8_lossy(&new.contents).contains("via"));
    }
}
