//! Hierarchical documents over the HAM.
//!
//! Paper §4.2: *"Documents are typically organized as a hierarchy of
//! sections and sub-sections. This structure can be directly expressed in
//! hypertext by using a node to represent each section or sub-section with
//! links connecting each node to its immediate descendent sections."*
//! [`Document`] wraps a HAM graph with those conventions: every section is
//! an archive node tagged with `document` and `icon` attributes, structure
//! links carry `relation = isPartOf`, and link offsets within a section
//! order its children.

use neptune_ham::predicate::Predicate;
use neptune_ham::types::{ContextId, LinkIndex, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Result};

use crate::conventions::{DOCUMENT, ICON, IS_PART_OF, REFERENCES, RELATION};

/// A handle to one named document inside a HAM graph.
#[derive(Debug, Clone)]
pub struct Document {
    /// The context the document lives in.
    pub context: ContextId,
    /// The document's name (the value of every member node's `document`
    /// attribute).
    pub name: String,
    /// The root section node.
    pub root: NodeIndex,
}

impl Document {
    /// Create a new document: a root section node tagged with the document
    /// conventions. Bundled in one transaction.
    pub fn create(ham: &mut Ham, context: ContextId, name: &str, title: &str) -> Result<Document> {
        ham.begin_transaction()?;
        let result = (|| {
            let (root, t) = ham.add_node(context, true)?;
            ham.modify_node(context, root, t, format!("{title}\n").into_bytes(), &[])?;
            let doc_attr = ham.get_attribute_index(context, DOCUMENT)?;
            let icon_attr = ham.get_attribute_index(context, ICON)?;
            ham.set_node_attribute_value(context, root, doc_attr, Value::str(name))?;
            ham.set_node_attribute_value(context, root, icon_attr, Value::str(title))?;
            Ok(Document {
                context,
                name: name.to_string(),
                root,
            })
        })();
        match result {
            Ok(doc) => {
                ham.commit_transaction()?;
                Ok(doc)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    /// Add a section under `parent` at child position `order` (the
    /// structure link's offset within the parent — lower offsets come
    /// first in `linearizeGraph`).
    pub fn add_section(
        &self,
        ham: &mut Ham,
        parent: NodeIndex,
        order: u64,
        title: &str,
        body: &str,
    ) -> Result<NodeIndex> {
        ham.begin_transaction()?;
        let result = (|| {
            let ctx = self.context;
            let (section, t) = ham.add_node(ctx, true)?;
            let contents = format!("{title}\n{body}");
            ham.modify_node(ctx, section, t, contents.into_bytes(), &[])?;
            let doc_attr = ham.get_attribute_index(ctx, DOCUMENT)?;
            let icon_attr = ham.get_attribute_index(ctx, ICON)?;
            let rel_attr = ham.get_attribute_index(ctx, RELATION)?;
            ham.set_node_attribute_value(ctx, section, doc_attr, Value::str(&self.name))?;
            ham.set_node_attribute_value(ctx, section, icon_attr, Value::str(title))?;
            let (link, _) = ham.add_link(
                ctx,
                LinkPt::current(parent, order),
                LinkPt::current(section, 0),
            )?;
            ham.set_link_attribute_value(ctx, link, rel_attr, Value::str(IS_PART_OF))?;
            Ok(section)
        })();
        match result {
            Ok(section) => {
                ham.commit_transaction()?;
                Ok(section)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    /// Add a cross-reference link (`relation = references`) from a position
    /// inside `from` to a target section.
    pub fn add_reference(
        &self,
        ham: &mut Ham,
        from: NodeIndex,
        at: u64,
        target: NodeIndex,
    ) -> Result<LinkIndex> {
        ham.begin_transaction()?;
        let result = (|| {
            let ctx = self.context;
            let (link, _) =
                ham.add_link(ctx, LinkPt::current(from, at), LinkPt::current(target, 0))?;
            let rel_attr = ham.get_attribute_index(ctx, RELATION)?;
            ham.set_link_attribute_value(ctx, link, rel_attr, Value::str(REFERENCES))?;
            Ok(link)
        })();
        match result {
            Ok(link) => {
                ham.commit_transaction()?;
                Ok(link)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    /// The document's sections in reading order at `time` — the document
    /// extraction that `linearizeGraph` exists for, filtered to this
    /// document's nodes and `isPartOf` structure.
    pub fn sections(&self, ham: &Ham, time: Time) -> Result<Vec<NodeIndex>> {
        let node_pred = Predicate::parse(&crate::conventions::document_predicate(&self.name))
            .expect("convention predicates parse");
        let link_pred = Predicate::parse(&crate::conventions::structure_predicate())
            .expect("convention predicates parse");
        let sg = ham.linearize_graph(
            self.context,
            self.root,
            time,
            &node_pred,
            &link_pred,
            &[],
            &[],
        )?;
        Ok(sg.node_ids())
    }

    /// The immediate children of a section in order, following only
    /// structure links.
    pub fn children(&self, ham: &Ham, section: NodeIndex, time: Time) -> Result<Vec<NodeIndex>> {
        let graph = ham.graph(self.context)?;
        let rel_attr = graph.attr_table.lookup(RELATION);
        let mut out: Vec<(u64, NodeIndex)> = Vec::new();
        let node = graph.node(section)?;
        for &link_id in &node.incident_links {
            let link = graph.link(link_id)?;
            if link.from.node != section || !link.exists_at(time) {
                continue;
            }
            let is_structure = rel_attr
                .and_then(|attr| link.attrs.get(attr, time))
                .map(|v| *v == Value::str(IS_PART_OF))
                .unwrap_or(false);
            if !is_structure {
                continue;
            }
            if let Some(offset) = link.from.position_at(time) {
                out.push((offset, link.to.node));
            }
        }
        out.sort_unstable();
        Ok(out.into_iter().map(|(_, n)| n).collect())
    }

    /// A section's display title (its `icon` attribute, falling back to the
    /// node index).
    pub fn title(&self, ham: &Ham, section: NodeIndex, time: Time) -> Result<String> {
        let graph = ham.graph(self.context)?;
        let icon_attr = graph.attr_table.lookup(ICON);
        Ok(icon_attr
            .and_then(|attr| {
                graph
                    .node(section)
                    .ok()
                    .and_then(|n| n.attrs.get(attr, time))
            })
            .map(|v| v.to_string())
            .unwrap_or_else(|| format!("node-{}", section.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn fresh(name: &str) -> Ham {
        let dir = std::env::temp_dir().join(format!("neptune-doc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Ham::create_graph(dir, Protections::DEFAULT).unwrap().0
    }

    #[test]
    fn build_and_linearize_a_document() {
        let mut ham = fresh("build");
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "paper", "Neptune").unwrap();
        let s1 = doc
            .add_section(&mut ham, doc.root, 10, "Introduction", "intro text\n")
            .unwrap();
        let s2 = doc
            .add_section(&mut ham, doc.root, 20, "Hypertext", "survey text\n")
            .unwrap();
        let s21 = doc
            .add_section(&mut ham, s2, 5, "Existing Systems", "memex...\n")
            .unwrap();

        let order = doc.sections(&ham, Time::CURRENT).unwrap();
        assert_eq!(order, vec![doc.root, s1, s2, s21]);
        assert_eq!(
            doc.children(&ham, doc.root, Time::CURRENT).unwrap(),
            vec![s1, s2]
        );
        assert_eq!(
            doc.title(&ham, s21, Time::CURRENT).unwrap(),
            "Existing Systems"
        );
    }

    #[test]
    fn child_order_follows_offsets_not_creation() {
        let mut ham = fresh("order");
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "d", "Doc").unwrap();
        let late = doc
            .add_section(&mut ham, doc.root, 30, "Third", "")
            .unwrap();
        let early = doc
            .add_section(&mut ham, doc.root, 10, "First", "")
            .unwrap();
        let mid = doc
            .add_section(&mut ham, doc.root, 20, "Second", "")
            .unwrap();
        assert_eq!(
            doc.children(&ham, doc.root, Time::CURRENT).unwrap(),
            vec![early, mid, late]
        );
    }

    #[test]
    fn references_are_not_structure() {
        let mut ham = fresh("refs");
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "d", "Doc").unwrap();
        let s1 = doc.add_section(&mut ham, doc.root, 10, "A", "").unwrap();
        let s2 = doc.add_section(&mut ham, doc.root, 20, "B", "").unwrap();
        doc.add_reference(&mut ham, s1, 0, s2).unwrap();
        // s2 is not a child of s1; it remains a child of root only.
        assert_eq!(
            doc.children(&ham, s1, Time::CURRENT).unwrap(),
            Vec::<NodeIndex>::new()
        );
        // And linearize with structure-only links doesn't duplicate s2.
        let order = doc.sections(&ham, Time::CURRENT).unwrap();
        assert_eq!(order, vec![doc.root, s1, s2]);
    }

    #[test]
    fn two_documents_are_disjoint() {
        let mut ham = fresh("twodocs");
        let a = Document::create(&mut ham, MAIN_CONTEXT, "a", "Doc A").unwrap();
        let b = Document::create(&mut ham, MAIN_CONTEXT, "b", "Doc B").unwrap();
        a.add_section(&mut ham, a.root, 10, "A1", "").unwrap();
        b.add_section(&mut ham, b.root, 10, "B1", "").unwrap();
        assert_eq!(a.sections(&ham, Time::CURRENT).unwrap().len(), 2);
        assert_eq!(b.sections(&ham, Time::CURRENT).unwrap().len(), 2);
    }

    #[test]
    fn failed_section_add_rolls_back() {
        let mut ham = fresh("rollback");
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "d", "Doc").unwrap();
        let before = ham.graph(MAIN_CONTEXT).unwrap().live_node_count();
        // Adding under a nonexistent parent fails atomically.
        let err = doc.add_section(&mut ham, NodeIndex(999), 0, "orphan", "");
        assert!(err.is_err());
        assert_eq!(ham.graph(MAIN_CONTEXT).unwrap().live_node_count(), before);
    }
}
