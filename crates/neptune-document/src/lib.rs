//! # neptune-document
//!
//! The documentation application layer and browser models from the Neptune
//! paper (§4.1): hierarchical documents built from the HAM's primitives,
//! the `annotate` command, hardcopy extraction via `linearizeGraph`, and
//! textual models of the paper's browsers — the graph browser (Figure 1),
//! the document browser (Figure 2), the node browser (Figure 3), and the
//! node-differences browser.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod browser;
pub mod conventions;
pub mod diffview;
pub mod doc;
pub mod inspect;
pub mod nodeview;
pub mod outline;
pub mod render;
pub mod trail;

pub use annotate::{annotate, annotations_of, Annotation};
pub use browser::{GraphBrowser, GraphView};
pub use doc::Document;
pub use nodeview::{follow, view_node, NodeView};
pub use outline::{DocumentBrowser, OutlineView};
pub use render::{flatten, hardcopy, RenderedSection};
pub use trail::{Trail, TrailStep};
