//! Attribute conventions of the documentation application layer.
//!
//! Paper §3 and §4.2 establish the conventions this layer relies on: the
//! `icon` attribute names a node in browsers, `relation` describes what a
//! link means (`isPartOf` structures documents; `annotates`, `references`
//! are diversions), `document` says which document a node belongs to, and
//! `contentType` what its contents are.

/// Attribute naming the icon/label shown for a node or link in browsers
/// (paper §4.1: "The user specifies the name associated with a node by
/// attaching the attribute *icon*").
pub const ICON: &str = "icon";

/// Attribute naming the relationship a link denotes (paper §4.2).
pub const RELATION: &str = "relation";

/// Attribute naming the document a node belongs to (paper §3's example:
/// `document = requirements`).
pub const DOCUMENT: &str = "document";

/// Attribute describing what a node contains (paper §4.2).
pub const CONTENT_TYPE: &str = "contentType";

/// `relation` value structuring documents into section hierarchies.
pub const IS_PART_OF: &str = "isPartOf";

/// `relation` value for annotation links.
pub const ANNOTATES: &str = "annotates";

/// `relation` value for cross-references.
pub const REFERENCES: &str = "references";

/// Standard link predicate selecting only document structure.
pub fn structure_predicate() -> String {
    format!("{RELATION} = {IS_PART_OF}")
}

/// Standard node predicate selecting one document's nodes.
pub fn document_predicate(document: &str) -> String {
    format!("{DOCUMENT} = \"{document}\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::Predicate;

    #[test]
    fn predicates_parse() {
        assert!(Predicate::parse(&structure_predicate()).is_ok());
        assert!(Predicate::parse(&document_predicate("requirements")).is_ok());
        assert!(Predicate::parse(&document_predicate("with space")).is_ok());
    }
}
