//! The graph browser (paper Figure 1).
//!
//! §4.1: *"The graph browser shows a pictorial view of a hyperdocument or
//! a portion of a hyperdocument … Each node is represented by an icon that
//! consists of a name enclosed in a rectangle. … The graph browser itself
//! has four panes: the upper pane contains the view of the graph, the
//! lower left pane is a scroll area …, the two panes on the lower right
//! contain text editors used to define the visibility predicates on nodes
//! and links."*
//!
//! This reproduction renders the same information textually: a layered
//! drawing of the visible sub-graph (each node a `[name]` box), the edge
//! list, and the two predicate panes.

use std::collections::HashMap;

use neptune_ham::predicate::Predicate;
use neptune_ham::types::{ContextId, LinkIndex, NodeIndex, Time};
use neptune_ham::{Ham, HamError, Result};

use crate::conventions::ICON;

/// The graph browser's state: its two visibility predicate panes.
#[derive(Debug, Clone)]
pub struct GraphBrowser {
    /// Node visibility predicate (lower-right pane, top).
    pub node_predicate: String,
    /// Link visibility predicate (lower-right pane, bottom).
    pub link_predicate: String,
}

impl Default for GraphBrowser {
    fn default() -> Self {
        GraphBrowser {
            node_predicate: "true".into(),
            link_predicate: "true".into(),
        }
    }
}

/// The computed view: visible nodes with labels and visible edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphView {
    /// Visible nodes with their icon labels, in index order.
    pub nodes: Vec<(NodeIndex, String)>,
    /// Visible edges `(link, from, to)` connecting visible nodes.
    pub edges: Vec<(LinkIndex, NodeIndex, NodeIndex)>,
}

impl GraphBrowser {
    /// A browser showing everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// A browser with explicit visibility predicates.
    pub fn with_predicates(node_pred: &str, link_pred: &str) -> Self {
        GraphBrowser {
            node_predicate: node_pred.to_string(),
            link_predicate: link_pred.to_string(),
        }
    }

    /// Compute the visible sub-graph at `time` via `getGraphQuery` — the
    /// same HAM call the Smalltalk browser issues.
    pub fn view(&self, ham: &Ham, context: ContextId, time: Time) -> Result<GraphView> {
        let node_pred = parse(&self.node_predicate)?;
        let link_pred = parse(&self.link_predicate)?;
        let icon_attr = ham.graph(context)?.attr_table.lookup(ICON);
        let attrs: Vec<_> = icon_attr.into_iter().collect();
        let sg = ham.get_graph_query(context, time, &node_pred, &link_pred, &attrs, &[])?;
        let nodes: Vec<(NodeIndex, String)> = sg
            .nodes
            .iter()
            .map(|(id, values)| {
                let label = values
                    .first()
                    .and_then(|v| v.clone())
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| format!("node-{}", id.0));
                (*id, label)
            })
            .collect();
        let graph = ham.graph(context)?;
        let edges = sg
            .links
            .iter()
            .map(|(id, _)| {
                let link = graph.link(*id)?;
                Ok((*id, link.from.node, link.to.node))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(GraphView { nodes, edges })
    }

    /// Render the four-pane browser as text: the layered graph pane, then
    /// the scroll pane placeholder and the two predicate panes.
    pub fn render(&self, ham: &Ham, context: ContextId, time: Time) -> Result<String> {
        let view = self.view(ham, context, time)?;
        let mut out = String::new();
        out.push_str("+-- Graph Browser ");
        out.push_str(&"-".repeat(44));
        out.push('\n');
        for row in layered_rows(&view) {
            out.push_str("| ");
            let boxes: Vec<String> = row.iter().map(|(_, label)| format!("[{label}]")).collect();
            out.push_str(&boxes.join("   "));
            out.push('\n');
        }
        if !view.edges.is_empty() {
            out.push_str("|\n");
            let labels: HashMap<NodeIndex, &str> =
                view.nodes.iter().map(|(id, l)| (*id, l.as_str())).collect();
            for (link, from, to) in &view.edges {
                out.push_str(&format!(
                    "|   {} --> {}   (link {})\n",
                    labels.get(from).copied().unwrap_or("?"),
                    labels.get(to).copied().unwrap_or("?"),
                    link.0
                ));
            }
        }
        out.push_str("+-- scroll: [zoom] [pan] ");
        out.push_str(&"-".repeat(37));
        out.push('\n');
        out.push_str(&format!("| node visibility: {}\n", self.node_predicate));
        out.push_str(&format!("| link visibility: {}\n", self.link_predicate));
        out.push_str(&"-".repeat(62));
        out.push('\n');
        Ok(out)
    }
}

fn parse(text: &str) -> Result<Predicate> {
    Predicate::parse(text).map_err(|message| HamError::BadPredicate { message })
}

/// Assign each visible node a layer (longest path from a root) and return
/// the rows top-down — a simple Sugiyama-style layering.
fn layered_rows(view: &GraphView) -> Vec<Vec<(NodeIndex, String)>> {
    let ids: Vec<NodeIndex> = view.nodes.iter().map(|(id, _)| *id).collect();
    let labels: HashMap<NodeIndex, &String> = view.nodes.iter().map(|(id, l)| (*id, l)).collect();
    let mut layer: HashMap<NodeIndex, usize> = ids.iter().map(|id| (*id, 0)).collect();
    // Relax longest-path layering; bounded by node count to survive cycles.
    for _ in 0..ids.len() {
        let mut changed = false;
        for (_, from, to) in &view.edges {
            if from == to {
                continue;
            }
            if let (Some(&lf), Some(&lt)) = (layer.get(from), layer.get(to)) {
                if lt < lf + 1 && lf + 1 < ids.len() {
                    layer.insert(*to, lf + 1);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let max_layer = layer.values().copied().max().unwrap_or(0);
    let mut rows: Vec<Vec<(NodeIndex, String)>> = vec![Vec::new(); max_layer + 1];
    for id in ids {
        rows[layer[&id]].push((id, labels[&id].clone()));
    }
    rows.retain(|r| !r.is_empty());
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn sample() -> (Ham, Document) {
        let dir = std::env::temp_dir().join(format!("neptune-gb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "paper", "SIGMOD Paper").unwrap();
        let spec = doc.add_section(&mut ham, doc.root, 10, "Spec", "").unwrap();
        doc.add_section(&mut ham, doc.root, 20, "Design", "")
            .unwrap();
        doc.add_section(&mut ham, spec, 5, "Spec2", "").unwrap();
        (ham, doc)
    }

    #[test]
    fn view_shows_labeled_nodes_and_edges() {
        let (ham, _) = sample();
        let view = GraphBrowser::new()
            .view(&ham, MAIN_CONTEXT, Time::CURRENT)
            .unwrap();
        assert_eq!(view.nodes.len(), 4);
        assert_eq!(view.edges.len(), 3);
        let labels: Vec<&str> = view.nodes.iter().map(|(_, l)| l.as_str()).collect();
        assert!(labels.contains(&"SIGMOD Paper"));
        assert!(labels.contains(&"Spec2"));
    }

    #[test]
    fn node_predicate_filters_view() {
        let (ham, _) = sample();
        let browser = GraphBrowser::with_predicates("icon = Spec", "true");
        let view = browser.view(&ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        assert_eq!(view.nodes.len(), 1);
        assert!(view.edges.is_empty(), "edges need both ends visible");
    }

    #[test]
    fn render_has_four_panes_and_layers() {
        let (ham, _) = sample();
        let text = GraphBrowser::new()
            .render(&ham, MAIN_CONTEXT, Time::CURRENT)
            .unwrap();
        assert!(text.contains("Graph Browser"));
        assert!(text.contains("[SIGMOD Paper]"));
        assert!(text.contains("node visibility: true"));
        assert!(text.contains("link visibility: true"));
        // Root is on a line above its children.
        let root_line = text
            .lines()
            .position(|l| l.contains("[SIGMOD Paper]"))
            .unwrap();
        let child_line = text.lines().position(|l| l.contains("[Spec]")).unwrap();
        let grandchild_line = text.lines().position(|l| l.contains("[Spec2]")).unwrap();
        assert!(
            root_line < child_line && child_line < grandchild_line,
            "{text}"
        );
        // Edges listed.
        assert!(text.contains("SIGMOD Paper --> Spec"));
    }

    #[test]
    fn cycles_do_not_hang_layout() {
        let (mut ham, doc) = sample();
        // Create a cycle back to the root.
        let spec = doc.children(&ham, doc.root, Time::CURRENT).unwrap()[0];
        ham.add_link(
            MAIN_CONTEXT,
            neptune_ham::LinkPt::current(spec, 0),
            neptune_ham::LinkPt::current(doc.root, 0),
        )
        .unwrap();
        let text = GraphBrowser::new()
            .render(&ham, MAIN_CONTEXT, Time::CURRENT)
            .unwrap();
        assert!(text.contains("[Spec]"));
    }

    #[test]
    fn bad_predicate_is_reported() {
        let (ham, _) = sample();
        let browser = GraphBrowser::with_predicates("icon = ", "true");
        assert!(matches!(
            browser.view(&ham, MAIN_CONTEXT, Time::CURRENT),
            Err(HamError::BadPredicate { .. })
        ));
    }
}
