//! Hardcopy rendering.
//!
//! Paper §4.2: *"The HAM's linearizeGraph operation can be used to extract
//! a document from the hypertext graph so that hardcopies can be
//! produced."* This module turns a [`Document`] into
//! flat text, numbering sections by their depth in the structure tree.

use neptune_ham::types::{NodeIndex, Time};
use neptune_ham::{Ham, Result};

use crate::doc::Document;

/// One rendered section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedSection {
    /// Hierarchical section number, e.g. "2.1.3" (empty for the root).
    pub number: String,
    /// Depth below the root (root = 0).
    pub depth: usize,
    /// The section node.
    pub node: NodeIndex,
    /// The section's contents.
    pub body: String,
}

/// Flatten the document at `time` into numbered sections, depth-first in
/// reading order.
pub fn flatten(ham: &mut Ham, doc: &Document, time: Time) -> Result<Vec<RenderedSection>> {
    let mut out = Vec::new();
    walk(ham, doc, doc.root, time, "", 0, &mut out)?;
    Ok(out)
}

fn walk(
    ham: &mut Ham,
    doc: &Document,
    node: NodeIndex,
    time: Time,
    prefix: &str,
    depth: usize,
    out: &mut Vec<RenderedSection>,
) -> Result<()> {
    let contents = ham.open_node(doc.context, node, time, &[])?.contents;
    out.push(RenderedSection {
        number: prefix.to_string(),
        depth,
        node,
        body: String::from_utf8_lossy(&contents).into_owned(),
    });
    for (i, child) in doc.children(ham, node, time)?.into_iter().enumerate() {
        let number = if prefix.is_empty() {
            format!("{}", i + 1)
        } else {
            format!("{prefix}.{}", i + 1)
        };
        walk(ham, doc, child, time, &number, depth + 1, out)?;
    }
    Ok(())
}

/// Produce a plain-text hardcopy of the document at `time`.
pub fn hardcopy(ham: &mut Ham, doc: &Document, time: Time) -> Result<String> {
    let sections = flatten(ham, doc, time)?;
    let mut out = String::new();
    for s in sections {
        if s.number.is_empty() {
            out.push_str(&s.body);
            if !s.body.ends_with('\n') {
                out.push('\n');
            }
            out.push('\n');
        } else {
            let mut lines = s.body.lines();
            let title = lines.next().unwrap_or("");
            out.push_str(&format!("{} {}\n", s.number, title));
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn sample() -> (Ham, Document) {
        let dir = std::env::temp_dir().join(format!("neptune-render-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "paper", "Neptune Paper").unwrap();
        let intro = doc
            .add_section(
                &mut ham,
                doc.root,
                10,
                "Introduction",
                "Hypertext for CAD.\n",
            )
            .unwrap();
        doc.add_section(&mut ham, intro, 5, "Motivation", "Version control gaps.\n")
            .unwrap();
        doc.add_section(&mut ham, doc.root, 20, "Hypertext", "Nodes and links.\n")
            .unwrap();
        (ham, doc)
    }

    #[test]
    fn numbering_reflects_structure() {
        let (mut ham, doc) = sample();
        let sections = flatten(&mut ham, &doc, Time::CURRENT).unwrap();
        let numbers: Vec<&str> = sections.iter().map(|s| s.number.as_str()).collect();
        assert_eq!(numbers, vec!["", "1", "1.1", "2"]);
        let depths: Vec<usize> = sections.iter().map(|s| s.depth).collect();
        assert_eq!(depths, vec![0, 1, 2, 1]);
    }

    #[test]
    fn hardcopy_contains_everything_in_order() {
        let (mut ham, doc) = sample();
        let text = hardcopy(&mut ham, &doc, Time::CURRENT).unwrap();
        let intro_pos = text.find("1 Introduction").unwrap();
        let motiv_pos = text.find("1.1 Motivation").unwrap();
        let hyper_pos = text.find("2 Hypertext").unwrap();
        assert!(intro_pos < motiv_pos && motiv_pos < hyper_pos, "{text}");
        assert!(text.contains("Version control gaps."));
    }

    #[test]
    fn hardcopy_of_old_version_omits_later_sections() {
        let (mut ham, doc) = sample();
        let t_before = ham.graph(MAIN_CONTEXT).unwrap().now();
        doc.add_section(&mut ham, doc.root, 30, "Conclusions", "Later addition.\n")
            .unwrap();
        let old = hardcopy(&mut ham, &doc, t_before).unwrap();
        assert!(!old.contains("Conclusions"));
        let new = hardcopy(&mut ham, &doc, Time::CURRENT).unwrap();
        assert!(new.contains("3 Conclusions"));
    }
}
