//! The document browser (paper Figure 2).
//!
//! §4.1: *"It consists of five panes: the four upper panes contain lists
//! of names of nodes, the lower pane is a node browser which can be used
//! to view the contents of one of the nodes listed in the top panes. The
//! node-list in the upper-left pane is formed by executing a getGraphQuery
//! HAM operation. The node-list in each pane to the right is formed by
//! accessing the immediate descendents of the selected node in the left
//! adjacent pane via the linearizeGraph HAM operation. Commands are
//! available to shift the panes in order to view deeply nested
//! hierarchies."*

use neptune_ham::predicate::Predicate;
use neptune_ham::types::{ContextId, NodeIndex, Time};
use neptune_ham::{Ham, HamError, Result};

use crate::conventions::ICON;

/// Number of node-list panes (the paper's figure shows four).
pub const PANE_COUNT: usize = 4;

/// The document browser's state: the root query and the selection path.
#[derive(Debug, Clone)]
pub struct DocumentBrowser {
    /// Node predicate for the upper-left pane's `getGraphQuery`.
    pub query: String,
    /// Link predicate restricting which links count as structure.
    pub link_predicate: String,
    /// Selected entry index in each pane, left to right. Panes beyond the
    /// selection path are empty.
    pub selections: Vec<usize>,
    /// How many levels the panes have been shifted right (the "commands …
    /// to shift the panes" for deep hierarchies).
    pub shift: usize,
}

/// A computed five-pane view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlineView {
    /// The four node-list panes: `(node, name, selected)` rows.
    pub panes: Vec<Vec<(NodeIndex, String, bool)>>,
    /// The node shown in the lower (node browser) pane, if any.
    pub focus: Option<NodeIndex>,
    /// The focused node's contents.
    pub contents: String,
}

impl DocumentBrowser {
    /// A browser rooted at a query, following only structure links.
    pub fn new(query: &str) -> DocumentBrowser {
        DocumentBrowser {
            query: query.to_string(),
            link_predicate: crate::conventions::structure_predicate(),
            selections: Vec::new(),
            shift: 0,
        }
    }

    /// Select entry `index` in pane `pane` (0-based, after shift),
    /// clearing deeper selections.
    pub fn select(&mut self, pane: usize, index: usize) {
        self.selections.truncate(pane + self.shift);
        self.selections.push(index);
    }

    /// Shift the panes one level to the right (for deep hierarchies).
    pub fn shift_right(&mut self) {
        self.shift += 1;
    }

    /// Shift the panes back one level.
    pub fn shift_left(&mut self) {
        self.shift = self.shift.saturating_sub(1);
    }

    /// Compute the view at `time`. The first level is the `getGraphQuery`
    /// result; each subsequent level lists the selected node's immediate
    /// descendants via `linearizeGraph`.
    pub fn view(&self, ham: &mut Ham, context: ContextId, time: Time) -> Result<OutlineView> {
        let node_pred =
            Predicate::parse(&self.query).map_err(|message| HamError::BadPredicate { message })?;
        let link_pred = Predicate::parse(&self.link_predicate)
            .map_err(|message| HamError::BadPredicate { message })?;

        // Level 0: the associative query.
        let sg = ham.get_graph_query(context, time, &node_pred, &Predicate::True, &[], &[])?;
        let mut levels: Vec<Vec<NodeIndex>> = vec![sg.node_ids()];

        // Deeper levels: immediate descendants of the selection.
        let mut focus = None;
        for (depth, &selected) in self.selections.iter().enumerate() {
            let current = &levels[depth];
            let Some(&node) = current.get(selected) else {
                break;
            };
            focus = Some(node);
            let children = immediate_children(ham, context, node, time, &link_pred)?;
            if children.is_empty() {
                break;
            }
            levels.push(children);
        }

        // Window the levels through the shifted panes.
        let mut panes: Vec<Vec<(NodeIndex, String, bool)>> = Vec::with_capacity(PANE_COUNT);
        for pane in 0..PANE_COUNT {
            let level_idx = pane + self.shift;
            let rows = match levels.get(level_idx) {
                Some(nodes) => {
                    let selected = self.selections.get(level_idx).copied();
                    nodes
                        .iter()
                        .enumerate()
                        .map(|(i, &n)| {
                            Ok((n, node_name(ham, context, n, time)?, selected == Some(i)))
                        })
                        .collect::<Result<Vec<_>>>()?
                }
                None => Vec::new(),
            };
            panes.push(rows);
        }

        let contents = match focus {
            Some(node) => {
                String::from_utf8_lossy(&ham.open_node(context, node, time, &[])?.contents)
                    .into_owned()
            }
            None => String::new(),
        };
        Ok(OutlineView {
            panes,
            focus,
            contents,
        })
    }

    /// Render the five-pane browser as text: four columns side by side and
    /// the node browser below.
    pub fn render(&self, ham: &mut Ham, context: ContextId, time: Time) -> Result<String> {
        let view = self.view(ham, context, time)?;
        const W: usize = 18;
        let rows = view.panes.iter().map(|p| p.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str("+-- Document Browser ");
        out.push_str(&"-".repeat(PANE_COUNT * (W + 3) - 21));
        out.push('\n');
        for r in 0..rows.max(1) {
            out.push('|');
            for pane in &view.panes {
                let cell = match pane.get(r) {
                    Some((_, name, selected)) => {
                        let marker = if *selected { ">" } else { " " };
                        format!("{marker}{name}")
                    }
                    None => String::new(),
                };
                let mut cell: String = cell.chars().take(W).collect();
                while cell.chars().count() < W {
                    cell.push(' ');
                }
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out.push_str(&format!("+{}\n", "-".repeat(PANE_COUNT * (W + 3) - 1)));
        for line in view.contents.lines() {
            out.push_str(&format!("| {line}\n"));
        }
        out.push_str(&"-".repeat(PANE_COUNT * (W + 3)));
        out.push('\n');
        Ok(out)
    }
}

/// A node's display name: its `icon` attribute or a fallback.
fn node_name(ham: &Ham, context: ContextId, node: NodeIndex, time: Time) -> Result<String> {
    let graph = ham.graph(context)?;
    let icon = graph.attr_table.lookup(ICON);
    Ok(icon
        .and_then(|attr| graph.node(node).ok().and_then(|n| n.attrs.get(attr, time)))
        .map(|v| v.to_string())
        .unwrap_or_else(|| format!("node-{}", node.0)))
}

/// The immediate descendants of `node` via links satisfying `link_pred`,
/// in offset order — one `linearizeGraph` level.
fn immediate_children(
    ham: &Ham,
    context: ContextId,
    node: NodeIndex,
    time: Time,
    link_pred: &Predicate,
) -> Result<Vec<NodeIndex>> {
    let graph = ham.graph(context)?;
    let n = graph.node(node)?;
    let mut out: Vec<(u64, NodeIndex)> = Vec::new();
    for &link_id in &n.incident_links {
        let link = graph.link(link_id)?;
        if link.from.node != node || !link.exists_at(time) {
            continue;
        }
        let lookup = graph.node_attr_lookup(&link.attrs, time);
        if !link_pred.matches(&lookup) {
            continue;
        }
        if let Some(offset) = link.from.position_at(time) {
            out.push((offset, link.to.node));
        }
    }
    out.sort_unstable();
    Ok(out.into_iter().map(|(_, n)| n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::Document;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn sample() -> (Ham, Document) {
        let dir = std::env::temp_dir().join(format!("neptune-ob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let doc = Document::create(&mut ham, MAIN_CONTEXT, "paper", "Paper").unwrap();
        let h = doc
            .add_section(&mut ham, doc.root, 10, "Hypertext", "About hypertext.\n")
            .unwrap();
        doc.add_section(&mut ham, h, 1, "Existing Systems", "memex, NLS.\n")
            .unwrap();
        doc.add_section(&mut ham, h, 2, "Properties", "editing, traversal.\n")
            .unwrap();
        doc.add_section(&mut ham, doc.root, 20, "Overview", "HAM overview.\n")
            .unwrap();
        (ham, doc)
    }

    #[test]
    fn first_pane_comes_from_query() {
        let (mut ham, _) = sample();
        let browser = DocumentBrowser::new("document = \"paper\"");
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        assert_eq!(
            view.panes[0].len(),
            5,
            "query pane lists all document nodes"
        );
        assert!(view.panes[1].is_empty(), "no selection yet");
        assert!(view.focus.is_none());
    }

    #[test]
    fn selections_open_descendant_panes() {
        let (mut ham, doc) = sample();
        let mut browser = DocumentBrowser::new("document = \"paper\"");
        // Find the root's index in pane 0 and select it.
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let root_idx = view.panes[0]
            .iter()
            .position(|(n, _, _)| *n == doc.root)
            .unwrap();
        browser.select(0, root_idx);
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let names: Vec<&str> = view.panes[1].iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Hypertext", "Overview"]);
        assert_eq!(view.focus, Some(doc.root));
        assert!(view.contents.contains("Paper"));

        // Select "Hypertext" in pane 1 → its children in pane 2.
        browser.select(1, 0);
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let names: Vec<&str> = view.panes[2].iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Existing Systems", "Properties"]);
        assert!(view.contents.contains("About hypertext."));
    }

    #[test]
    fn shift_windows_deep_hierarchies() {
        let (mut ham, doc) = sample();
        let mut browser = DocumentBrowser::new("document = \"paper\"");
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let root_idx = view.panes[0]
            .iter()
            .position(|(n, _, _)| *n == doc.root)
            .unwrap();
        browser.select(0, root_idx);
        browser.select(1, 0);
        browser.shift_right();
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        // After shifting, pane 0 shows what used to be pane 1.
        let names: Vec<&str> = view.panes[0].iter().map(|(_, n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Hypertext", "Overview"]);
        browser.shift_left();
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        assert_eq!(view.panes[0].len(), 5);
    }

    #[test]
    fn render_shows_columns_and_contents() {
        let (mut ham, doc) = sample();
        let mut browser = DocumentBrowser::new("document = \"paper\"");
        let view = browser.view(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let root_idx = view.panes[0]
            .iter()
            .position(|(n, _, _)| *n == doc.root)
            .unwrap();
        browser.select(0, root_idx);
        let text = browser
            .render(&mut ham, MAIN_CONTEXT, Time::CURRENT)
            .unwrap();
        assert!(text.contains("Document Browser"));
        assert!(text.contains(">Paper") || text.contains("> Paper") || text.contains(">Pape"));
        assert!(text.contains("Hypertext"));
    }
}
