//! The node browser (paper Figure 3).
//!
//! §4.1: *"The node browser allows the contents of an individual node to
//! be edited and supports both navigation via links and the creation of
//! new links. … Within a node browser, a link appears as an icon composed
//! using the value of the node's icon attribute … otherwise a default icon
//! is used."*
//!
//! This model renders a node's contents with each outgoing link shown as
//! an inline `⟦icon⟧` marker at its attachment offset, and exposes link
//! following (the interactive "follow a link, view what it points to").

use neptune_ham::types::{ContextId, LinkIndex, NodeIndex, Time};
use neptune_ham::{Ham, Result};

use crate::conventions::ICON;

/// Default icon text for links whose target has no `icon` attribute.
pub const DEFAULT_ICON: &str = "link";

/// One inline link marker in a rendered node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InlineLink {
    /// Byte offset of the attachment within the node's contents.
    pub offset: u64,
    /// The link.
    pub link: LinkIndex,
    /// The destination node.
    pub target: NodeIndex,
    /// The icon shown.
    pub icon: String,
}

/// A rendered node: its text with markers, plus the marker table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// The node being viewed.
    pub node: NodeIndex,
    /// Version time of the viewed contents.
    pub time: Time,
    /// Contents with `⟦icon⟧` markers spliced in at attachment offsets.
    pub text: String,
    /// The inline links, in offset order.
    pub links: Vec<InlineLink>,
}

/// Compute a node view at `time` (zero = current).
pub fn view_node(
    ham: &mut Ham,
    context: ContextId,
    node: NodeIndex,
    time: Time,
) -> Result<NodeView> {
    let opened = ham.open_node(context, node, time, &[])?;
    let contents = opened.contents;

    // Out-going attachments on this node, with target icons.
    let graph = ham.graph(context)?;
    let icon_attr = graph.attr_table.lookup(ICON);
    let n = graph.node(node)?;
    let mut links: Vec<InlineLink> = Vec::new();
    for &link_id in &n.incident_links {
        let link = graph.link(link_id)?;
        if link.from.node != node || !link.exists_at(time) {
            continue;
        }
        let Some(offset) = link.from.position_at(time) else {
            continue;
        };
        // Paper: the icon comes from the link's `icon` attribute if set,
        // else a default.
        let icon = icon_attr
            .and_then(|attr| link.attrs.get(attr, time))
            .map(|v| v.to_string())
            .unwrap_or_else(|| DEFAULT_ICON.to_string());
        links.push(InlineLink {
            offset,
            link: link_id,
            target: link.to.node,
            icon,
        });
    }
    links.sort_by_key(|l| (l.offset, l.link));

    // Splice markers in descending offset order so offsets stay valid.
    let mut text_bytes = contents.to_vec();
    for l in links.iter().rev() {
        let at = (l.offset as usize).min(text_bytes.len());
        let marker = format!("⟦{}⟧", l.icon);
        text_bytes.splice(at..at, marker.into_bytes());
    }
    Ok(NodeView {
        node,
        time,
        text: String::from_utf8_lossy(&text_bytes).into_owned(),
        links,
    })
}

/// Follow the `index`-th inline link of a view: returns the target's view —
/// the browser operation "if a link is followed, then the node at the end
/// of the link is made visible".
pub fn follow(
    ham: &mut Ham,
    context: ContextId,
    view: &NodeView,
    index: usize,
    time: Time,
) -> Result<NodeView> {
    let link = view
        .links
        .get(index)
        .ok_or(neptune_ham::HamError::NoSuchLink(neptune_ham::LinkIndex(
            u64::MAX,
        )))?;
    view_node(ham, context, link.target, time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::annotate;
    use neptune_ham::types::{LinkPt, Protections, MAIN_CONTEXT};
    use neptune_ham::Value;

    fn fresh(name: &str) -> (Ham, NodeIndex) {
        let dir = std::env::temp_dir().join(format!("neptune-nv-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, n, t, b"hello world\n".to_vec(), &[])
            .unwrap();
        (ham, n)
    }

    #[test]
    fn markers_appear_at_offsets() {
        let (mut ham, n) = fresh("markers");
        let (target, tt) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, target, tt, b"the target\n".to_vec(), &[])
            .unwrap();
        let (link, _) = ham
            .add_link(
                MAIN_CONTEXT,
                LinkPt::current(n, 5),
                LinkPt::current(target, 0),
            )
            .unwrap();
        let icon = ham.get_attribute_index(MAIN_CONTEXT, ICON).unwrap();
        ham.set_link_attribute_value(MAIN_CONTEXT, link, icon, Value::str("note"))
            .unwrap();

        let view = view_node(&mut ham, MAIN_CONTEXT, n, Time::CURRENT).unwrap();
        assert_eq!(view.text, "hello⟦note⟧ world\n");
        assert_eq!(view.links.len(), 1);
        assert_eq!(view.links[0].target, target);
    }

    #[test]
    fn default_icon_when_unset() {
        let (mut ham, n) = fresh("default");
        let (target, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.add_link(
            MAIN_CONTEXT,
            LinkPt::current(n, 0),
            LinkPt::current(target, 0),
        )
        .unwrap();
        let view = view_node(&mut ham, MAIN_CONTEXT, n, Time::CURRENT).unwrap();
        assert!(view.text.starts_with(&format!("⟦{DEFAULT_ICON}⟧")));
    }

    #[test]
    fn following_a_link_opens_the_target() {
        let (mut ham, n) = fresh("follow");
        let a = annotate(&mut ham, MAIN_CONTEXT, n, 6, "an aside\n").unwrap();
        let view = view_node(&mut ham, MAIN_CONTEXT, n, Time::CURRENT).unwrap();
        let target_view = follow(&mut ham, MAIN_CONTEXT, &view, 0, Time::CURRENT).unwrap();
        assert_eq!(target_view.node, a.node);
        assert!(target_view.text.contains("an aside"));
        // Out-of-range follow errors.
        assert!(follow(&mut ham, MAIN_CONTEXT, &view, 9, Time::CURRENT).is_err());
    }

    #[test]
    fn multiple_markers_keep_offset_order() {
        let (mut ham, n) = fresh("multi");
        let (t1, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        let (t2, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.add_link(MAIN_CONTEXT, LinkPt::current(n, 11), LinkPt::current(t2, 0))
            .unwrap();
        ham.add_link(MAIN_CONTEXT, LinkPt::current(n, 0), LinkPt::current(t1, 0))
            .unwrap();
        let view = view_node(&mut ham, MAIN_CONTEXT, n, Time::CURRENT).unwrap();
        assert_eq!(view.links[0].offset, 0);
        assert_eq!(view.links[1].offset, 11);
        assert_eq!(view.text, "⟦link⟧hello world⟦link⟧\n");
    }

    #[test]
    fn old_versions_render_without_later_links() {
        let (mut ham, n) = fresh("old");
        let t_before = ham.graph(MAIN_CONTEXT).unwrap().now();
        let (target, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.add_link(
            MAIN_CONTEXT,
            LinkPt::current(n, 3),
            LinkPt::current(target, 0),
        )
        .unwrap();
        let old = view_node(&mut ham, MAIN_CONTEXT, n, t_before).unwrap();
        assert_eq!(old.text, "hello world\n");
        assert!(old.links.is_empty());
    }
}
