//! Attribute, version, and demon browsers.
//!
//! Paper §4.1: *"Several other browsers are provided by Neptune including
//! attribute browsers, version browsers, node differences browsers and
//! demon browsers."* (The differences browser lives in
//! [`crate::diffview`].) These render the corresponding inspector views as
//! text over the same HAM calls the Smalltalk panes made.

use neptune_ham::types::{ContextId, NodeIndex, Time};
use neptune_ham::{Ham, Result};

/// The attribute browser: every attribute name known to the graph at
/// `time`, with its index and the set of values currently defined for it —
/// built from `getAttributes` and `getAttributeValues`.
pub fn attribute_browser(ham: &Ham, context: ContextId, time: Time) -> Result<String> {
    let mut out = String::from("+-- Attribute Browser ----\n");
    let mut attrs = ham.get_attributes(context, time)?;
    attrs.sort_by(|a, b| a.0.cmp(&b.0));
    if attrs.is_empty() {
        out.push_str("| (no attributes defined)\n");
    }
    for (name, idx) in attrs {
        let values = ham.get_attribute_values(context, idx, time)?;
        let rendered: Vec<String> = values.iter().take(8).map(|v| v.to_string()).collect();
        let suffix = if values.len() > 8 {
            format!(", … ({} values)", values.len())
        } else {
            String::new()
        };
        out.push_str(&format!(
            "| {name} (#{}) = {{{}{suffix}}}\n",
            idx.0,
            rendered.join(", ")
        ));
    }
    out.push_str("--------------------------\n");
    Ok(out)
}

/// The version browser for one node: its major (content) and minor
/// (link/attribute) version histories — `getNodeVersions` rendered.
pub fn version_browser(ham: &Ham, context: ContextId, node: NodeIndex) -> Result<String> {
    let (major, minor) = ham.get_node_versions(context, node)?;
    let mut out = format!("+-- Version Browser: node {} ----\n", node.0);
    out.push_str("| major versions (contents):\n");
    for v in &major {
        out.push_str(&format!("|   @ {:>5}  {}\n", v.time.0, v.explanation));
    }
    if minor.is_empty() {
        out.push_str("| minor versions: (none)\n");
    } else {
        out.push_str("| minor versions (links/attributes):\n");
        for v in &minor {
            out.push_str(&format!("|   @ {:>5}  {}\n", v.time.0, v.explanation));
        }
    }
    out.push_str("---------------------------------\n");
    Ok(out)
}

/// The demon browser: graph-level demons, optionally one node's demons,
/// and the most recent firings from the journal.
pub fn demon_browser(
    ham: &Ham,
    context: ContextId,
    node: Option<NodeIndex>,
    time: Time,
) -> Result<String> {
    let mut out = String::from("+-- Demon Browser ----\n");
    out.push_str("| graph demons:\n");
    let graph_demons = ham.get_graph_demons(context, time)?;
    if graph_demons.is_empty() {
        out.push_str("|   (none)\n");
    }
    for (event, demon) in graph_demons {
        out.push_str(&format!("|   on {event}: '{}'\n", demon.name));
    }
    if let Some(node) = node {
        out.push_str(&format!("| node {} demons:\n", node.0));
        let node_demons = ham.get_node_demons(context, node, time)?;
        if node_demons.is_empty() {
            out.push_str("|   (none)\n");
        }
        for (event, demon) in node_demons {
            out.push_str(&format!("|   on {event}: '{}'\n", demon.name));
        }
    }
    let journal = ham.demon_journal();
    out.push_str(&format!(
        "| journal ({} firings, newest last):\n",
        journal.len()
    ));
    for record in journal
        .iter()
        .rev()
        .take(5)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        out.push_str(&format!(
            "|   {} @ {:?} on {}{}\n",
            record.demon,
            record.info.time.0,
            record.info.event,
            record
                .message
                .as_deref()
                .map(|m| format!(": {m}"))
                .unwrap_or_default()
        ));
    }
    out.push_str("----------------------\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::demons::{DemonSpec, Event};
    use neptune_ham::types::{Protections, MAIN_CONTEXT};
    use neptune_ham::Value;

    fn fixture() -> (Ham, NodeIndex) {
        let dir = std::env::temp_dir().join(format!("neptune-inspect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(MAIN_CONTEXT, n, t, b"content\n".to_vec(), &[])
            .unwrap();
        let status = ham.get_attribute_index(MAIN_CONTEXT, "status").unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, n, status, Value::str("draft"))
            .unwrap();
        (ham, n)
    }

    #[test]
    fn attribute_browser_lists_names_and_values() {
        let (ham, _) = fixture();
        let text = attribute_browser(&ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        assert!(text.contains("status"));
        assert!(text.contains("draft"));
    }

    #[test]
    fn attribute_browser_respects_time() {
        let (ham, _) = fixture();
        // Time(1) predates the attribute's creation.
        let text = attribute_browser(&ham, MAIN_CONTEXT, Time(1)).unwrap();
        assert!(!text.contains("status"));
    }

    #[test]
    fn version_browser_shows_both_histories() {
        let (ham, n) = fixture();
        let text = version_browser(&ham, MAIN_CONTEXT, n).unwrap();
        assert!(text.contains("created"));
        assert!(text.contains("modifyNode"));
        assert!(text.contains("attribute set"));
    }

    #[test]
    fn demon_browser_shows_registrations_and_journal() {
        let (mut ham, n) = fixture();
        ham.set_graph_demon_value(
            MAIN_CONTEXT,
            Event::NodeModified,
            Some(DemonSpec::notify("watcher", "changed")),
        )
        .unwrap();
        ham.set_node_demon(
            MAIN_CONTEXT,
            n,
            Event::NodeOpened,
            Some(DemonSpec::notify("greeter", "opened")),
        )
        .unwrap();
        // Fire both.
        let opened = ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[]).unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            n,
            opened.current_time,
            b"v2\n".to_vec(),
            &opened.link_pts,
        )
        .unwrap();
        let text = demon_browser(&ham, MAIN_CONTEXT, Some(n), Time::CURRENT).unwrap();
        assert!(text.contains("watcher"));
        assert!(text.contains("greeter"));
        assert!(text.contains("journal"));
        assert!(text.contains("changed") || text.contains("opened"));
    }
}
