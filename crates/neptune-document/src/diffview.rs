//! The node-differences browser.
//!
//! §4.1: *"A special browser called a node differences browser places two
//! node browsers side-by-side, each viewing a specific version of a node
//! with highlighting used to show differences between the two versions."*
//!
//! The textual analogue: two columns, one per version, with gutter markers
//! (`-` removed, `+` added, `~` replaced, space unchanged).

use neptune_ham::types::{ContextId, NodeIndex, Time};
use neptune_ham::{Ham, Result};
use neptune_storage::diff::{diff_lines, split_lines, HunkKind};

/// One row of the side-by-side view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Gutter marker: ' ' unchanged, '-' only in old, '+' only in new,
    /// '~' replaced.
    pub marker: char,
    /// The old version's line (empty when absent).
    pub left: String,
    /// The new version's line (empty when absent).
    pub right: String,
}

/// Compute the side-by-side comparison of a node's versions at `time1`
/// (left) and `time2` (right).
pub fn side_by_side(
    ham: &Ham,
    context: ContextId,
    node: NodeIndex,
    time1: Time,
    time2: Time,
) -> Result<Vec<DiffRow>> {
    // read_node goes through the HAM's version-materialization cache, so
    // browsing deep history repeatedly stays cheap.
    let old = ham.read_node(context, node, time1, &[])?.contents;
    let new = ham.read_node(context, node, time2, &[])?.contents;
    let old_lines = split_lines(&old);
    let new_lines = split_lines(&new);
    let line = |l: &[u8]| {
        String::from_utf8_lossy(l)
            .trim_end_matches('\n')
            .to_string()
    };

    let hunks = diff_lines(&old, &new);
    let mut rows = Vec::new();
    let mut i = 0;
    while i < hunks.len() {
        let h = hunks[i];
        match h.kind {
            HunkKind::Equal => {
                for k in 0..(h.a_range.1 - h.a_range.0) {
                    rows.push(DiffRow {
                        marker: ' ',
                        left: line(old_lines[h.a_range.0 + k]),
                        right: line(new_lines[h.b_range.0 + k]),
                    });
                }
                i += 1;
            }
            HunkKind::Delete => {
                // Pair with a following insert as a replacement.
                if i + 1 < hunks.len() && hunks[i + 1].kind == HunkKind::Insert {
                    let ins = hunks[i + 1];
                    let dels = h.a_range.1 - h.a_range.0;
                    let adds = ins.b_range.1 - ins.b_range.0;
                    for k in 0..dels.max(adds) {
                        rows.push(DiffRow {
                            marker: '~',
                            left: if k < dels {
                                line(old_lines[h.a_range.0 + k])
                            } else {
                                String::new()
                            },
                            right: if k < adds {
                                line(new_lines[ins.b_range.0 + k])
                            } else {
                                String::new()
                            },
                        });
                    }
                    i += 2;
                } else {
                    for l in &old_lines[h.a_range.0..h.a_range.1] {
                        rows.push(DiffRow {
                            marker: '-',
                            left: line(l),
                            right: String::new(),
                        });
                    }
                    i += 1;
                }
            }
            HunkKind::Insert => {
                for l in &new_lines[h.b_range.0..h.b_range.1] {
                    rows.push(DiffRow {
                        marker: '+',
                        left: String::new(),
                        right: line(l),
                    });
                }
                i += 1;
            }
        }
    }
    Ok(rows)
}

/// Render the browser as text: two labeled columns with gutter markers.
pub fn render(
    ham: &Ham,
    context: ContextId,
    node: NodeIndex,
    time1: Time,
    time2: Time,
) -> Result<String> {
    let rows = side_by_side(ham, context, node, time1, time2)?;
    const W: usize = 32;
    let clip = |s: &str| -> String {
        let mut c: String = s.chars().take(W).collect();
        while c.chars().count() < W {
            c.push(' ');
        }
        c
    };
    let mut out = String::new();
    out.push_str(&format!(
        "+-- Node Differences Browser: node {} @ {:?} vs @ {:?}\n",
        node.0, time1, time2
    ));
    out.push_str(&format!("| {} | {} |\n", clip("(old)"), clip("(new)")));
    out.push_str(&format!("|{}|\n", "-".repeat(2 * W + 5)));
    for row in rows {
        out.push_str(&format!(
            "|{}{} | {} |\n",
            row.marker,
            clip(&row.left),
            clip(&row.right)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn versioned_node() -> (Ham, NodeIndex, Time, Time) {
        let dir = std::env::temp_dir().join(format!("neptune-dv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let (n, t0) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        let t1 = ham
            .modify_node(MAIN_CONTEXT, n, t0, b"alpha\nbeta\ngamma\n".to_vec(), &[])
            .unwrap();
        let t2 = ham
            .modify_node(
                MAIN_CONTEXT,
                n,
                t1,
                b"alpha\nBETA!\ngamma\ndelta\n".to_vec(),
                &[],
            )
            .unwrap();
        (ham, n, t1, t2)
    }

    #[test]
    fn rows_classify_changes() {
        let (ham, n, t1, t2) = versioned_node();
        let rows = side_by_side(&ham, MAIN_CONTEXT, n, t1, t2).unwrap();
        let markers: Vec<char> = rows.iter().map(|r| r.marker).collect();
        assert_eq!(markers, vec![' ', '~', ' ', '+']);
        assert_eq!(rows[1].left, "beta");
        assert_eq!(rows[1].right, "BETA!");
        assert_eq!(rows[3].right, "delta");
    }

    #[test]
    fn identical_versions_are_all_unchanged() {
        let (ham, n, t1, _) = versioned_node();
        let rows = side_by_side(&ham, MAIN_CONTEXT, n, t1, t1).unwrap();
        assert!(rows.iter().all(|r| r.marker == ' '));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn render_is_side_by_side() {
        let (ham, n, t1, t2) = versioned_node();
        let text = render(&ham, MAIN_CONTEXT, n, t1, t2).unwrap();
        assert!(text.contains("Node Differences Browser"));
        let beta_row = text.lines().find(|l| l.contains("beta")).unwrap();
        assert!(
            beta_row.contains("BETA!"),
            "replacement on one row: {beta_row}"
        );
        assert!(text
            .lines()
            .any(|l| l.starts_with("|+") && l.contains("delta")));
    }
}
