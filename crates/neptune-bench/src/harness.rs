//! A minimal benchmark harness with a criterion-shaped API.
//!
//! The workspace builds offline with no external crates, so the E1–E10
//! benches run on this small wall-clock harness instead of criterion. It
//! reproduces exactly the API surface the benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`/`iter_batched`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — and reports the median
//! batch rate (wall-clock time per iteration) for each benchmark.
//!
//! Two additions over the criterion surface: every completed benchmark is
//! recorded as a [`BenchResult`] (so a bench binary can dump machine-readable
//! output, e.g. `BENCH_read_scaling.json`), and setting the
//! `NEPTUNE_BENCH_SMOKE` environment variable clamps all timing knobs to a
//! few milliseconds so CI can exercise every bench path without paying for
//! real measurements.

use std::collections::BTreeMap;
use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// True when `NEPTUNE_BENCH_SMOKE` is set (to anything non-empty): benches
/// should run just long enough to prove they work.
pub fn smoke_mode() -> bool {
    std::env::var("NEPTUNE_BENCH_SMOKE").is_ok_and(|v| !v.is_empty())
}

/// The measured outcome of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full label, `group/benchmark`.
    pub label: String,
    /// Wall-clock nanoseconds per iteration: the median over measurement
    /// sub-batches, so a rare multi-hundred-millisecond scheduler stall
    /// (shared hardware, noisy neighbors) shifts one batch instead of
    /// skewing the whole figure.
    pub ns_per_iter: f64,
    /// Number of measured iterations.
    pub iterations: u64,
    /// Observability counters that moved while this benchmark ran: the
    /// delta of each changed [`neptune_obs`] registry value (counters,
    /// gauges, histogram `_count`/`_sum`) over the benchmark, warm-up
    /// included. Empty when the registry is disabled.
    pub metrics: BTreeMap<String, f64>,
}

/// Top-level harness state: timing configuration plus a result log.
pub struct Criterion {
    measurement: Duration,
    warm_up: Duration,
    min_samples: u64,
    smoke: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = smoke_mode();
        Criterion {
            measurement: if smoke {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(1000)
            },
            warm_up: if smoke {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(200)
            },
            min_samples: if smoke { 2 } else { 10 },
            smoke,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Target duration of the measured phase of each benchmark. Ignored in
    /// smoke mode, which keeps its clamped-down duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        if !self.smoke {
            self.measurement = d;
        }
        self
    }

    /// Duration of the unmeasured warm-up phase. Ignored in smoke mode.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        if !self.smoke {
            self.warm_up = d;
        }
        self
    }

    /// Minimum number of iterations regardless of elapsed time. Ignored in
    /// smoke mode.
    pub fn sample_size(mut self, n: usize) -> Self {
        if !self.smoke {
            self.min_samples = n as u64;
        }
        self
    }

    /// All results recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, &mut f);
        group.finish();
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            min_samples: self.min_samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        let before = neptune_obs::enabled().then(|| neptune_obs::registry().flat_snapshot());
        f(&mut bencher);
        if bencher.iterations == 0 {
            println!("{label:<52} (no iterations)");
            return;
        }
        let metrics = match before {
            Some(before) => neptune_obs::registry()
                .flat_snapshot()
                .into_iter()
                .filter_map(|(key, after)| {
                    let delta = after - before.get(&key).copied().unwrap_or(0.0);
                    (delta != 0.0).then_some((key, delta))
                })
                .collect(),
            None => BTreeMap::new(),
        };
        let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
        println!(
            "{label:<52} {:>12} /iter  ({} iters)",
            format_nanos(per_iter),
            bencher.iterations
        );
        self.results.push(BenchResult {
            label: label.to_string(),
            ns_per_iter: per_iter,
            iterations: bencher.iterations,
            metrics,
        });
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override the minimum number of iterations for this group. Ignored
    /// in smoke mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.criterion.smoke {
            self.criterion.min_samples = n as u64;
        }
        self
    }

    /// Declare the number of logical elements processed per iteration.
    /// Recorded for context only; times are still reported per iteration.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = self.label(&id.0);
        self.criterion.run(&label, &mut |b| f(b, input));
        self
    }

    /// Run a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = self.label(&name.to_string());
        self.criterion.run(&label, &mut f);
        self
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(&mut self) {}

    fn label(&self, item: &str) -> String {
        if self.name.is_empty() {
            item.to_string()
        } else {
            format!("{}/{item}", self.name)
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    min_samples: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// How many sub-batches the measurement window is split into for the
    /// median-rate estimate.
    const SUB_BATCHES: u32 = 8;

    /// Record the median per-iteration rate across `batches` into the
    /// `elapsed`/`iterations` pair the reporting layer divides back out.
    fn record(&mut self, mut batches: Vec<(Duration, u64)>, total: u64) {
        batches.sort_by(|a, b| {
            let ra = a.0.as_nanos() as f64 / a.1 as f64;
            let rb = b.0.as_nanos() as f64 / b.1 as f64;
            ra.total_cmp(&rb)
        });
        // Lower-middle on even counts: timing noise is strictly additive
        // (a stall only ever slows a batch), so ties break toward the
        // uncontended measurement.
        let (dur, n) = batches[(batches.len() - 1) / 2];
        let per_iter = dur.as_nanos() as f64 / n as f64;
        self.iterations = total;
        self.elapsed = Duration::from_nanos((per_iter * total as f64) as u64);
    }

    /// Time `f`, running it repeatedly for the configured duration.
    ///
    /// The measurement window is split into sub-batches and the reported
    /// rate is the *median* batch rate: a single scheduler stall or
    /// noisy-neighbor spike (hundreds of milliseconds on shared hardware)
    /// then lands in one batch instead of dominating a mean taken over a
    /// handful of iterations, while nanosecond-scale benchmarks still pay
    /// no per-iteration timing overhead.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
        }
        let window = self.measurement / Self::SUB_BATCHES;
        let start = Instant::now();
        let mut batches: Vec<(Duration, u64)> = Vec::new();
        let mut total = 0u64;
        while total < self.min_samples || start.elapsed() < self.measurement {
            let batch_start = Instant::now();
            let mut n = 0u64;
            loop {
                black_box(f());
                n += 1;
                if batch_start.elapsed() >= window {
                    break;
                }
            }
            batches.push((batch_start.elapsed(), n));
            total += n;
        }
        self.record(batches, total);
    }

    /// Time `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        // Each routine call is already timed individually (to exclude
        // setup), so the median is taken straight over the samples.
        let mut measured = Duration::ZERO;
        let mut batches: Vec<(Duration, u64)> = Vec::new();
        while (batches.len() as u64) < self.min_samples || measured < self.measurement {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let took = start.elapsed();
            measured += took;
            batches.push((took, 1));
        }
        let total = batches.len() as u64;
        self.record(batches, total);
    }
}

/// How much setup output to batch per measurement (API compatibility).
pub enum BatchSize {
    /// Setup output is small.
    SmallInput,
    /// Setup output is large.
    LargeInput,
}

/// Logical work per iteration, for context in reports.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Bundle benchmark functions under one entry point, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(3);
        let mut group = c.benchmark_group("t");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with", 7), &7, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
