//! Workload generators for the Neptune benchmark harness.
//!
//! Every experiment in EXPERIMENTS.md (E1–E10) builds its input through
//! these generators so benches are deterministic (seeded) and comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::path::PathBuf;

use neptune_storage::testutil::XorShift;

use neptune_ham::types::{ContextId, LinkPt, NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Predicate};

/// A unique temp directory for a benchmark graph.
pub fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "neptune-bench-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Create a fresh on-disk HAM for a benchmark.
pub fn fresh_ham(tag: &str) -> Ham {
    Ham::create_graph(bench_dir(tag), Protections::DEFAULT)
        .expect("create bench graph")
        .0
}

/// Deterministic multi-line text of roughly `bytes` bytes.
pub fn text(bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift::new(seed);
    let mut out = Vec::with_capacity(bytes + 64);
    let mut line = 0usize;
    while out.len() < bytes {
        let words = 4 + rng.below(8) as usize;
        let mut l = format!("line {line:06}:");
        for _ in 0..words {
            l.push_str(match rng.below(8) {
                0 => " hypertext",
                1 => " node",
                2 => " link",
                3 => " version",
                4 => " attribute",
                5 => " graph",
                6 => " demon",
                _ => " transaction",
            });
        }
        l.push('\n');
        out.extend_from_slice(l.as_bytes());
        line += 1;
    }
    out
}

/// Apply `edits` random single-line replacements to `contents`.
pub fn edit_lines(contents: &[u8], edits: usize, seed: u64) -> Vec<u8> {
    let mut rng = XorShift::new(seed);
    let mut lines: Vec<Vec<u8>> = contents
        .split_inclusive(|&b| b == b'\n')
        .map(|l| l.to_vec())
        .collect();
    if lines.is_empty() {
        return format!("edited {seed}\n").into_bytes();
    }
    for i in 0..edits {
        let idx = rng.index(lines.len());
        lines[idx] = format!("line {idx:06}: EDITED pass {seed} change {i}\n").into_bytes();
    }
    lines.concat()
}

/// Replace a fraction (`permille`/1000) of lines — for diff benches.
pub fn perturb(contents: &[u8], permille: usize, seed: u64) -> Vec<u8> {
    let line_count = contents.iter().filter(|&&b| b == b'\n').count().max(1);
    edit_lines(contents, (line_count * permille / 1000).max(1), seed)
}

/// Build a node with `depth` content versions of roughly `bytes` bytes,
/// each differing from the previous by `edits_per_version` line edits.
/// Returns the node and the time of each version (oldest first).
pub fn versioned_node(
    ham: &mut Ham,
    context: ContextId,
    bytes: usize,
    depth: usize,
    edits_per_version: usize,
) -> (NodeIndex, Vec<Time>) {
    let (node, t0) = ham.add_node(context, true).expect("add node");
    let mut contents = text(bytes, 42);
    let mut times = Vec::with_capacity(depth);
    let mut t = ham
        .modify_node(context, node, t0, contents.clone(), &[])
        .expect("initial contents");
    times.push(t);
    for v in 1..depth {
        contents = edit_lines(&contents, edits_per_version, v as u64);
        t = ham
            .modify_node(context, node, t, contents.clone(), &[])
            .expect("version");
        times.push(t);
    }
    (node, times)
}

/// Build a graph of `n` attributed nodes for query benches.
///
/// Every node gets `kind = k<i % kinds>` (so predicate `kind = k0` selects
/// `1/kinds` of the graph) plus a `bucket` integer attribute; consecutive
/// nodes are chained with links so queries also return connecting links.
pub fn attributed_graph(
    ham: &mut Ham,
    context: ContextId,
    n: usize,
    kinds: usize,
) -> Vec<NodeIndex> {
    let kind = ham.get_attribute_index(context, "kind").expect("attr");
    let bucket = ham.get_attribute_index(context, "bucket").expect("attr");
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let (node, _) = ham.add_node(context, true).expect("node");
        ham.set_node_attribute_value(context, node, kind, Value::str(format!("k{}", i % kinds)))
            .expect("set kind");
        ham.set_node_attribute_value(context, node, bucket, Value::Int((i % 10) as i64))
            .expect("set bucket");
        nodes.push(node);
    }
    for w in nodes.windows(2) {
        ham.add_link(context, LinkPt::current(w[0], 0), LinkPt::current(w[1], 0))
            .expect("chain link");
    }
    nodes
}

/// Build a uniform document tree: each interior node has `fanout` children
/// down to `depth` levels. Returns the root and the total node count.
pub fn document_tree(
    ham: &mut Ham,
    context: ContextId,
    fanout: usize,
    depth: usize,
) -> (NodeIndex, usize) {
    let rel = ham.get_attribute_index(context, "relation").expect("attr");
    let (root, t) = ham.add_node(context, true).expect("root");
    ham.modify_node(context, root, t, b"root section\n".to_vec(), &[])
        .expect("contents");
    let mut count = 1;
    let mut frontier = vec![root];
    for _ in 1..depth {
        let mut next = Vec::new();
        for parent in frontier {
            for i in 0..fanout {
                let (child, tc) = ham.add_node(context, true).expect("child");
                ham.modify_node(context, child, tc, b"section text\n".to_vec(), &[])
                    .expect("contents");
                let (link, _) = ham
                    .add_link(
                        context,
                        LinkPt::current(parent, i as u64),
                        LinkPt::current(child, 0),
                    )
                    .expect("link");
                ham.set_link_attribute_value(context, link, rel, Value::str("isPartOf"))
                    .expect("rel");
                next.push(child);
                count += 1;
            }
        }
        frontier = next;
    }
    (root, count)
}

/// Convenience: the always-true predicate.
pub fn true_pred() -> Predicate {
    Predicate::True
}

/// Convenience: the main context.
pub fn main_ctx() -> ContextId {
    MAIN_CONTEXT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_is_deterministic_and_sized() {
        let a = text(4096, 7);
        let b = text(4096, 7);
        assert_eq!(a, b);
        assert!(a.len() >= 4096);
        assert!(a.len() < 4096 + 128);
    }

    #[test]
    fn edits_change_exactly_lines() {
        let base = text(2048, 1);
        let edited = edit_lines(&base, 3, 99);
        assert_ne!(base, edited);
        let diffs = neptune_storage::diff::differences(&base, &edited);
        assert!(!diffs.is_empty() && diffs.len() <= 3);
    }

    #[test]
    fn versioned_node_has_requested_depth() {
        let mut ham = fresh_ham("lib-test");
        let (node, times) = versioned_node(&mut ham, MAIN_CONTEXT, 1024, 10, 2);
        assert_eq!(times.len(), 10);
        let (major, _) = ham.get_node_versions(MAIN_CONTEXT, node).unwrap();
        assert_eq!(major.len(), 11); // created + 10 checkins
    }

    #[test]
    fn attributed_graph_selectivity() {
        let mut ham = fresh_ham("lib-attr");
        attributed_graph(&mut ham, MAIN_CONTEXT, 100, 10);
        let pred = Predicate::parse("kind = k0").unwrap();
        let sg = ham
            .get_graph_query(
                MAIN_CONTEXT,
                Time::CURRENT,
                &pred,
                &Predicate::True,
                &[],
                &[],
            )
            .unwrap();
        assert_eq!(sg.nodes.len(), 10);
    }

    #[test]
    fn document_tree_counts() {
        let mut ham = fresh_ham("lib-tree");
        let (root, count) = document_tree(&mut ham, MAIN_CONTEXT, 3, 3);
        assert_eq!(count, 1 + 3 + 9);
        let sg = ham
            .linearize_graph(
                MAIN_CONTEXT,
                root,
                Time::CURRENT,
                &Predicate::True,
                &Predicate::True,
                &[],
                &[],
            )
            .unwrap();
        assert_eq!(sg.nodes.len(), 13);
    }
}
