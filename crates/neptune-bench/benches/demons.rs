//! E8 — demon dispatch overhead and the incremental-compile cascade.
//!
//! Paper §3/§5: demons invoke application code on HAM events; the flagship
//! use is "invoking an incremental compiler when a node which contains
//! code is modified". Measures modifyNode with no demon, a notify demon, a
//! node-marking demon, and a callback demon, plus the CASE compiler's
//! cascade over an import chain.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{fresh_ham, main_ctx};
use neptune_case::{compile_pass, install_recompile_demon, model, parse_module, CaseProject};
use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::Time;
use neptune_ham::Value;

fn bench_demon_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_modify_with_demon");
    let variants: &[(&str, Option<DemonSpec>)] = &[
        ("none", None),
        ("notify", Some(DemonSpec::notify("n", "changed"))),
        ("mark_node", Some(DemonSpec::mark_node("m", "dirty", true))),
        ("callback", Some(DemonSpec::call("c", "counter"))),
    ];
    for (label, demon) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(*label), demon, |b, demon| {
            let mut ham = fresh_ham("e8");
            ham.register_demon_callback("counter", |_| {});
            ham.set_graph_demon_value(main_ctx(), Event::NodeModified, demon.clone())
                .unwrap();
            let (node, t0) = ham.add_node(main_ctx(), true).unwrap();
            let mut t = ham
                .modify_node(main_ctx(), node, t0, b"v0\n".to_vec(), &[])
                .unwrap();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                t = ham
                    .modify_node(main_ctx(), node, t, format!("v{i}\n").into_bytes(), &[])
                    .unwrap();
                black_box(t)
            });
        });
    }
    group.finish();
}

/// Build a linear import chain M0 <- M1 <- ... <- M{n-1} and compile it.
fn chain_fixture(n: usize) -> (neptune_ham::Ham, CaseProject, Vec<neptune_ham::NodeIndex>) {
    let mut ham = fresh_ham("e8-chain");
    let project = CaseProject::new(main_ctx());
    let mut modules = Vec::new();
    let mut nodes = Vec::new();
    for i in 0..n {
        let src = if i == 0 {
            "DEFINITION MODULE M0;\nPROCEDURE P0;\nEND P0;\nEND M0.\n".to_string()
        } else {
            format!(
                "MODULE M{i};\nIMPORT M{};\nPROCEDURE P{i};\nEND P{i};\nEND M{i}.\n",
                i - 1
            )
        };
        let m = parse_module(&src).unwrap();
        let node = project.ingest_module(&mut ham, &m).unwrap().module;
        modules.push(m);
        nodes.push(node);
    }
    let pairs: Vec<_> = modules.iter().zip(nodes.iter().copied()).collect();
    project.link_imports(&mut ham, &pairs).unwrap();
    install_recompile_demon(&mut ham, main_ctx()).unwrap();
    let dirty = ham.get_attribute_index(main_ctx(), model::DIRTY).unwrap();
    for &node in &nodes {
        ham.set_node_attribute_value(main_ctx(), node, dirty, Value::Bool(true))
            .unwrap();
    }
    compile_pass(&mut ham, &project).unwrap();
    (ham, project, nodes)
}

fn bench_compile_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_compile_cascade");
    group.sample_size(10);
    for &chain in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("import_chain", chain),
            &chain,
            |b, &chain| {
                let (mut ham, project, nodes) = chain_fixture(chain);
                let mut round = 0u64;
                b.iter(|| {
                    // Interface edit at the root of the chain.
                    round += 1;
                    let opened = ham
                        .open_node(main_ctx(), nodes[0], Time::CURRENT, &[])
                        .unwrap();
                    let mut text = opened.contents.to_vec();
                    text.extend_from_slice(
                        format!("PROCEDURE Extra{round};\nEND Extra{round};\n").as_bytes(),
                    );
                    ham.modify_node(
                        main_ctx(),
                        nodes[0],
                        opened.current_time,
                        text,
                        &opened.link_pts,
                    )
                    .unwrap();
                    let stats = compile_pass(&mut ham, &project).unwrap();
                    black_box(stats.compiled.len())
                });
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_demon_dispatch, bench_compile_cascade
}
criterion_main!(benches);
