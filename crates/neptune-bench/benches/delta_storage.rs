//! E1 — backward-delta storage efficiency.
//!
//! Paper §3: *"we wanted effective storage of many versions of such data
//! without copying each individual item; for nodes this is provided by
//! backward deltas similar to RCS."* Measures (a) check-in latency as
//! history grows and (b) bytes stored by the delta archive vs the
//! full-copy baseline (printed as a table, recorded in EXPERIMENTS.md).

use neptune_bench::harness::{BatchSize, BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{edit_lines, text};
use neptune_storage::archive::Archive;

fn build_archive(bytes: usize, versions: usize) -> Archive {
    let mut contents = text(bytes, 1);
    let mut archive = Archive::new(contents.clone(), 1);
    for v in 1..versions {
        contents = edit_lines(&contents, 2, v as u64);
        archive.checkin(contents.clone(), (v + 1) as u64).unwrap();
    }
    archive
}

fn storage_table() {
    println!("\nE1: delta vs full-copy storage (node ~16 KiB, 2-line edits per version)");
    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "versions", "delta bytes", "full bytes", "ratio"
    );
    for versions in [10, 100, 500, 1000] {
        let archive = build_archive(16 * 1024, versions);
        let delta = archive.storage_bytes();
        let full = archive.full_copy_bytes().unwrap();
        println!(
            "{:>10} {:>14} {:>14} {:>7.1}x",
            versions,
            delta,
            full,
            full as f64 / delta as f64
        );
    }
    println!();
}

fn bench_checkin(c: &mut Criterion) {
    storage_table();
    let mut group = c.benchmark_group("e1_checkin");
    for &versions in &[10usize, 100, 1000] {
        // Check-in cost should be independent of history depth: only one
        // backward delta is computed per check-in.
        group.bench_with_input(
            BenchmarkId::new("into_history_of", versions),
            &versions,
            |b, &versions| {
                let archive = build_archive(16 * 1024, versions);
                let head = archive.head().to_vec();
                let next = edit_lines(&head, 2, 777);
                let t = archive.head_time();
                // The clone is setup, not the measured check-in.
                b.iter_batched(
                    || archive.clone(),
                    |mut a| {
                        a.checkin(next.clone(), t + 1).unwrap();
                        black_box(a.version_count())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("e1_checkin_by_size");
    for &kib in &[4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("node_kib", kib), &kib, |b, &kib| {
            let archive = build_archive(kib * 1024, 10);
            let next = edit_lines(archive.head(), 2, 778);
            let t = archive.head_time();
            b.iter_batched(
                || archive.clone(),
                |mut a| {
                    a.checkin(next.clone(), t + 1).unwrap();
                    black_box(a.version_count())
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_checkin
}
criterion_main!(benches);
