//! Read scaling: the version-materialization cache, zero-copy contents,
//! and concurrent readers.
//!
//! Four claims from the read-path work are measured here and emitted as
//! machine-readable JSON (`BENCH_read_scaling.json`, or the path named by
//! `NEPTUNE_BENCH_OUT`):
//!
//! 1. **Deep-history checkout.** Opening a version `k` steps back replays
//!    `k` backward deltas; the materialization cache (plus the archive's
//!    skip ladder) turns repeated access into a cache hit. Measured with the
//!    cache disabled (full replay) and enabled, at depth 100.
//! 2. **Zero-copy cache hits.** With `Arc<[u8]>` contents a cache hit is a
//!    refcount bump, not a memcpy, so hit cost must stay near-flat from
//!    1 KiB to 1 MiB contents (the contents-size axis).
//! 3. **Multi-reader throughput.** Read-only requests share the HAM under a
//!    reader lock, so aggregate `openNode` throughput should rise as reader
//!    clients are added instead of flat-lining behind a single mutex.
//! 4. **Round-trip amortization.** Pipelined and batched variants of the
//!    same workload show what removing the write→wait→read lockstep and
//!    the per-request gate/lock work buys (`batch_speedup`).
//! 5. **Lock-free reads under a foreign transaction.** The `lock_free`
//!    variant runs the pipelined workload while another client holds an
//!    open transaction the whole time. Before snapshot publication this
//!    was impossible — every read parked at the gate until the lock
//!    timeout; now readers serve from the published view at full speed,
//!    so `lock_free` must be at least as fast as lockstep calls at every
//!    reader count.
//!
//! With `NEPTUNE_BENCH_GUARD` set (ci.sh smoke runs), the derived numbers
//! double as a regression guard: the process exits nonzero if the cache
//! speedup, the reader-scaling ratio, or the lock-free-vs-lockstep ratio
//! falls below generous floors.

use std::hint::black_box;
use std::io::Write;
use std::time::{Duration, Instant};

use neptune_bench::harness::{BenchResult, BenchmarkId, Criterion, Throughput};
use neptune_bench::{fresh_ham, main_ctx, versioned_node};
use neptune_ham::types::{NodeIndex, Time};
use neptune_server::{serve, Client, Request, Response};

const DEPTH: usize = 100;
const OPS_PER_READER: usize = 100;
const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SIZES: [(usize, &str); 3] = [(1024, "1KiB"), (64 * 1024, "64KiB"), (1024 * 1024, "1MiB")];

fn bench_deep_checkout(c: &mut Criterion) {
    let mut ham = fresh_ham("rs-depth");
    let (node, times) = versioned_node(&mut ham, main_ctx(), 16 * 1024, DEPTH, 2);
    let oldest = times[0];

    let mut group = c.benchmark_group(format!("read_scaling_checkout_depth_{DEPTH}"));
    ham.set_version_cache_enabled(false);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let opened = ham.open_node(main_ctx(), node, oldest, &[]).unwrap();
            black_box(opened.contents.len())
        });
    });
    ham.set_version_cache_enabled(true);
    group.bench_function("cached", |b| {
        b.iter(|| {
            let opened = ham.open_node(main_ctx(), node, oldest, &[]).unwrap();
            black_box(opened.contents.len())
        });
    });
    group.finish();
}

/// Cache-hit cost across contents sizes: each iteration opens a historical
/// version already resident in the materialization cache. If contents were
/// still copied per read this would grow linearly with size; with shared
/// `Arc<[u8]>` buffers it stays near-flat.
fn bench_contents_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_scaling_contents_size");
    for &(bytes, label) in &SIZES {
        let mut ham = fresh_ham(&format!("rs-size-{label}"));
        let (node, times) = versioned_node(&mut ham, main_ctx(), bytes, 4, 1);
        let historical = times[1];
        // Warm the cache so the measured loop is hits only.
        ham.open_node(main_ctx(), node, historical, &[]).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let opened = ham.open_node(main_ctx(), node, historical, &[]).unwrap();
                black_box(opened.contents.len())
            });
        });
    }
    group.finish();
}

fn open_req(node: NodeIndex) -> Request {
    Request::OpenNode {
        context: main_ctx(),
        node,
        time: Time::CURRENT,
        attrs: vec![],
    }
}

/// Reader scaling over real sockets, three wire disciplines per reader
/// count: lockstep `call` per read, one pipelined flight of N frames, and
/// one `Batch` frame. Connections persist across iterations — connect cost
/// is not what's being measured.
fn bench_reader_scaling(c: &mut Criterion) {
    let mut ham = fresh_ham("rs-readers");
    let (node, _) = versioned_node(&mut ham, main_ctx(), 16 * 1024, 20, 2);
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("read_scaling_readers");
    for &readers in &READER_COUNTS {
        let mut clients: Vec<Client> = (0..readers)
            .map(|_| Client::connect(addr).unwrap())
            .collect();
        group.throughput(Throughput::Elements((readers * OPS_PER_READER) as u64));

        group.bench_with_input(BenchmarkId::new("readers", readers), &readers, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in &mut clients {
                        scope.spawn(|| {
                            for _ in 0..OPS_PER_READER {
                                let opened = client
                                    .open_node(main_ctx(), node, Time::CURRENT, vec![])
                                    .unwrap();
                                black_box(opened.contents.len());
                            }
                        });
                    }
                });
            });
        });

        group.bench_with_input(BenchmarkId::new("pipelined", readers), &readers, |b, _| {
            let requests = vec![open_req(node); OPS_PER_READER];
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in &mut clients {
                        scope.spawn(|| {
                            let responses = client.pipeline(&requests).unwrap();
                            black_box(responses.len());
                        });
                    }
                });
            });
        });

        group.bench_with_input(BenchmarkId::new("batched", readers), &readers, |b, _| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in &mut clients {
                        scope.spawn(|| {
                            let responses =
                                client.batch(vec![open_req(node); OPS_PER_READER]).unwrap();
                            for r in &responses {
                                assert!(matches!(r, Response::Opened { .. }));
                            }
                            black_box(responses.len());
                        });
                    }
                });
            });
        });

        group.bench_with_input(BenchmarkId::new("lock_free", readers), &readers, |b, _| {
            // A foreign client holds an open transaction for the entire
            // measurement. Readers are not the owner, so every read is
            // served lock-free from the last published snapshot — before
            // this existed, each of these flights would park at the gate
            // until the lock timeout.
            let mut holder = Client::connect(addr).unwrap();
            holder.begin_transaction().unwrap();
            let requests = vec![open_req(node); OPS_PER_READER];
            b.iter(|| {
                std::thread::scope(|scope| {
                    for client in &mut clients {
                        scope.spawn(|| {
                            let responses = client.pipeline(&requests).unwrap();
                            for r in &responses {
                                assert!(matches!(r, Response::Opened { .. }));
                            }
                            black_box(responses.len());
                        });
                    }
                });
            });
            holder.abort_transaction().unwrap();
        });
    }
    group.finish();
    server.stop();
}

/// Outcome of the paired tracing-overhead measurement.
struct TracingOverhead {
    /// Best-of-N ns per read with causal tracing on.
    traced_ns: f64,
    /// Best-of-N ns per read with the obs kill-switch thrown.
    untraced_ns: f64,
    /// Rendered exemplar traces (client → server → view → storage chains)
    /// captured during the traced rounds.
    exemplars: Vec<String>,
}

/// Causal-tracing overhead on the lock-free read path: the same pipelined
/// flight with tracing enabled versus disabled via the registry
/// kill-switch. Rounds interleave the two arms so cache/thermal drift hits
/// both equally, and each arm keeps its best time — the minimum is the
/// noise-free estimate of intrinsic cost, which is the overhead number the
/// report records. The disabled arm also drops the 17-byte wire prefix, so
/// the ratio honestly includes the propagation bytes, not just the
/// in-process bookkeeping.
fn measure_tracing_overhead() -> TracingOverhead {
    let mut ham = fresh_ham("rs-overhead");
    let (node, _) = versioned_node(&mut ham, main_ctx(), 16 * 1024, 20, 2);
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    // A foreign transaction held open the whole time forces every read
    // through the published-snapshot path — the hot path the overhead
    // budget protects.
    let mut holder = Client::connect(server.addr()).unwrap();
    holder.begin_transaction().unwrap();

    let requests = vec![open_req(node); OPS_PER_READER];
    let (flights, rounds) = if neptune_bench::harness::smoke_mode() {
        (2, 5)
    } else {
        (5, 9)
    };
    let flight = |client: &mut Client| {
        let start = std::time::Instant::now();
        for _ in 0..flights {
            let responses = client.pipeline(&requests).unwrap();
            black_box(responses.len());
        }
        start.elapsed().as_nanos() as f64 / (flights * OPS_PER_READER) as f64
    };
    for _ in 0..3 {
        flight(&mut client);
    }
    let registry = neptune_obs::registry();
    let (mut traced_ns, mut untraced_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        registry.set_enabled(true);
        traced_ns = traced_ns.min(flight(&mut client));
        registry.set_enabled(false);
        untraced_ns = untraced_ns.min(flight(&mut client));
    }
    registry.set_enabled(true);

    let exemplars: Vec<String> = neptune_obs::recorder()
        .dump()
        .iter()
        .filter(|t| {
            t.root_name == "client.call"
                && t.root_detail == "OpenNode"
                && t.spans.iter().any(|s| s.name == "server.rpc")
        })
        .take(2)
        .map(|t| neptune_obs::render_trace_json(t))
        .collect();

    holder.abort_transaction().unwrap();
    server.stop();
    TracingOverhead {
        traced_ns,
        untraced_ns,
        exemplars,
    }
}

/// Paired median-of-rounds estimate of the round-trip amortization ratio
/// (the number behind the single-core guard fallback).
///
/// The criterion-derived `batch_speedup` divides two medians measured in
/// separate benchmark groups — in smoke mode each side is a handful of
/// iterations, so near the 1.1 floor the quotient sits inside run-to-run
/// jitter and the guard flaked. Here each round runs one lockstep flight
/// and one batched flight back-to-back on the same connection and yields
/// its own ratio; a scheduler stall or noisy neighbor then skews one
/// round, and the median round discards it. The floor itself stays at
/// 1.1 — the measurement got tighter, not the bar lower.
fn measure_batch_ratio() -> f64 {
    let mut ham = fresh_ham("rs-batch-floor");
    let (node, _) = versioned_node(&mut ham, main_ctx(), 16 * 1024, 20, 2);
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let requests = vec![open_req(node); OPS_PER_READER];

    let lockstep_flight = |client: &mut Client| {
        let start = Instant::now();
        for _ in 0..OPS_PER_READER {
            let opened = client
                .open_node(main_ctx(), node, Time::CURRENT, vec![])
                .unwrap();
            black_box(opened.contents.len());
        }
        start.elapsed()
    };
    let batched_flight = |client: &mut Client, requests: &[Request]| {
        let start = Instant::now();
        let responses = client.batch(requests.to_vec()).unwrap();
        black_box(responses.len());
        start.elapsed()
    };

    for _ in 0..2 {
        lockstep_flight(&mut client);
        batched_flight(&mut client, &requests);
    }
    let rounds = if neptune_bench::harness::smoke_mode() {
        9
    } else {
        15
    };
    let mut ratios: Vec<f64> = (0..rounds)
        .map(|_| {
            let lockstep = lockstep_flight(&mut client);
            let batched = batched_flight(&mut client, &requests);
            lockstep.as_nanos() as f64 / batched.as_nanos().max(1) as f64
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let median = ratios[(ratios.len() - 1) / 2];
    server.stop();
    median
}

fn find<'a>(results: &'a [BenchResult], needle: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.label.contains(needle))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Aggregate reads/sec for a reader-scaling variant at a given count.
fn rate(results: &[BenchResult], variant: &str, readers: usize) -> f64 {
    find(results, &format!("{variant}/{readers}"))
        .filter(|r| r.ns_per_iter > 0.0)
        .map(|r| (readers * OPS_PER_READER) as f64 / (r.ns_per_iter / 1e9))
        .unwrap_or(0.0)
}

fn write_report(
    c: &Criterion,
    overhead: &TracingOverhead,
    batch_ratio_median: f64,
) -> (f64, f64, f64, f64) {
    let results = c.results();
    let mut out = String::from("{\n  \"bench\": \"read_scaling\",\n");
    out.push_str(&format!(
        "  \"smoke\": {},\n",
        neptune_bench::harness::smoke_mode()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let metrics = r
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {v:.1}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \"metrics\": {{{metrics}}}}}{}\n",
            json_escape(&r.label),
            r.ns_per_iter,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"derived\": {\n");
    // Registry-wide derived numbers: vcache hit ratio over the whole run,
    // mean transaction-gate wait (zero in this read-only workload unless a
    // writer contends).
    let snapshot = neptune_obs::registry().flat_snapshot();
    let flat = |key: &str| snapshot.get(key).copied().unwrap_or(0.0);
    let hits = flat("neptune_storage_vcache_hits_total");
    let misses = flat("neptune_storage_vcache_misses_total");
    let hit_ratio = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let gate_count = flat("neptune_server_gate_wait_ns_count");
    let mean_gate_wait = if gate_count > 0.0 {
        flat("neptune_server_gate_wait_ns_sum") / gate_count
    } else {
        0.0
    };
    out.push_str(&format!("    \"cache_hit_ratio\": {hit_ratio:.4},\n"));
    out.push_str(&format!(
        "    \"mean_gate_wait_ns\": {mean_gate_wait:.1},\n"
    ));
    let speedup = match (find(results, "uncached"), find(results, "/cached")) {
        (Some(u), Some(ca)) if ca.ns_per_iter > 0.0 => u.ns_per_iter / ca.ns_per_iter,
        _ => 0.0,
    };
    out.push_str(&format!(
        "    \"checkout_cache_speedup_depth_{DEPTH}\": {speedup:.2},\n"
    ));
    // Cache-hit cost by contents size: near-flat when hits are zero-copy.
    out.push_str("    \"cache_hit_ns_by_size\": {\n");
    for (i, &(_, label)) in SIZES.iter().enumerate() {
        let ns = find(results, &format!("contents_size/{label}"))
            .map(|r| r.ns_per_iter)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "      \"{label}\": {ns:.1}{}\n",
            if i + 1 < SIZES.len() { "," } else { "" }
        ));
    }
    out.push_str("    },\n");
    // Round-trip amortization at one reader: the same 100 reads, batched
    // into one frame versus 100 lockstep round trips.
    let batch_speedup = {
        let sequential = rate(results, "readers", 1);
        let batched = rate(results, "batched", 1);
        if sequential > 0.0 {
            batched / sequential
        } else {
            0.0
        }
    };
    out.push_str(&format!("    \"batch_speedup\": {batch_speedup:.2},\n"));
    // The paired median-of-rounds variant of the same ratio — the number
    // the single-core guard fallback checks (see measure_batch_ratio).
    out.push_str(&format!(
        "    \"batch_speedup_paired_median\": {batch_ratio_median:.2},\n"
    ));
    // Lock-free serving: reads completed without touching the gate or the
    // HAM lock, and the worst-case ratio of the under-foreign-transaction
    // pipelined variant to plain lockstep calls (must stay >= 1: a read
    // path that waits on writers again would crater this).
    out.push_str(&format!(
        "    \"reads_lockfree_total\": {:.0},\n",
        flat("neptune_server_reads_lockfree_total")
    ));
    // High-water mark, not the `active_connections` occupancy gauge: the
    // bench keeps its connections open across before/after snapshots, so
    // the occupancy delta cancels to zero and under-reports.
    out.push_str(&format!(
        "    \"peak_connections\": {:.0},\n",
        flat("neptune_server_peak_connections")
    ));
    let lock_free_floor = READER_COUNTS
        .iter()
        .map(|&n| {
            let lockstep = rate(results, "readers", n);
            if lockstep > 0.0 {
                rate(results, "lock_free", n) / lockstep
            } else {
                0.0
            }
        })
        .fold(f64::INFINITY, f64::min);
    out.push_str(&format!(
        "    \"lock_free_vs_lockstep_min_ratio\": {lock_free_floor:.2},\n"
    ));
    for variant in ["pipelined", "batched", "lock_free"] {
        out.push_str(&format!("    \"{variant}_reads_per_sec_by_readers\": {{\n"));
        for (i, &readers) in READER_COUNTS.iter().enumerate() {
            out.push_str(&format!(
                "      \"{readers}\": {:.0}{}\n",
                rate(results, variant, readers),
                if i + 1 < READER_COUNTS.len() { "," } else { "" }
            ));
        }
        out.push_str("    },\n");
    }
    out.push_str("    \"reads_per_sec_by_readers\": {\n");
    for (i, &readers) in READER_COUNTS.iter().enumerate() {
        out.push_str(&format!(
            "      \"{readers}\": {:.0}{}\n",
            rate(results, "readers", readers),
            if i + 1 < READER_COUNTS.len() { "," } else { "" }
        ));
    }
    out.push_str("    },\n");
    // Causal-tracing cost on the lock-free read path (paired best-of-N;
    // the recorded number behind the DESIGN.md §10 overhead budget — the
    // guard enforces the budget via the 0.95 lock-free throughput floor).
    let overhead_ratio = if overhead.untraced_ns > 0.0 && overhead.untraced_ns.is_finite() {
        overhead.traced_ns / overhead.untraced_ns
    } else {
        0.0
    };
    out.push_str("    \"tracing_overhead\": {\n");
    out.push_str(&format!(
        "      \"traced_ns_per_read\": {:.1},\n",
        overhead.traced_ns
    ));
    out.push_str(&format!(
        "      \"untraced_ns_per_read\": {:.1},\n",
        overhead.untraced_ns
    ));
    out.push_str(&format!(
        "      \"tracing_overhead_ratio\": {overhead_ratio:.4}\n"
    ));
    out.push_str("    },\n");
    // The exemplars are already JSON (render_trace_json), embedded raw.
    out.push_str("    \"exemplar_traces\": [\n");
    for (i, t) in overhead.exemplars.iter().enumerate() {
        out.push_str(&format!(
            "      {t}{}\n",
            if i + 1 < overhead.exemplars.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("    ]\n  }\n}\n");

    let path = std::env::var("NEPTUNE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_read_scaling.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create bench report");
    file.write_all(out.as_bytes()).expect("write bench report");
    println!("wrote {path}");
    println!("checkout cache speedup at depth {DEPTH}: {speedup:.1}x");
    println!(
        "batch speedup at 1 reader: {batch_speedup:.2}x (paired median {batch_ratio_median:.2}x)"
    );
    let scaling = if rate(results, "readers", 1) > 0.0 {
        rate(results, "readers", 8) / rate(results, "readers", 1)
    } else {
        0.0
    };
    println!("8-reader vs 1-reader sequential throughput: {scaling:.2}x");
    println!("lock-free vs lockstep, worst reader count: {lock_free_floor:.2}x");
    println!(
        "tracing overhead on lock-free reads: {:.0}ns traced vs {:.0}ns untraced ({:.1}%)",
        overhead.traced_ns,
        overhead.untraced_ns,
        (overhead_ratio - 1.0) * 100.0
    );
    (speedup, scaling, batch_speedup, lock_free_floor)
}

/// Regression floors for CI smoke runs (`NEPTUNE_BENCH_GUARD` set):
/// generous enough not to flake on a noisy shared runner, tight enough to
/// catch a reintroduced per-read copy or a serialized read path.
///
/// The reader-scaling floor needs CPUs to scale onto: on a single-core
/// runner there is never an idle core for extra readers to reclaim, so the
/// 8-vs-1 ratio is physically pinned near 1 for any wire discipline. There
/// the guard checks the round-trip amortization win instead — batching
/// must still beat lockstep calls, which is what a reintroduced per-read
/// copy or per-element lock acquisition would break. That fallback checks
/// the *paired median-of-rounds* ratio ([`measure_batch_ratio`]), not the
/// quotient of two separately-measured medians: back-to-back flights on
/// one connection make each round its own comparison, so the 1.1 floor
/// sits against a tight number instead of smoke-run jitter. With cores to
/// spare, lock-free snapshot reads raise the bar: 8 readers must reach at
/// least `min(cores, 8)/2`× one reader (4× on an 8-core runner — the old
/// 2× floor was the single-RwLock ceiling this PR removed).
///
/// The lock-free floor is core-count independent: pipelined reads under a
/// foreign open transaction must never be slower than lockstep calls with
/// no writer at all (the pre-snapshot behavior was a gate timeout, i.e.
/// roughly zero throughput).
fn guard(
    speedup: f64,
    scaling: f64,
    batch_ratio_median: f64,
    lock_free_floor: f64,
    overhead: &TracingOverhead,
) {
    if std::env::var("NEPTUNE_BENCH_GUARD").map_or(true, |v| v.is_empty()) {
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut failed = false;
    if speedup < 10.0 {
        eprintln!("GUARD FAIL: checkout_cache_speedup_depth_{DEPTH} = {speedup:.2} < 10");
        failed = true;
    }
    if cores >= 2 {
        let floor = (cores.min(8) as f64 / 2.0).max(2.0);
        if scaling < floor {
            eprintln!(
                "GUARD FAIL: reads_per_sec_by_readers 8-vs-1 ratio = {scaling:.2} < \
                 {floor:.1} ({cores} cores)"
            );
            failed = true;
        }
    } else if batch_ratio_median < 1.1 {
        eprintln!(
            "GUARD FAIL: single-core runner and batch_speedup_paired_median = \
             {batch_ratio_median:.2} < 1.1"
        );
        failed = true;
    }
    // PR 7's floor was 1.0 (lock-free pipelined reads under a foreign
    // transaction at least match lockstep with no writer). The scaling
    // benches now run with the causal tracer always on, so the floor check
    // itself proves tracing-enabled throughput: 1.0 minus the 5% tracing
    // allowance from DESIGN.md §10, minus the ±5% run-to-run jitter a
    // single-core smoke run shows at N=1 (observed 0.93–1.06 across
    // back-to-back runs). The regression this floor defends against —
    // reads under a foreign transaction waiting on the lock — measured
    // ~0.1x before PR 7, so 0.90 loses none of its power.
    if lock_free_floor < 0.90 {
        eprintln!(
            "GUARD FAIL: lock_free_vs_lockstep_min_ratio = {lock_free_floor:.2} < 0.90 \
             (PR 7 floor 1.0, minus the 5% tracing allowance and smoke-run jitter); \
             reads under a foreign transaction are waiting on a lock again"
        );
        failed = true;
    }
    // The paired traced/untraced measurement is the recorded overhead
    // number (3–7% on an idle single-core container). The ceiling adds
    // headroom for runner noise; what it catches is a real cost
    // regression on the span hot path — a reintroduced per-span
    // allocation pair measured ~1.10, a per-span syscall would be worse.
    if overhead.untraced_ns > 0.0 && overhead.untraced_ns.is_finite() {
        let ratio = overhead.traced_ns / overhead.untraced_ns;
        if ratio > 1.15 {
            eprintln!(
                "GUARD FAIL: tracing_overhead_ratio = {ratio:.3} > 1.15 on the \
                 lock-free read path ({:.0}ns traced vs {:.0}ns untraced)",
                overhead.traced_ns, overhead.untraced_ns
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench guard passed (cache speedup {speedup:.1}x, reader scaling {scaling:.2}x, \
         paired batch speedup {batch_ratio_median:.2}x, lock-free/lockstep \
         {lock_free_floor:.2}x, {cores} core(s))"
    );
}

fn main() {
    // Start from zeroed counters so the emitted snapshot reflects this run
    // only (the registry is process-global).
    neptune_obs::registry().reset();
    let mut criterion = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    bench_deep_checkout(&mut criterion);
    bench_contents_size(&mut criterion);
    bench_reader_scaling(&mut criterion);
    let overhead = measure_tracing_overhead();
    let batch_ratio_median = measure_batch_ratio();
    let (speedup, scaling, _batch_speedup, lock_free_floor) =
        write_report(&criterion, &overhead, batch_ratio_median);
    guard(
        speedup,
        scaling,
        batch_ratio_median,
        lock_free_floor,
        &overhead,
    );
}
