//! Read scaling: the version-materialization cache and concurrent readers.
//!
//! Two claims from the concurrency work are measured here and emitted as
//! machine-readable JSON (`BENCH_read_scaling.json`, or the path named by
//! `NEPTUNE_BENCH_OUT`):
//!
//! 1. **Deep-history checkout.** Opening a version `k` steps back replays
//!    `k` backward deltas; the materialization cache (plus archive
//!    keyframes) turns repeated access into a cache hit. Measured with the
//!    cache disabled (full replay) and enabled, at depth 100.
//! 2. **Multi-reader throughput.** Read-only requests share the HAM under a
//!    reader lock, so aggregate `openNode` throughput should rise as reader
//!    clients are added instead of flat-lining behind a single mutex.

use std::hint::black_box;
use std::io::Write;
use std::time::Duration;

use neptune_bench::harness::{BenchResult, BenchmarkId, Criterion, Throughput};
use neptune_bench::{fresh_ham, main_ctx, versioned_node};
use neptune_ham::types::Time;
use neptune_server::{serve, Client};

const DEPTH: usize = 100;
const OPS_PER_READER: usize = 100;
const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn bench_deep_checkout(c: &mut Criterion) {
    let mut ham = fresh_ham("rs-depth");
    let (node, times) = versioned_node(&mut ham, main_ctx(), 16 * 1024, DEPTH, 2);
    let oldest = times[0];

    let mut group = c.benchmark_group(format!("read_scaling_checkout_depth_{DEPTH}"));
    ham.set_version_cache_enabled(false);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let opened = ham.open_node(main_ctx(), node, oldest, &[]).unwrap();
            black_box(opened.contents.len())
        });
    });
    ham.set_version_cache_enabled(true);
    group.bench_function("cached", |b| {
        b.iter(|| {
            let opened = ham.open_node(main_ctx(), node, oldest, &[]).unwrap();
            black_box(opened.contents.len())
        });
    });
    group.finish();
}

fn bench_reader_scaling(c: &mut Criterion) {
    let mut ham = fresh_ham("rs-readers");
    let (node, _) = versioned_node(&mut ham, main_ctx(), 16 * 1024, 20, 2);
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let addr = server.addr();

    let mut group = c.benchmark_group("read_scaling_readers");
    for &readers in &READER_COUNTS {
        group.throughput(Throughput::Elements((readers * OPS_PER_READER) as u64));
        group.bench_with_input(
            BenchmarkId::new("readers", readers),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    let threads: Vec<_> = (0..readers)
                        .map(|_| {
                            std::thread::spawn(move || {
                                let mut c = Client::connect(addr).unwrap();
                                for _ in 0..OPS_PER_READER {
                                    let opened = c
                                        .open_node(main_ctx(), node, Time::CURRENT, vec![])
                                        .unwrap();
                                    black_box(opened.contents.len());
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                });
            },
        );
    }
    group.finish();
    server.stop();
}

fn find<'a>(results: &'a [BenchResult], needle: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.label.contains(needle))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_report(c: &Criterion) {
    let results = c.results();
    let mut out = String::from("{\n  \"bench\": \"read_scaling\",\n");
    out.push_str(&format!(
        "  \"smoke\": {},\n",
        neptune_bench::harness::smoke_mode()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let metrics = r
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {v:.1}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \"metrics\": {{{metrics}}}}}{}\n",
            json_escape(&r.label),
            r.ns_per_iter,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"derived\": {\n");
    // Registry-wide derived numbers: vcache hit ratio over the whole run,
    // mean transaction-gate wait (zero in this read-only workload unless a
    // writer contends).
    let snapshot = neptune_obs::registry().flat_snapshot();
    let flat = |key: &str| snapshot.get(key).copied().unwrap_or(0.0);
    let hits = flat("neptune_storage_vcache_hits_total");
    let misses = flat("neptune_storage_vcache_misses_total");
    let hit_ratio = if hits + misses > 0.0 {
        hits / (hits + misses)
    } else {
        0.0
    };
    let gate_count = flat("neptune_server_gate_wait_ns_count");
    let mean_gate_wait = if gate_count > 0.0 {
        flat("neptune_server_gate_wait_ns_sum") / gate_count
    } else {
        0.0
    };
    out.push_str(&format!("    \"cache_hit_ratio\": {hit_ratio:.4},\n"));
    out.push_str(&format!(
        "    \"mean_gate_wait_ns\": {mean_gate_wait:.1},\n"
    ));
    let speedup = match (find(results, "uncached"), find(results, "/cached")) {
        (Some(u), Some(ca)) if ca.ns_per_iter > 0.0 => u.ns_per_iter / ca.ns_per_iter,
        _ => 0.0,
    };
    out.push_str(&format!(
        "    \"checkout_cache_speedup_depth_{DEPTH}\": {speedup:.2},\n"
    ));
    out.push_str("    \"reads_per_sec_by_readers\": {\n");
    for (i, &readers) in READER_COUNTS.iter().enumerate() {
        let rate = find(results, &format!("readers/{readers}"))
            .map(|r| (readers * OPS_PER_READER) as f64 / (r.ns_per_iter / 1e9))
            .unwrap_or(0.0);
        out.push_str(&format!(
            "      \"{readers}\": {rate:.0}{}\n",
            if i + 1 < READER_COUNTS.len() { "," } else { "" }
        ));
    }
    out.push_str("    }\n  }\n}\n");

    let path = std::env::var("NEPTUNE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_read_scaling.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create bench report");
    file.write_all(out.as_bytes()).expect("write bench report");
    println!("wrote {path}");
    println!("checkout cache speedup at depth {DEPTH}: {speedup:.1}x");
}

fn main() {
    // Start from zeroed counters so the emitted snapshot reflects this run
    // only (the registry is process-global).
    neptune_obs::registry().reset();
    let mut criterion = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);
    bench_deep_checkout(&mut criterion);
    bench_reader_scaling(&mut criterion);
    write_report(&criterion);
}
