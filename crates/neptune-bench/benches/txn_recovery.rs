//! E5 — transaction commit/abort cost and crash recovery.
//!
//! Paper §2.2: Neptune "is transaction-oriented and provides for complete
//! recovery from any aborted transaction"; the HAM provides
//! "transaction-based crash recovery". Measures commit latency by
//! transaction size, abort (rollback) latency, and WAL replay time by the
//! number of committed transactions since the last checkpoint.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{bench_dir, fresh_ham, main_ctx};
use neptune_ham::types::{Machine, Protections};
use neptune_ham::{Ham, Value};

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_commit");
    for &ops in &[1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("ops_per_txn", ops), &ops, |b, &ops| {
            let mut ham = fresh_ham("e5-commit");
            let attr = ham.get_attribute_index(main_ctx(), "n").unwrap();
            let (node, _) = ham.add_node(main_ctx(), true).unwrap();
            b.iter(|| {
                ham.begin_transaction().unwrap();
                for i in 0..ops {
                    ham.set_node_attribute_value(main_ctx(), node, attr, Value::Int(i as i64))
                        .unwrap();
                }
                ham.commit_transaction().unwrap();
            });
        });
    }
    group.finish();
}

fn bench_abort(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_abort");
    for &ops in &[10usize, 100] {
        group.bench_with_input(BenchmarkId::new("ops_rolled_back", ops), &ops, |b, &ops| {
            let mut ham = fresh_ham("e5-abort");
            b.iter(|| {
                ham.begin_transaction().unwrap();
                for _ in 0..ops {
                    ham.add_node(main_ctx(), true).unwrap();
                }
                ham.abort_transaction().unwrap();
                black_box(ham.graph(main_ctx()).unwrap().live_node_count())
            });
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_recovery");
    for &txns in &[10usize, 100, 1000] {
        // Build a graph directory with `txns` committed transactions past
        // the checkpoint, then measure open_graph (snapshot + WAL replay).
        let dir = bench_dir("e5-recover");
        let (mut ham, pid, _) = Ham::create_graph(&dir, Protections::DEFAULT).unwrap();
        let attr = ham.get_attribute_index(main_ctx(), "v").unwrap();
        let (node, _) = ham.add_node(main_ctx(), true).unwrap();
        ham.checkpoint().unwrap();
        for i in 0..txns {
            ham.set_node_attribute_value(main_ctx(), node, attr, Value::Int(i as i64))
                .unwrap();
        }
        drop(ham); // crash
        group.bench_with_input(BenchmarkId::new("replay_txns", txns), &txns, |b, _| {
            b.iter(|| {
                let (ham, _) = Ham::open_graph(pid, &Machine::local(), &dir).unwrap();
                black_box(ham.graph(main_ctx()).unwrap().now())
            });
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_commit, bench_abort, bench_recovery
}
criterion_main!(benches);
