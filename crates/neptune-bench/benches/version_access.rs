//! E2 — "rapid access to any version of a hypergraph".
//!
//! Backward deltas make the current version O(size) to check out while a
//! version k steps back applies k deltas. Measures `openNode` at the head,
//! the midpoint, and the oldest version across history depths — with the
//! version-materialization cache on (repeat access is a hit) and off (every
//! access replays the full delta chain).

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{fresh_ham, main_ctx, versioned_node};
use neptune_ham::types::Time;

fn bench_version_access(c: &mut Criterion) {
    for &depth in &[10usize, 100, 1000] {
        let mut ham = fresh_ham("e2");
        let (node, times) = versioned_node(&mut ham, main_ctx(), 16 * 1024, depth, 2);
        let mut group = c.benchmark_group(format!("e2_open_node_depth_{depth}"));
        let positions = [
            ("head", Time::CURRENT),
            ("mid", times[depth / 2]),
            ("oldest", times[0]),
        ];
        for (name, t) in positions {
            group.bench_with_input(BenchmarkId::from_parameter(name), &t, |b, &t| {
                b.iter(|| {
                    let opened = ham.open_node(main_ctx(), node, t, &[]).unwrap();
                    black_box(opened.contents.len())
                });
            });
        }
        // The same deep access with the cache off: every iteration pays the
        // full backward-delta replay, the pre-cache behaviour.
        ham.set_version_cache_enabled(false);
        group.bench_with_input(
            BenchmarkId::from_parameter("oldest_uncached"),
            &times[0],
            |b, &t| {
                b.iter(|| {
                    let opened = ham.open_node(main_ctx(), node, t, &[]).unwrap();
                    black_box(opened.contents.len())
                });
            },
        );
        ham.set_version_cache_enabled(true);
        group.finish();
    }
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1200))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_version_access
}
criterion_main!(benches);
