//! E3 — `getGraphQuery` associative access.
//!
//! Paper §3's query example (`document = requirements`) over graphs of
//! increasing size and predicate selectivity, plus the ablation of the
//! attribute value index (indexed vs full scan) called out in DESIGN.md.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{attributed_graph, fresh_ham, main_ctx};
use neptune_ham::types::Time;
use neptune_ham::Predicate;

fn bench_query_scaling(c: &mut Criterion) {
    // Selectivity fixed at 10% (kinds = 10); graph size varies.
    let mut group = c.benchmark_group("e3_query_by_size");
    for &n in &[100usize, 1_000, 10_000] {
        let mut ham = fresh_ham("e3-size");
        attributed_graph(&mut ham, main_ctx(), n, 10);
        let pred = Predicate::parse("kind = k0").unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let sg = ham
                    .get_graph_query(main_ctx(), Time::CURRENT, &pred, &Predicate::True, &[], &[])
                    .unwrap();
                black_box(sg.nodes.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| {
                let sg = ham
                    .get_graph_query_scan(
                        main_ctx(),
                        Time::CURRENT,
                        &pred,
                        &Predicate::True,
                        &[],
                        &[],
                    )
                    .unwrap();
                black_box(sg.nodes.len())
            });
        });
    }
    group.finish();
}

fn bench_query_selectivity(c: &mut Criterion) {
    // Size fixed at 2000; selectivity varies via the kinds parameter.
    let mut group = c.benchmark_group("e3_query_by_selectivity");
    for &(kinds, label) in &[(100usize, "1pct"), (10, "10pct"), (1, "100pct")] {
        let mut ham = fresh_ham("e3-sel");
        attributed_graph(&mut ham, main_ctx(), 2_000, kinds);
        let pred = Predicate::parse("kind = k0").unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", label), &kinds, |b, _| {
            b.iter(|| {
                let sg = ham
                    .get_graph_query(main_ctx(), Time::CURRENT, &pred, &Predicate::True, &[], &[])
                    .unwrap();
                black_box(sg.nodes.len())
            });
        });
    }
    group.finish();
}

fn bench_historical_query(c: &mut Criterion) {
    // Historical queries cannot use the (current-only) index.
    let mut group = c.benchmark_group("e3_query_historical");
    let mut ham = fresh_ham("e3-hist");
    attributed_graph(&mut ham, main_ctx(), 2_000, 10);
    let t_then = ham.graph(main_ctx()).unwrap().now();
    // Touch the graph afterwards so t_then is genuinely historical.
    attributed_graph(&mut ham, main_ctx(), 10, 10);
    let pred = Predicate::parse("kind = k0").unwrap();
    group.bench_function("at_past_time", |b| {
        b.iter(|| {
            let sg = ham
                .get_graph_query(main_ctx(), t_then, &pred, &Predicate::True, &[], &[])
                .unwrap();
            black_box(sg.nodes.len())
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_query_scaling, bench_query_selectivity, bench_historical_query
}
criterion_main!(benches);
