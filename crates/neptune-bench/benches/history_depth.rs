//! History depth: sublinear historical checkout over deep version
//! histories.
//!
//! The flat every-16th keyframe scheme this PR replaced made cold
//! checkout cost grow linearly with history depth: version `v` of an
//! `n`-version archive cost `O(n - v)` backward-delta applications on a
//! fresh process. The hierarchical skip ladder (log-spaced skip-deltas at
//! 16/256/4096/65536-version strides, persisted with the archive) bounds
//! any checkout to `O(log n)` applications instead. This bench proves the
//! bound empirically and guards it against regression:
//!
//! 1. **Depth axis.** Archives of 10^3..10^5 versions (10^6 added outside
//!    smoke mode) are checked out under four access patterns: `head_local`
//!    (versions within 16 of head), `uniform_random` (any version, warm
//!    anchor cache), `cold_oldest` (anchor cache cleared every iteration,
//!    then the oldest version — the worst case a fresh process sees), and
//!    `adversarial_alternating` (a golden-ratio stride that bounces
//!    between distant regions to defeat anchor-cache locality).
//! 2. **Logarithmic replay depth.** The per-bench delta of the
//!    `neptune_storage_delta_replay_depth` histogram gives the mean number
//!    of delta applications per checkout. With the ladder it is ~25 at
//!    both 10^3 and 10^5 (the guard requires the ratio stay <= 4x and the
//!    absolute depth stay far below linear).
//! 3. **Linear baseline.** `uncached_linear` runs `checkout_uncached` on
//!    the oldest version — the pre-ladder unit-delta walk — and must be
//!    demonstrably worse at depth 10^5.
//! 4. **Bounded anchor memory.** The `neptune_storage_index_anchor_bytes`
//!    gauge must stay within the per-archive byte budget however
//!    adversarial the access pattern.
//!
//! Results land in `BENCH_history_depth.json` (or `NEPTUNE_BENCH_OUT`);
//! with `NEPTUNE_BENCH_GUARD` set the derived ratios become hard floors
//! and the process exits nonzero on regression.

use std::hint::black_box;
use std::io::Write;
use std::time::Duration;

use neptune_bench::harness::{BenchResult, Criterion};
use neptune_storage::archive::{Archive, DEFAULT_ANCHOR_BUDGET};
use neptune_storage::testutil::XorShift;

/// History depths exercised in smoke mode; `FULL_DEPTH` joins outside it.
const DEPTHS: [usize; 3] = [1_000, 10_000, 100_000];
const FULL_DEPTH: usize = 1_000_000;
/// The guard compares this depth pair (the acceptance criterion: cost at
/// 10^5 within 4x of 10^3 on the same run).
const GUARD_LO: usize = 1_000;
const GUARD_HI: usize = 100_000;
/// `checkout_uncached` applies one delta per version walked, so the linear
/// baseline is capped here to keep full (non-smoke) runs bounded.
const UNCACHED_MAX_DEPTH: usize = 100_000;

/// Contents for version `v`: three short lines of which exactly one
/// varies, so every consecutive (and every skip-level) delta is a single
/// line replacement and the bench measures ladder traversal, not diff
/// size.
fn version_text(v: u64) -> Vec<u8> {
    format!(
        "neptune history bench: stable preamble shared by every version\n\
         version {v} distinct marker payload line\n\
         stable trailing line shared by every version\n"
    )
    .into_bytes()
}

/// Build an archive with versions at times `1..=n` (eager skip rungs are
/// laid down at every boundary during checkin, as real stores do).
fn build_archive(n: usize) -> Archive {
    let mut a = Archive::new(version_text(1), 1);
    for v in 2..=n as u64 {
        a.checkin(version_text(v), v).expect("checkin");
    }
    a
}

fn bench_depth(c: &mut Criterion, archive: &Archive, n: usize) {
    let n64 = n as u64;
    let mut group = c.benchmark_group(format!("history_depth_{n}"));
    let mut rng = XorShift::new(0xD5EED ^ n64);

    group.bench_function("head_local", |b| {
        b.iter(|| {
            let t = n64 - rng.below(16);
            black_box(archive.checkout(t).expect("checkout").len())
        });
    });
    group.bench_function("uniform_random", |b| {
        b.iter(|| {
            let t = 1 + rng.below(n64);
            black_box(archive.checkout(t).expect("checkout").len())
        });
    });
    // Worst case for a fresh process: no materialized anchors at all, then
    // the version farthest from the stored head.
    group.bench_function("cold_oldest", |b| {
        b.iter(|| {
            archive.clear_anchors();
            black_box(archive.checkout(1).expect("checkout").len())
        });
    });
    // Golden-ratio stride: successive targets land far apart, so anchor
    // reuse is minimal and the byte-bounded cache churns constantly.
    let mut tick = 0u64;
    group.bench_function("adversarial_alternating", |b| {
        b.iter(|| {
            tick = tick.wrapping_add(1);
            let t = 1 + tick.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n64;
            black_box(archive.checkout(t).expect("checkout").len())
        });
    });
    // The pre-ladder behavior: unit backward deltas from head all the way
    // down. Cost is O(n) per call by construction.
    if n <= UNCACHED_MAX_DEPTH {
        group.bench_function("uncached_linear", |b| {
            b.iter(|| black_box(archive.checkout_uncached(1).expect("checkout").len()));
        });
    }
    group.finish();
}

fn find<'a>(results: &'a [BenchResult], needle: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.label.contains(needle))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// `(ns_per_iter, mean replay depth)` for one depth/pattern series. The
/// mean comes from the per-bench delta of the replay-depth histogram the
/// archive maintains on every checkout.
fn series(results: &[BenchResult], n: usize, pattern: &str) -> (f64, f64) {
    let Some(r) = find(results, &format!("history_depth_{n}/{pattern}")) else {
        return (0.0, 0.0);
    };
    let get = |k: &str| r.metrics.get(k).copied().unwrap_or(0.0);
    let count = get("neptune_storage_delta_replay_depth_count");
    let mean = if count > 0.0 {
        get("neptune_storage_delta_replay_depth_sum") / count
    } else {
        0.0
    };
    (r.ns_per_iter, mean)
}

struct Derived {
    cold_ns_ratio: f64,
    cold_depth_ratio: f64,
    cold_depth_hi: f64,
    uncached_vs_hier: f64,
    anchor_bytes: f64,
    live_archives: usize,
}

fn write_report(c: &Criterion, archives: &[(usize, Archive)]) -> Derived {
    let results = c.results();
    let mut out = String::from("{\n  \"bench\": \"history_depth\",\n");
    out.push_str(&format!(
        "  \"smoke\": {},\n",
        neptune_bench::harness::smoke_mode()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let metrics = r
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {v:.1}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \"metrics\": {{{metrics}}}}}{}\n",
            json_escape(&r.label),
            r.ns_per_iter,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"derived\": {\n");

    // Per-depth summary: cold-checkout cost, mean replay depth, the linear
    // baseline, and the persisted index's size relative to the delta chain.
    out.push_str("    \"per_depth\": {\n");
    for (i, (n, archive)) in archives.iter().enumerate() {
        let (cold_ns, cold_depth) = series(results, *n, "cold_oldest");
        let (uncached_ns, uncached_depth) = series(results, *n, "uncached_linear");
        let storage = archive.storage_bytes().max(1);
        out.push_str(&format!(
            "      \"{n}\": {{\"cold_ns\": {cold_ns:.1}, \"cold_mean_replay_depth\": \
             {cold_depth:.1}, \"uncached_ns\": {uncached_ns:.1}, \
             \"uncached_mean_replay_depth\": {uncached_depth:.1}, \
             \"skip_count\": {}, \"anchor_bytes\": {}, \
             \"index_overhead_ratio\": {:.4}}}{}\n",
            archive.skip_count(),
            archive.anchor_bytes(),
            archive.index_bytes() as f64 / storage as f64,
            if i + 1 < archives.len() { "," } else { "" }
        ));
    }
    out.push_str("    },\n");

    let (lo_ns, lo_depth) = series(results, GUARD_LO, "cold_oldest");
    let (hi_ns, hi_depth) = series(results, GUARD_HI, "cold_oldest");
    let (uncached_hi_ns, _) = series(results, GUARD_HI, "uncached_linear");
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let derived = Derived {
        cold_ns_ratio: ratio(hi_ns, lo_ns),
        cold_depth_ratio: ratio(hi_depth, lo_depth),
        cold_depth_hi: hi_depth,
        uncached_vs_hier: ratio(uncached_hi_ns, hi_ns),
        anchor_bytes: {
            let snapshot = neptune_obs::registry().flat_snapshot();
            snapshot
                .get("neptune_storage_index_anchor_bytes")
                .copied()
                .unwrap_or(0.0)
        },
        live_archives: archives.len(),
    };
    let snapshot = neptune_obs::registry().flat_snapshot();
    let flat = |key: &str| snapshot.get(key).copied().unwrap_or(0.0);
    out.push_str(&format!(
        "    \"cold_ns_ratio_{GUARD_HI}_vs_{GUARD_LO}\": {:.2},\n",
        derived.cold_ns_ratio
    ));
    out.push_str(&format!(
        "    \"cold_replay_depth_ratio_{GUARD_HI}_vs_{GUARD_LO}\": {:.2},\n",
        derived.cold_depth_ratio
    ));
    out.push_str(&format!(
        "    \"uncached_vs_hierarchical_{GUARD_HI}\": {:.1},\n",
        derived.uncached_vs_hier
    ));
    out.push_str(&format!(
        "    \"anchor_bytes_gauge\": {:.0},\n",
        derived.anchor_bytes
    ));
    out.push_str(&format!(
        "    \"anchor_budget_per_archive\": {DEFAULT_ANCHOR_BUDGET},\n"
    ));
    out.push_str(&format!(
        "    \"index_hits_total\": {:.0},\n",
        flat("neptune_storage_index_hits_total")
    ));
    let levels_count = flat("neptune_storage_index_levels_depth_count");
    let mean_levels = if levels_count > 0.0 {
        flat("neptune_storage_index_levels_depth_sum") / levels_count
    } else {
        0.0
    };
    out.push_str(&format!(
        "    \"mean_skip_levels_used\": {mean_levels:.2}\n"
    ));
    out.push_str("  }\n}\n");

    let path = std::env::var("NEPTUNE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_history_depth.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create bench report");
    file.write_all(out.as_bytes()).expect("write bench report");
    println!("wrote {path}");
    println!(
        "cold checkout at depth {GUARD_HI} vs {GUARD_LO}: {:.2}x time, {:.2}x replay depth \
         ({:.1} vs {:.1} deltas applied)",
        derived.cold_ns_ratio, derived.cold_depth_ratio, hi_depth, lo_depth
    );
    println!(
        "linear uncached baseline at depth {GUARD_HI}: {:.0}x slower than hierarchical",
        derived.uncached_vs_hier
    );
    println!(
        "anchor cache occupancy: {:.0} bytes across {} archives (budget {} each)",
        derived.anchor_bytes, derived.live_archives, DEFAULT_ANCHOR_BUDGET
    );
    derived
}

/// Regression floors for CI smoke runs (`NEPTUNE_BENCH_GUARD` set).
///
/// The acceptance criterion for the skip ladder is that cold checkout at
/// depth 10^5 costs within 4x of depth 10^3 *on the same run* — both in
/// wall time and in the replay-depth histogram, which is timing-noise
/// immune (the theoretical walk is ~25 applications at either depth, so
/// 4x leaves slack without admitting a linear term: linear would be
/// ~100x). The absolute ceiling catches a ladder that silently stopped
/// being built (a pure-ratio guard would pass if *both* depths degraded
/// to linear). The uncached floor proves the baseline really is worse —
/// i.e. the bench is measuring the ladder, not a trivial workload — and
/// the anchor-bytes ceiling proves eviction keeps the cache inside its
/// per-archive budget even under the adversarial stride.
fn guard(d: &Derived) {
    if std::env::var("NEPTUNE_BENCH_GUARD").map_or(true, |v| v.is_empty()) {
        return;
    }
    let mut failed = false;
    if d.cold_ns_ratio > 4.0 {
        eprintln!(
            "GUARD FAIL: cold_ns_ratio_{GUARD_HI}_vs_{GUARD_LO} = {:.2} > 4.0",
            d.cold_ns_ratio
        );
        failed = true;
    }
    if d.cold_depth_ratio > 4.0 {
        eprintln!(
            "GUARD FAIL: cold_replay_depth_ratio_{GUARD_HI}_vs_{GUARD_LO} = {:.2} > 4.0",
            d.cold_depth_ratio
        );
        failed = true;
    }
    if d.cold_depth_hi > 150.0 {
        eprintln!(
            "GUARD FAIL: cold mean replay depth at {GUARD_HI} = {:.1} > 150 \
             (logarithmic bound lost; linear would be ~{GUARD_HI})",
            d.cold_depth_hi
        );
        failed = true;
    }
    if d.uncached_vs_hier < 10.0 {
        eprintln!(
            "GUARD FAIL: uncached_vs_hierarchical_{GUARD_HI} = {:.1} < 10 \
             (linear baseline should be dramatically worse than the ladder)",
            d.uncached_vs_hier
        );
        failed = true;
    }
    let ceiling = (d.live_archives * DEFAULT_ANCHOR_BUDGET) as f64;
    if d.anchor_bytes > ceiling {
        eprintln!(
            "GUARD FAIL: anchor_bytes_gauge = {:.0} > {:.0} \
             ({} archives x {} byte budget); eviction is not holding",
            d.anchor_bytes, ceiling, d.live_archives, DEFAULT_ANCHOR_BUDGET
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench guard passed (cold {:.2}x time / {:.2}x depth at {GUARD_HI} vs {GUARD_LO}, \
         uncached {:.0}x worse, anchors {:.0}B <= {:.0}B)",
        d.cold_ns_ratio, d.cold_depth_ratio, d.uncached_vs_hier, d.anchor_bytes, ceiling
    );
}

fn main() {
    // Start from zeroed counters so the emitted snapshot reflects this run
    // only (the registry is process-global).
    neptune_obs::registry().reset();
    let mut criterion = Criterion::default()
        .measurement_time(Duration::from_millis(1500))
        .warm_up_time(Duration::from_millis(300))
        .sample_size(10);

    let mut depths: Vec<usize> = DEPTHS.to_vec();
    if !neptune_bench::harness::smoke_mode() {
        depths.push(FULL_DEPTH);
    }
    // Archives stay alive until after the report so the anchor-occupancy
    // gauge still reflects the benched caches when the guard reads it.
    let mut archives: Vec<(usize, Archive)> = Vec::new();
    for &n in &depths {
        let start = std::time::Instant::now();
        let archive = build_archive(n);
        println!(
            "built {n}-version archive in {:.2}s ({} skip rungs, {} index bytes)",
            start.elapsed().as_secs_f64(),
            archive.skip_count(),
            archive.index_bytes()
        );
        archives.push((n, archive));
    }
    for (n, archive) in &archives {
        bench_depth(&mut criterion, archive, *n);
    }
    let derived = write_report(&criterion, &archives);
    guard(&derived);
}
