//! E4 — `linearizeGraph` document extraction.
//!
//! Paper §4.2: linearizeGraph "can be used to extract a document from the
//! hypertext graph so that hardcopies can be produced." Measures the
//! offset-ordered DFS over document trees of varying shape.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{document_tree, fresh_ham, main_ctx};
use neptune_ham::types::Time;
use neptune_ham::Predicate;

fn bench_linearize(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_linearize");
    // (fanout, depth) -> tree sizes 15, 121, 1365, 781
    for &(fanout, depth) in &[(2usize, 4usize), (3, 5), (4, 6), (5, 5)] {
        let mut ham = fresh_ham("e4");
        let (root, count) = document_tree(&mut ham, main_ctx(), fanout, depth);
        let structure = Predicate::parse("relation = isPartOf").unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("f{fanout}_d{depth}_n{count}")),
            &count,
            |b, _| {
                b.iter(|| {
                    let sg = ham
                        .linearize_graph(
                            main_ctx(),
                            root,
                            Time::CURRENT,
                            &Predicate::True,
                            &structure,
                            &[],
                            &[],
                        )
                        .unwrap();
                    black_box(sg.nodes.len())
                });
            },
        );
    }
    group.finish();

    // With requested attribute values, as the document browser issues it.
    let mut group = c.benchmark_group("e4_linearize_with_attrs");
    let mut ham = fresh_ham("e4-attrs");
    let (root, _) = document_tree(&mut ham, main_ctx(), 3, 5);
    let rel = ham.get_attribute_index(main_ctx(), "relation").unwrap();
    let structure = Predicate::parse("relation = isPartOf").unwrap();
    group.bench_function("two_attrs_per_object", |b| {
        b.iter(|| {
            let sg = ham
                .linearize_graph(
                    main_ctx(),
                    root,
                    Time::CURRENT,
                    &Predicate::True,
                    &structure,
                    &[rel],
                    &[rel],
                )
                .unwrap();
            black_box(sg.links.len())
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_linearize
}
criterion_main!(benches);
