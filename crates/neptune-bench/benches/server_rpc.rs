//! E6 — multi-user server access over the network.
//!
//! Paper §2.2: "Neptune has a central server which is accessible over a
//! local area network from a variety of workstations." Measures RPC
//! round-trip latency for reads and writes over loopback TCP, and
//! aggregate throughput with concurrent clients.

use neptune_bench::harness::{BenchmarkId, Criterion, Throughput};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{attributed_graph, fresh_ham, main_ctx};
use neptune_ham::types::Time;
use neptune_server::{serve, Client};

fn bench_roundtrips(c: &mut Criterion) {
    let mut ham = fresh_ham("e6-rt");
    let nodes = attributed_graph(&mut ham, main_ctx(), 100, 10);
    let target = nodes[0];
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let mut group = c.benchmark_group("e6_roundtrip");
    group.bench_function("ping", |b| {
        b.iter(|| client.ping().unwrap());
    });
    group.bench_function("open_node", |b| {
        b.iter(|| {
            let opened = client
                .open_node(main_ctx(), target, Time::CURRENT, vec![])
                .unwrap();
            black_box(opened.current_time)
        });
    });
    group.bench_function("get_graph_query", |b| {
        b.iter(|| {
            let sg = client
                .get_graph_query(
                    main_ctx(),
                    Time::CURRENT,
                    "kind = k0",
                    "true",
                    vec![],
                    vec![],
                )
                .unwrap();
            black_box(sg.nodes.len())
        });
    });
    group.bench_function("add_node", |b| {
        b.iter(|| {
            let (id, _) = client.add_node(main_ctx(), true).unwrap();
            black_box(id)
        });
    });
    group.finish();
    server.stop();
}

fn bench_concurrent_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_concurrent");
    const OPS_PER_CLIENT: usize = 50;
    for &clients in &[1usize, 2, 4, 8] {
        let ham = fresh_ham("e6-conc");
        let server = serve(ham, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        group.throughput(Throughput::Elements((clients * OPS_PER_CLIENT) as u64));
        group.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let threads: Vec<_> = (0..clients)
                        .map(|_| {
                            std::thread::spawn(move || {
                                let mut c = Client::connect(addr).unwrap();
                                for _ in 0..OPS_PER_CLIENT {
                                    c.add_node(main_ctx(), true).unwrap();
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                });
            },
        );
        server.stop();
    }
    group.finish();
}

fn bench_concurrent_readers(c: &mut Criterion) {
    // Read-only requests take the shared side of the server's HAM lock, so
    // aggregate read throughput should scale with reader count rather than
    // serialize (contrast with the all-writer e6_concurrent above).
    let mut group = c.benchmark_group("e6_concurrent_readers");
    const OPS_PER_CLIENT: usize = 50;
    let mut ham = fresh_ham("e6-read");
    let nodes = attributed_graph(&mut ham, main_ctx(), 100, 10);
    let target = nodes[0];
    let server = serve(ham, "127.0.0.1:0").unwrap();
    let addr = server.addr();
    for &clients in &[1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((clients * OPS_PER_CLIENT) as u64));
        group.bench_with_input(
            BenchmarkId::new("readers", clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let threads: Vec<_> = (0..clients)
                        .map(|_| {
                            std::thread::spawn(move || {
                                let mut c = Client::connect(addr).unwrap();
                                for _ in 0..OPS_PER_CLIENT {
                                    let opened = c
                                        .open_node(main_ctx(), target, Time::CURRENT, vec![])
                                        .unwrap();
                                    black_box(opened.contents.len());
                                }
                            })
                        })
                        .collect();
                    for t in threads {
                        t.join().unwrap();
                    }
                });
            },
        );
    }
    group.finish();
    server.stop();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(2000))
        .warm_up_time(std::time::Duration::from_millis(400))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_roundtrips, bench_concurrent_clients, bench_concurrent_readers
}
criterion_main!(benches);
