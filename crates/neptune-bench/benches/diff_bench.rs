//! E7 — `getNodeDifferences` and the node-differences browser.
//!
//! Measures the Myers line diff over node sizes and change fractions —
//! the cost of the side-by-side comparison the paper's §4.1 browser shows.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{perturb, text};
use neptune_storage::diff::differences;

fn bench_diff(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_diff_by_size");
    for &kib in &[1usize, 16, 64] {
        let old = text(kib * 1024, 5);
        let new = perturb(&old, 100, 9); // 10% of lines
        group.bench_with_input(BenchmarkId::new("kib_10pct", kib), &kib, |b, _| {
            b.iter(|| black_box(differences(&old, &new).len()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e7_diff_by_change");
    for &(permille, label) in &[(10usize, "1pct"), (100, "10pct"), (500, "50pct")] {
        let old = text(16 * 1024, 5);
        let new = perturb(&old, permille, 11);
        group.bench_with_input(BenchmarkId::from_parameter(label), &permille, |b, _| {
            b.iter(|| black_box(differences(&old, &new).len()));
        });
    }
    group.finish();

    // Worst case: completely unrelated buffers (falls back gracefully).
    let mut group = c.benchmark_group("e7_diff_extremes");
    let a = text(16 * 1024, 1);
    let b_text = text(16 * 1024, 2_000_000);
    group.bench_function("identical", |bch| {
        bch.iter(|| black_box(differences(&a, &a).len()));
    });
    group.bench_function("unrelated", |bch| {
        bch.iter(|| black_box(differences(&a, &b_text).len()));
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_diff
}
criterion_main!(benches);
