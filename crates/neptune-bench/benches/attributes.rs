//! E10 — attribute operations at current and historical times.
//!
//! The paper's attributes are "very dynamic" and fully versioned; every
//! query mechanism rides on them. Measures set/get against attribute count
//! and value-history depth.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{fresh_ham, main_ctx};
use neptune_ham::types::Time;
use neptune_ham::Value;

fn bench_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_set");
    group.bench_function("set_node_attribute_value", |b| {
        let mut ham = fresh_ham("e10-set");
        let (node, _) = ham.add_node(main_ctx(), true).unwrap();
        let attr = ham.get_attribute_index(main_ctx(), "status").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            ham.set_node_attribute_value(main_ctx(), node, attr, Value::Int(i))
                .unwrap();
        });
    });
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    // Value-history depth: how much does a long history cost a lookup?
    let mut group = c.benchmark_group("e10_get_by_history_depth");
    for &depth in &[1usize, 100, 10_000] {
        let mut ham = fresh_ham("e10-get");
        let (node, _) = ham.add_node(main_ctx(), true).unwrap();
        let attr = ham.get_attribute_index(main_ctx(), "status").unwrap();
        let mut mid_time = Time::CURRENT;
        for i in 0..depth {
            ham.set_node_attribute_value(main_ctx(), node, attr, Value::Int(i as i64))
                .unwrap();
            if i == depth / 2 {
                mid_time = ham.graph(main_ctx()).unwrap().now();
            }
        }
        group.bench_with_input(BenchmarkId::new("current", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    ham.get_node_attribute_value(main_ctx(), node, attr, Time::CURRENT)
                        .unwrap(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("historical", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(
                    ham.get_node_attribute_value(main_ctx(), node, attr, mid_time)
                        .unwrap(),
                )
            });
        });
    }
    group.finish();

    // Attribute count per node: getNodeAttributes over wide nodes.
    let mut group = c.benchmark_group("e10_get_all_by_width");
    for &width in &[1usize, 16, 64] {
        let mut ham = fresh_ham("e10-width");
        let (node, _) = ham.add_node(main_ctx(), true).unwrap();
        for i in 0..width {
            let attr = ham
                .get_attribute_index(main_ctx(), &format!("a{i}"))
                .unwrap();
            ham.set_node_attribute_value(main_ctx(), node, attr, Value::Int(i as i64))
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("attrs", width), &width, |b, _| {
            b.iter(|| {
                black_box(
                    ham.get_node_attributes(main_ctx(), node, Time::CURRENT)
                        .unwrap()
                        .len(),
                )
            });
        });
    }
    group.finish();

    // getAttributeValues: index fast path vs historical scan.
    let mut group = c.benchmark_group("e10_attribute_values");
    let mut ham = fresh_ham("e10-values");
    let attr = ham.get_attribute_index(main_ctx(), "kind").unwrap();
    for i in 0..1_000usize {
        let (node, _) = ham.add_node(main_ctx(), true).unwrap();
        ham.set_node_attribute_value(main_ctx(), node, attr, Value::str(format!("k{}", i % 25)))
            .unwrap();
    }
    let t_then = ham.graph(main_ctx()).unwrap().now();
    let (extra, _) = ham.add_node(main_ctx(), true).unwrap();
    ham.set_node_attribute_value(main_ctx(), extra, attr, Value::str("k999"))
        .unwrap();
    group.bench_function("current_via_index", |b| {
        b.iter(|| {
            black_box(
                ham.get_attribute_values(main_ctx(), attr, Time::CURRENT)
                    .unwrap()
                    .len(),
            )
        });
    });
    group.bench_function("historical_via_scan", |b| {
        b.iter(|| {
            black_box(
                ham.get_attribute_values(main_ctx(), attr, t_then)
                    .unwrap()
                    .len(),
            )
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_set, bench_get
}
criterion_main!(benches);
