//! Write scaling: parallel commits on disjoint shards.
//!
//! The sharded HAM gives every shard its own lock, WAL stream, and
//! published snapshot slot, so commits touching disjoint shards validate,
//! append, and publish independently — the single-lock writer ceiling the
//! ROADMAP flagged. This bench measures what that buys and emits the
//! numbers as machine-readable JSON (`BENCH_write_scaling.json`, or the
//! path named by `NEPTUNE_BENCH_OUT`):
//!
//! 1. **Disjoint-shard scaling.** N writer threads, each committing to a
//!    context homed on its own shard of an 8-shard store. Aggregate commit
//!    throughput should rise with writers instead of flat-lining behind
//!    one mutex.
//! 2. **Single-shard baseline.** The same N writers against a one-shard
//!    store — every commit serializes on the single shard lock. This is
//!    the pre-sharding behavior, measured by the same harness in the same
//!    process so the ratio is apples-to-apples.
//! 3. **Cross-shard transaction cost.** The two-phase path (fork to
//!    another shard, merge back — two shards commit under one sequence
//!    number) measured per round trip, with the cross-shard counters
//!    recorded alongside.
//!
//! With `NEPTUNE_BENCH_GUARD` set (ci.sh smoke runs), the disjoint-vs-
//! single-shard ratio at 8 writers doubles as a regression guard: on a
//! multi-core runner it must stay ≥ 2x (the acceptance floor for the
//! sharding work), and `neptune_ham_multiview_torn_total` must not move.

use std::hint::black_box;
use std::io::Write;
use std::time::Duration;

use neptune_bench::harness::{BenchResult, BenchmarkId, Criterion, Throughput};
use neptune_bench::{bench_dir, edit_lines, text};
use neptune_ham::context::ConflictPolicy;
use neptune_ham::types::{ContextId, NodeIndex, Protections, MAIN_CONTEXT};
use neptune_ham::ShardedHam;

const SHARDS: usize = 8;
const WRITER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const OPS_PER_WRITER: usize = 50;
const BODY_BYTES: usize = 1024;

/// A fresh sharded store with `writers` contexts, each holding one
/// versioned node. Context ids are allocated globally (1, 2, 3, …), so on
/// an `nshards`-way store forks land on distinct home shards as long as
/// `writers < nshards`; on a one-shard store they all share shard 0.
fn setup(tag: &str, nshards: usize, writers: usize) -> (ShardedHam, Vec<(ContextId, NodeIndex)>) {
    let (sharded, _, _) =
        ShardedHam::create(bench_dir(tag), Protections::DEFAULT, nshards).expect("create store");
    let body = text(BODY_BYTES, 7);
    let mut ctxs = Vec::with_capacity(writers);
    for _ in 0..writers {
        let ctx = sharded.create_context(MAIN_CONTEXT).expect("fork");
        let mut guard = sharded.lock_home(ctx).expect("lock home");
        let (node, t0) = guard.add_node(ctx, true).expect("node");
        guard
            .modify_node(ctx, node, t0, body.clone(), &[])
            .expect("seed contents");
        drop(guard);
        ctxs.push((ctx, node));
    }
    (sharded, ctxs)
}

/// Drive `OPS_PER_WRITER` commits per writer thread: each op locks the
/// context's home shard, modifies the node, and commits (WAL append +
/// snapshot publish). Bodies alternate so every commit carries a real
/// delta.
fn commit_storm(sharded: &ShardedHam, ctxs: &[(ContextId, NodeIndex)], bodies: &[Vec<u8>; 2]) {
    std::thread::scope(|scope| {
        for &(ctx, node) in ctxs {
            scope.spawn(move || {
                for op in 0..OPS_PER_WRITER {
                    let mut guard = sharded.lock_home(ctx).expect("lock home");
                    let t = guard.get_node_time_stamp(ctx, node).expect("stamp");
                    guard
                        .modify_node(ctx, node, t, &bodies[op % 2][..], &[])
                        .expect("commit");
                }
            });
        }
    });
}

fn bench_writer_scaling(c: &mut Criterion) {
    let bodies = [text(BODY_BYTES, 7), edit_lines(&text(BODY_BYTES, 7), 2, 9)];

    let mut group = c.benchmark_group("write_scaling_commits");
    for &writers in &WRITER_COUNTS {
        group.throughput(Throughput::Elements((writers * OPS_PER_WRITER) as u64));

        let (sharded, ctxs) = setup(&format!("ws-disjoint-{writers}"), SHARDS, writers);
        let homes: std::collections::BTreeSet<usize> =
            ctxs.iter().map(|&(ctx, _)| sharded.shard_of(ctx)).collect();
        assert_eq!(homes.len(), writers, "writer contexts must be disjoint");
        group.bench_with_input(BenchmarkId::new("disjoint", writers), &writers, |b, _| {
            b.iter(|| {
                commit_storm(&sharded, &ctxs, &bodies);
                black_box(sharded.last_commit_seq())
            });
        });
        sharded.checkpoint().expect("checkpoint");

        let (single, ctxs) = setup(&format!("ws-single-{writers}"), 1, writers);
        group.bench_with_input(
            BenchmarkId::new("single_shard", writers),
            &writers,
            |b, _| {
                b.iter(|| {
                    commit_storm(&single, &ctxs, &bodies);
                    black_box(single.last_commit_seq())
                });
            },
        );
        single.checkpoint().expect("checkpoint");
    }
    group.finish();
}

/// One cross-shard round trip per iteration: fork MAIN onto another shard,
/// commit a change there, merge back through the two-phase path (both
/// shards commit under one sequence number), destroy the fork.
fn bench_cross_shard(c: &mut Criterion) {
    let (sharded, _, _) = ShardedHam::create(bench_dir("ws-cross"), Protections::DEFAULT, SHARDS)
        .expect("create store");
    let node = {
        let mut main = sharded.lock_home(MAIN_CONTEXT).expect("lock main");
        let (node, t0) = main.add_node(MAIN_CONTEXT, true).expect("node");
        main.modify_node(MAIN_CONTEXT, node, t0, text(BODY_BYTES, 7), &[])
            .expect("seed");
        node
    };
    let body = edit_lines(&text(BODY_BYTES, 7), 2, 11);

    let mut group = c.benchmark_group("write_scaling_cross_shard");
    group.bench_function("fork_merge_destroy", |b| {
        b.iter(|| {
            let fork = sharded.create_context(MAIN_CONTEXT).expect("fork");
            {
                let mut guard = sharded.lock_home(fork).expect("lock fork");
                let t = guard.get_node_time_stamp(fork, node).expect("stamp");
                guard
                    .modify_node(fork, node, t, &body[..], &[])
                    .expect("commit");
            }
            sharded
                .merge_context(fork, ConflictPolicy::PreferChild)
                .expect("merge");
            sharded.destroy_context(fork).expect("destroy");
            black_box(fork)
        });
    });
    group.finish();
}

fn find<'a>(results: &'a [BenchResult], needle: &str) -> Option<&'a BenchResult> {
    results.iter().find(|r| r.label.contains(needle))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Aggregate commits/sec for a variant at a given writer count.
fn rate(results: &[BenchResult], variant: &str, writers: usize) -> f64 {
    find(results, &format!("{variant}/{writers}"))
        .filter(|r| r.ns_per_iter > 0.0)
        .map(|r| (writers * OPS_PER_WRITER) as f64 / (r.ns_per_iter / 1e9))
        .unwrap_or(0.0)
}

fn write_report(c: &Criterion) -> f64 {
    let results = c.results();
    let mut out = String::from("{\n  \"bench\": \"write_scaling\",\n");
    out.push_str(&format!(
        "  \"smoke\": {},\n",
        neptune_bench::harness::smoke_mode()
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let metrics = r
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{}\": {v:.1}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"ns_per_iter\": {:.1}, \"iterations\": {}, \"metrics\": {{{metrics}}}}}{}\n",
            json_escape(&r.label),
            r.ns_per_iter,
            r.iterations,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"derived\": {\n");
    for variant in ["disjoint", "single_shard"] {
        out.push_str(&format!(
            "    \"{variant}_commits_per_sec_by_writers\": {{\n"
        ));
        for (i, &writers) in WRITER_COUNTS.iter().enumerate() {
            out.push_str(&format!(
                "      \"{writers}\": {:.0}{}\n",
                rate(results, variant, writers),
                if i + 1 < WRITER_COUNTS.len() { "," } else { "" }
            ));
        }
        out.push_str("    },\n");
    }
    // The headline number: aggregate commit throughput of 8 writers on
    // disjoint shards over the same 8 writers behind one shard lock.
    let ratio = {
        let single = rate(results, "single_shard", 8);
        if single > 0.0 {
            rate(results, "disjoint", 8) / single
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "    \"disjoint_vs_single_shard_8_writers\": {ratio:.2},\n"
    ));
    let cross_ns = find(results, "fork_merge_destroy")
        .map(|r| r.ns_per_iter)
        .unwrap_or(0.0);
    out.push_str(&format!(
        "    \"cross_shard_round_trip_ns\": {cross_ns:.0},\n"
    ));
    // Cross-shard and consistency counters over the whole run: the torn
    // counter is the defensive one that must never move.
    let snapshot = neptune_obs::registry().flat_snapshot();
    let flat = |key: &str| snapshot.get(key).copied().unwrap_or(0.0);
    for key in [
        "neptune_ham_cross_shard_txns_total",
        "neptune_ham_view_skew_retries_total",
        "neptune_ham_multiview_fallbacks_total",
        "neptune_ham_multiview_torn_total",
    ] {
        out.push_str(&format!("    \"{key}\": {:.0},\n", flat(key)));
    }
    // Per-shard commit distribution, to show the disjoint runs really did
    // spread across shards rather than piling onto one.
    out.push_str("    \"shard_commits\": {\n");
    let shard_counts: Vec<(String, f64)> = snapshot
        .iter()
        .filter(|(k, _)| k.starts_with("neptune_ham_shard_commits_total"))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    for (i, (key, v)) in shard_counts.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {v:.0}{}\n",
            json_escape(key),
            if i + 1 < shard_counts.len() { "," } else { "" }
        ));
    }
    out.push_str("    }\n  }\n}\n");

    let path = std::env::var("NEPTUNE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_write_scaling.json".to_string());
    let mut file = std::fs::File::create(&path).expect("create bench report");
    file.write_all(out.as_bytes()).expect("write bench report");
    println!("wrote {path}");
    println!("8-writer disjoint vs single-shard commit throughput: {ratio:.2}x");
    println!(
        "cross-shard fork+merge+destroy round trip: {:.1} µs",
        cross_ns / 1e3
    );
    ratio
}

/// Regression floors for CI smoke runs (`NEPTUNE_BENCH_GUARD` set).
///
/// The disjoint-vs-single-shard ratio needs CPUs to scale onto, exactly
/// like the reader-scaling floor in `read_scaling`: with 4+ cores, 8
/// writers on disjoint shards must deliver at least 2x the aggregate
/// commit throughput of the same writers serialized behind one shard lock
/// (the acceptance floor for the sharding work — a reintroduced global
/// writer lock craters this to ~1). With 2–3 cores the parallel headroom
/// is smaller, so the floor drops to 1.2. On a single core there is no
/// parallelism to win; the guard instead checks that the sharded commit
/// path is not dramatically *slower* than the single-lock one (per-shard
/// bookkeeping should cost noise, not throughput), with a generous 0.6
/// floor.
///
/// Core-count independent: `neptune_ham_multiview_torn_total` must be
/// zero — no assembled cross-shard view may ever expose half of a
/// two-phase commit.
fn guard(ratio: f64) {
    if std::env::var("NEPTUNE_BENCH_GUARD").map_or(true, |v| v.is_empty()) {
        return;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor = if cores >= 4 {
        2.0
    } else if cores >= 2 {
        1.2
    } else {
        0.6
    };
    let mut failed = false;
    if ratio < floor {
        eprintln!(
            "GUARD FAIL: disjoint_vs_single_shard_8_writers = {ratio:.2} < {floor:.1} \
             ({cores} cores); disjoint-shard commits are serializing again"
        );
        failed = true;
    }
    let torn = neptune_obs::registry()
        .counter("neptune_ham_multiview_torn_total")
        .get();
    if torn != 0 {
        eprintln!(
            "GUARD FAIL: neptune_ham_multiview_torn_total = {torn}; a cross-shard \
             snapshot assembly exposed half of a two-phase commit"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "bench guard passed (disjoint/single-shard {ratio:.2}x, floor {floor:.1}, {cores} core(s))"
    );
}

fn main() {
    // Start from zeroed counters so the emitted snapshot reflects this run
    // only (the registry is process-global).
    neptune_obs::registry().reset();
    neptune_obs::registry().set_enabled(true);
    let mut criterion = Criterion::default()
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
        .sample_size(10);
    bench_writer_scaling(&mut criterion);
    bench_cross_shard(&mut criterion);
    let ratio = write_report(&criterion);
    guard(ratio);
}
