//! E9 — contexts (multiple version threads): fork and merge.
//!
//! Paper §5's private worlds: fork cost vs graph size, and merge cost vs
//! how much the private world diverged.

use neptune_bench::harness::{BenchmarkId, Criterion};
use neptune_bench::{criterion_group, criterion_main};
use std::hint::black_box;

use neptune_bench::{attributed_graph, fresh_ham, main_ctx};
use neptune_ham::context::ConflictPolicy;
use neptune_ham::Value;

fn bench_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_fork");
    for &n in &[100usize, 1_000, 5_000] {
        group.bench_with_input(BenchmarkId::new("graph_nodes", n), &n, |b, &n| {
            let mut ham = fresh_ham("e9-fork");
            attributed_graph(&mut ham, main_ctx(), n, 10);
            b.iter(|| {
                let ctx = ham.create_context(main_ctx()).unwrap();
                ham.destroy_context(ctx).unwrap();
                black_box(ctx)
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_merge");
    for &(divergence, label) in &[(10usize, "10_edits"), (100, "100_edits")] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &divergence,
            |b, &divergence| {
                let mut ham = fresh_ham("e9-merge");
                let nodes = attributed_graph(&mut ham, main_ctx(), 1_000, 10);
                let status = ham.get_attribute_index(main_ctx(), "status").unwrap();
                b.iter(|| {
                    let world = ham.create_context(main_ctx()).unwrap();
                    for i in 0..divergence {
                        let node = nodes[i * 7 % nodes.len()];
                        ham.set_node_attribute_value(world, node, status, Value::Int(i as i64))
                            .unwrap();
                    }
                    let report = ham
                        .merge_context(world, ConflictPolicy::PreferChild)
                        .unwrap();
                    ham.destroy_context(world).unwrap();
                    black_box(report.attrs_changed)
                });
            },
        );
    }
    group.finish();

    // Merge bringing new nodes across.
    let mut group = c.benchmark_group("e9_merge_new_nodes");
    for &new_nodes in &[10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("added", new_nodes),
            &new_nodes,
            |b, &new_nodes| {
                let mut ham = fresh_ham("e9-merge-new");
                attributed_graph(&mut ham, main_ctx(), 500, 10);
                b.iter(|| {
                    let world = ham.create_context(main_ctx()).unwrap();
                    for _ in 0..new_nodes {
                        ham.add_node(world, true).unwrap();
                    }
                    let report = ham.merge_context(world, ConflictPolicy::Fail).unwrap();
                    ham.destroy_context(world).unwrap();
                    black_box(report.nodes_added.len())
                });
            },
        );
    }
    group.finish();

    // Context query at historical time (version threads keep history).
    let mut group = c.benchmark_group("e9_abort_rollback");
    group.bench_function("txn_with_50_ops", |b| {
        let mut ham = fresh_ham("e9-abort");
        attributed_graph(&mut ham, main_ctx(), 500, 10);
        b.iter(|| {
            ham.begin_transaction().unwrap();
            for _ in 0..50 {
                ham.add_node(main_ctx(), true).unwrap();
            }
            ham.abort_transaction().unwrap();
            black_box(ham.graph(main_ctx()).unwrap().live_node_count())
        });
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_millis(1500))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fork, bench_merge
}
criterion_main!(benches);
