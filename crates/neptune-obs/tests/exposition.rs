//! Prometheus text-exposition conformance: what `Registry::expose` emits
//! must parse under the rules a real scraper applies — name charset, label
//! escaping, one `# TYPE` per family preceding its contiguous samples,
//! cumulative monotone buckets ending at `+Inf`, and `_count` agreement.
//!
//! The checks run against a registry built here (so the suite needs no
//! fixtures) and, when the CI snapshot artifact exists, against the real
//! server's exposition too.

use std::collections::BTreeMap;

use neptune_obs::metrics::{escape_label_value, labeled, Registry};

/// One histogram series: family name plus its labels minus `le`.
type SeriesKey = (String, Vec<(String, String)>);

#[derive(Debug, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parse one exposition document the way a scraper would; panics with a
/// descriptive message on any conformance violation.
fn parse_and_check(text: &str) -> (BTreeMap<String, String>, Vec<Sample>) {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Family name in first-sample order, to check contiguity.
    let mut family_order: Vec<String> = Vec::new();
    let mut samples = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut words = comment.split_whitespace();
            assert_eq!(
                words.next(),
                Some("TYPE"),
                "line {n}: unknown comment {line:?}"
            );
            let fam = words
                .next()
                .unwrap_or_else(|| panic!("line {n}: TYPE without family"));
            let kind = words
                .next()
                .unwrap_or_else(|| panic!("line {n}: TYPE without kind"));
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "line {n}: bad metric kind {kind:?}"
            );
            assert!(
                types.insert(fam.to_string(), kind.to_string()).is_none(),
                "line {n}: duplicate TYPE for {fam}"
            );
            continue;
        }
        let sample = parse_sample(line).unwrap_or_else(|e| panic!("line {n}: {e}: {line:?}"));
        // Bucket/sum/count samples belong to their base histogram family.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                sample
                    .name
                    .strip_suffix(s)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(&sample.name)
            .to_string();
        assert!(
            types.contains_key(&family),
            "line {n}: sample {} has no preceding # TYPE",
            sample.name
        );
        match family_order.last() {
            Some(last) if *last == family => {}
            _ => {
                assert!(
                    !family_order.contains(&family),
                    "line {n}: family {family} is not contiguous"
                );
                family_order.push(family);
            }
        }
        samples.push(sample);
    }

    // Histogram invariants per series (family + labels minus `le`).
    let mut buckets: BTreeMap<SeriesKey, Vec<(String, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, f64> = BTreeMap::new();
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .unwrap_or_else(|| panic!("{} sample without le label", s.name))
                    .1
                    .clone();
                let rest: Vec<_> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                buckets
                    .entry((base.to_string(), rest))
                    .or_default()
                    .push((le, s.value));
            }
        } else if let Some(base) = s.name.strip_suffix("_count") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                counts.insert((base.to_string(), s.labels.clone()), s.value);
            }
        }
    }
    for ((family, series), bs) in &buckets {
        let mut prev = -1.0;
        for (le, v) in bs {
            assert!(
                *v >= prev,
                "{family}{series:?}: bucket le={le} count {v} < previous {prev}"
            );
            prev = *v;
        }
        let (last_le, last_v) = bs.last().unwrap();
        assert_eq!(
            last_le, "+Inf",
            "{family}{series:?}: buckets must end at +Inf"
        );
        let count = counts
            .get(&(family.clone(), series.clone()))
            .unwrap_or_else(|| panic!("{family}{series:?}: no _count sample"));
        assert_eq!(
            last_v, count,
            "{family}{series:?}: +Inf bucket disagrees with _count"
        );
    }
    (types, samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("no name terminator")?;
    let name = &line[..name_end];
    if name.is_empty()
        || !name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels = Vec::new();
    let rest = if line.as_bytes()[name_end] == b'{' {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        let body_start = name_end + 1;
        // Every loop exit either assigns the closing-brace offset or
        // returns a parse error, so `close` is definitely initialized.
        let close;
        // Scan label pairs: key="value with \\ \" \n escapes",...
        'pairs: loop {
            let key_start = match chars.peek() {
                Some(&(i, '}')) => {
                    chars.next();
                    close = body_start + i;
                    break 'pairs;
                }
                Some(&(i, _)) => i,
                None => return Err("unterminated label set".to_string()),
            };
            let mut key_end = key_start;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    key_end = i;
                    break;
                }
            }
            let key = &line[body_start + key_start..body_start + key_end];
            match chars.next() {
                Some((_, '"')) => {}
                other => return Err(format!("label {key:?} value not quoted: {other:?}")),
            }
            let mut value = String::new();
            loop {
                match chars.next() {
                    Some((_, '\\')) => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some((_, '"')) => break,
                    Some((_, c)) => value.push(c),
                    None => return Err("unterminated label value".to_string()),
                }
            }
            labels.push((key.to_string(), value));
            match chars.next() {
                Some((_, ',')) => {}
                Some((i, '}')) => {
                    close = body_start + i;
                    break 'pairs;
                }
                other => return Err(format!("bad label separator {other:?}")),
            }
        }
        &line[close + 1..]
    } else {
        &line[name_end..]
    };
    let value: f64 = rest
        .trim()
        .parse()
        .map_err(|_| format!("bad value {rest:?}"))?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[test]
fn label_escaping_round_trips_through_the_parser() {
    let raw = "quote \" backslash \\ newline \n done";
    // `labeled` escapes internally via escape_label_value; the escaped form
    // must be single-line or the whole document corrupts.
    assert!(!escape_label_value(raw).contains('\n'));

    let r = Registry::new(true);
    r.counter(&labeled("esc_total", "op", raw)).inc();
    let text = r.expose();
    assert_eq!(text.lines().count(), 2, "{text}");
    let (_, samples) = parse_and_check(&text);
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].labels, vec![("op".to_string(), raw.to_string())]);
    assert_eq!(samples[0].value, 1.0);
}

#[test]
fn families_are_announced_once_ordered_and_contiguous() {
    let r = Registry::new(true);
    // Interleaved registration order; exposition must still group and sort.
    r.counter(&labeled("zeta_total", "op", "b")).inc();
    r.counter(&labeled("alpha_total", "op", "a")).add(2);
    r.counter(&labeled("zeta_total", "op", "a")).inc();
    r.gauge("midline").set(-3);
    r.histogram(&labeled("lat_ns", "op", "x")).observe(100);
    r.histogram(&labeled("lat_ns", "op", "y")).observe(5_000);

    let text = r.expose();
    let (types, samples) = parse_and_check(&text);
    assert_eq!(
        types.get("alpha_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(types.get("zeta_total").map(String::as_str), Some("counter"));
    assert_eq!(types.get("midline").map(String::as_str), Some("gauge"));
    assert_eq!(types.get("lat_ns").map(String::as_str), Some("histogram"));
    // Counter families come out in sorted order (BTreeMap-backed).
    let counter_names: Vec<&str> = samples
        .iter()
        .map(|s| s.name.as_str())
        .filter(|n| n.ends_with("_total"))
        .collect();
    let mut sorted = counter_names.clone();
    sorted.sort();
    assert_eq!(counter_names, sorted);
    // A negative gauge survives the round trip.
    let mid = samples.iter().find(|s| s.name == "midline").unwrap();
    assert_eq!(mid.value, -3.0);
}

#[test]
fn histogram_buckets_are_cumulative_monotone_and_agree_with_count() {
    let r = Registry::new(true);
    let h = r.histogram(&labeled("spread_ns", "op", "mix"));
    for v in [1u64, 2, 3, 100, 100, 5_000_000, u64::MAX] {
        h.observe(v);
    }
    // An empty histogram still exposes a well-formed +Inf/sum/count triple.
    r.histogram(&labeled("spread_ns", "op", "idle"));
    let (_, samples) = parse_and_check(&r.expose());
    let count = samples
        .iter()
        .find(|s| s.name == "spread_ns_count" && s.labels == vec![("op".into(), "mix".into())])
        .unwrap();
    assert_eq!(count.value, 7.0);
    let idle_inf = samples
        .iter()
        .find(|s| s.name == "spread_ns_bucket" && s.labels.contains(&("op".into(), "idle".into())))
        .unwrap();
    assert_eq!(
        idle_inf.labels.iter().find(|(k, _)| k == "le").unwrap().1,
        "+Inf"
    );
    assert_eq!(idle_inf.value, 0.0);
}

#[test]
fn live_process_exposition_conforms() {
    // Whatever this test process has recorded so far (other tests in the
    // binary, background spans) must itself be conformant output.
    neptune_obs::registry()
        .counter("neptune_obs_exposition_selfcheck_total")
        .inc();
    let text = neptune_obs::registry().expose();
    let (types, samples) = parse_and_check(&text);
    assert!(!types.is_empty());
    assert!(samples
        .iter()
        .any(|s| s.name == "neptune_obs_exposition_selfcheck_total"));
}

#[test]
fn ci_snapshot_artifact_conforms_when_present() {
    // ci.sh saves the real server's exposition as METRICS_snapshot.prom;
    // validate it when running after a CI pass, skip quietly otherwise.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("METRICS_snapshot.prom");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    let (types, samples) = parse_and_check(&text);
    assert!(types.contains_key("neptune_server_rpc_ns"), "{path:?}");
    assert!(!samples.is_empty());
}
