//! The flight recorder: always-on, tail-based trace capture.
//!
//! Two fixed-size ring buffers hold completed [`TraceRecord`]s:
//!
//! * **recent** — the last [`RECENT_CAPACITY`] traces regardless of
//!   outcome; fast traces age out as new ones complete.
//! * **notable** — traces that ended in error or exceeded the slow-op
//!   threshold (the same runtime-adjustable knob as the slow-op log,
//!   `NEPTUNE_SLOW_OP_MS` / `ObsControl`), up to [`NOTABLE_CAPACITY`].
//!
//! This is *tail-based* sampling: the keep/drop decision happens at trace
//! completion when latency and outcome are known, so the interesting tail
//! is always retained while the steady state costs one mutex push per
//! completed trace (not per span). Traces are shared as `Arc`s; a dump is
//! a snapshot, never a drain.
//!
//! [`install_panic_hook`] chains onto the existing panic hook and writes a
//! JSON dump to the path named by `NEPTUNE_TRACE_DUMP` (if set) so CI can
//! upload the recorder's contents as a failure artifact.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError};

use crate::metrics::{registry, Counter, Histogram};
use crate::trace::slow_threshold_ns;
use crate::trace_tree::{render_trace_json, TraceRecord};

/// How many most-recent traces are retained regardless of outcome.
pub const RECENT_CAPACITY: usize = 32;

/// How many slow/error traces are retained (oldest evicted first).
pub const NOTABLE_CAPACITY: usize = 128;

/// The process-global tail-sampling ring buffers; see the module docs.
pub struct FlightRecorder {
    recent: Mutex<VecDeque<Arc<TraceRecord>>>,
    notable: Mutex<VecDeque<Arc<TraceRecord>>>,
    seq: AtomicU64,
}

struct RecorderMetrics {
    recorded: Arc<Counter>,
    notable: Arc<Counter>,
    spans: Arc<Counter>,
    trace_ns: Arc<Histogram>,
}

fn metrics() -> &'static RecorderMetrics {
    static METRICS: OnceLock<RecorderMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RecorderMetrics {
        recorded: registry().counter("neptune_obs_traces_recorded_total"),
        notable: registry().counter("neptune_obs_traces_notable_total"),
        spans: registry().counter("neptune_obs_trace_spans_total"),
        trace_ns: registry().histogram("neptune_obs_trace_ns"),
    })
}

/// The process-global flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(FlightRecorder::new)
}

impl FlightRecorder {
    fn new() -> FlightRecorder {
        FlightRecorder {
            recent: Mutex::new(VecDeque::with_capacity(RECENT_CAPACITY)),
            notable: Mutex::new(VecDeque::with_capacity(NOTABLE_CAPACITY)),
            seq: AtomicU64::new(1),
        }
    }

    /// Record a completed trace (called by the trace assembly layer).
    pub(crate) fn record(&self, mut t: TraceRecord) {
        t.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let m = metrics();
        m.recorded.inc();
        m.spans.add(t.spans.len() as u64);
        m.trace_ns.observe(t.total_ns);
        let threshold = slow_threshold_ns();
        let is_notable = t.error || (threshold != u64::MAX && t.total_ns >= threshold);
        let t = Arc::new(t);
        {
            let mut recent = self.recent.lock().unwrap_or_else(PoisonError::into_inner);
            if recent.len() >= RECENT_CAPACITY {
                recent.pop_front();
            }
            recent.push_back(t.clone());
        }
        if is_notable {
            m.notable.inc();
            let mut notable = self.notable.lock().unwrap_or_else(PoisonError::into_inner);
            if notable.len() >= NOTABLE_CAPACITY {
                notable.pop_front();
            }
            notable.push_back(t);
        }
    }

    /// Snapshot every retained trace (recent ∪ notable, deduplicated),
    /// oldest first by completion sequence.
    pub fn dump(&self) -> Vec<Arc<TraceRecord>> {
        let mut out: Vec<Arc<TraceRecord>> = self
            .notable
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect();
        {
            let recent = self.recent.lock().unwrap_or_else(PoisonError::into_inner);
            for t in recent.iter() {
                if !out.iter().any(|o| o.seq == t.seq) {
                    out.push(t.clone());
                }
            }
        }
        out.sort_by_key(|t| t.seq);
        out
    }

    /// Look up a retained trace by id (`None` once it has aged out of both
    /// rings).
    pub fn find(&self, trace_id: u64) -> Option<Arc<TraceRecord>> {
        let from_notable = self
            .notable
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .rev()
            .find(|t| t.trace_id == trace_id)
            .cloned();
        from_notable.or_else(|| {
            self.recent
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .rev()
                .find(|t| t.trace_id == trace_id)
                .cloned()
        })
    }

    /// Drop every retained trace (test/bench hook).
    pub fn clear(&self) {
        self.recent
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.notable
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// `(recent, notable)` occupancy, for status surfaces.
    pub fn len(&self) -> (usize, usize) {
        (
            self.recent
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
            self.notable
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len(),
        )
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }
}

/// Serialize the recorder's full contents as one JSON array (the CI dump
/// artifact format; also what `trace --json` prints without an id).
pub fn dump_json() -> String {
    let traces = recorder().dump();
    let mut out = String::from("[");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_trace_json(t));
    }
    out.push(']');
    out
}

/// Write the recorder's contents as JSON to the path named by the
/// `NEPTUNE_TRACE_DUMP` environment variable. Returns the path written, or
/// `None` when the variable is unset/empty or the write failed.
pub fn write_env_dump() -> Option<std::path::PathBuf> {
    let path = std::env::var("NEPTUNE_TRACE_DUMP")
        .ok()
        .filter(|p| !p.is_empty())?;
    let path = std::path::PathBuf::from(path);
    match std::fs::write(&path, dump_json()) {
        Ok(()) => Some(path),
        Err(_) => None,
    }
}

/// Install (once) a panic hook that chains the previous hook and then
/// dumps the flight recorder to `NEPTUNE_TRACE_DUMP` (when set), so a
/// crashing server or a failing fault-injection test leaves its last
/// traces behind as an artifact. Quiet when the variable is unset: tests
/// that *expect* panics (e.g. lockcheck) see no extra output or files.
pub fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            if let Some(path) = write_env_dump() {
                eprintln!(
                    "[flight-recorder] dumped {} trace(s) to {}",
                    recorder().dump().len(),
                    path.display()
                );
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_tree::SpanRecord;

    fn mk(trace_id: u64, total_ns: u64, error: bool) -> TraceRecord {
        TraceRecord {
            trace_id,
            root_name: "test.rec".into(),
            root_detail: String::new(),
            total_ns,
            error,
            dropped_spans: 0,
            seq: 0,
            spans: vec![SpanRecord {
                span_id: trace_id,
                parent: None,
                name: "test.rec".into(),
                detail: String::new(),
                start_ns: 0,
                duration_ns: total_ns,
            }],
        }
    }

    #[test]
    fn error_traces_survive_recent_churn() {
        // A private instance: churning the *global* recent ring here would
        // race with the trace_tree tests' record-then-find pattern.
        let r = FlightRecorder::new();
        let err_id = 0x10;
        r.record(mk(err_id, 100, true));
        for i in 0..(RECENT_CAPACITY as u64 + 8) {
            r.record(mk(0x1000 + i, 50, false));
        }
        let found = r.find(err_id).expect("error trace retained as notable");
        assert!(found.error);
        // Early fast traces have aged out of the recent ring.
        assert!(r.find(0x1000).is_none() || RECENT_CAPACITY > 8);
        let dump = r.dump();
        assert!(dump.iter().any(|t| t.trace_id == err_id));
        // Dump is deduplicated and ordered by seq.
        for w in dump.windows(2) {
            if let [a, b] = w {
                assert!(a.seq < b.seq);
            }
        }
    }

    #[test]
    fn dump_json_is_parseable_shape() {
        let r = recorder();
        r.record(mk(0x20, 42, false));
        let json = dump_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"total_ns\":42"));
    }
}
