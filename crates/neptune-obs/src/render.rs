//! Human-readable rendering of a [`Registry`](crate::Registry) — what the
//! shell's `stats` command prints. Histograms are drawn as per-bucket bar
//! charts instead of raw Prometheus text.

use crate::metrics::{bucket_upper_bound, Registry};

const BAR_WIDTH: usize = 30;

fn fmt_bound(b: Option<u64>) -> String {
    match b {
        None => "+Inf".to_string(),
        Some(b) if b >= 1_000_000_000 => format!("{:.1}s", b as f64 / 1e9),
        Some(b) if b >= 1_000_000 => format!("{:.1}ms", b as f64 / 1e6),
        Some(b) if b >= 1_000 => format!("{:.1}us", b as f64 / 1e3),
        Some(b) => format!("{b}"),
    }
}

fn fmt_mean(key: &str, mean: f64) -> String {
    // Duration-valued families are suffixed `_ns` by convention.
    if crate::metrics::family_of(key).ends_with("_ns") {
        if mean >= 1e9 {
            format!("{:.2}s", mean / 1e9)
        } else if mean >= 1e6 {
            format!("{:.2}ms", mean / 1e6)
        } else if mean >= 1e3 {
            format!("{:.2}us", mean / 1e3)
        } else {
            format!("{mean:.0}ns")
        }
    } else {
        format!("{mean:.1}")
    }
}

/// Render every metric in `registry` as indented, sectioned, human-readable
/// text. Histogram buckets with zero counts are skipped; each non-empty
/// bucket gets a proportional ASCII bar.
pub fn render_human(registry: &Registry) -> String {
    let mut out = String::new();

    let counters = registry.counters_snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (key, v) in counters {
            out.push_str(&format!("  {key:<56} {v}\n"));
        }
    }

    let gauges = registry.gauges_snapshot();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (key, v) in gauges {
            out.push_str(&format!("  {key:<56} {v}\n"));
        }
    }

    let histograms = registry.histograms_snapshot();
    if !histograms.is_empty() {
        out.push_str("histograms:\n");
        for (key, h) in histograms {
            let count = h.count();
            out.push_str(&format!(
                "  {key}  count={count} mean={}\n",
                fmt_mean(&key, h.mean())
            ));
            if count == 0 {
                continue;
            }
            let buckets = h.bucket_counts();
            let max = buckets.iter().copied().max().unwrap_or(1).max(1);
            for (i, &bucket) in buckets.iter().enumerate() {
                if bucket == 0 {
                    continue;
                }
                let bar_len = ((bucket as f64 / max as f64) * BAR_WIDTH as f64).ceil() as usize;
                out.push_str(&format!(
                    "    <= {:>8} {:>8} |{}\n",
                    fmt_bound(bucket_upper_bound(i)),
                    bucket,
                    "#".repeat(bar_len.min(BAR_WIDTH))
                ));
            }
        }
    }

    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labeled;

    #[test]
    fn renders_sections_and_bars() {
        let r = Registry::new(true);
        r.counter("hits_total").add(5);
        r.gauge("conns").set(2);
        let h = r.histogram(&labeled("lat_ns", "op", "ping"));
        h.observe(100);
        h.observe(100);
        h.observe(5_000_000);
        let text = render_human(&r);
        assert!(text.contains("counters:"));
        assert!(text.contains("hits_total"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("count=3"));
        assert!(text.contains('#'));
        // 5ms bucket bound renders with a unit, not raw ns.
        assert!(text.contains("ms"));
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        let r = Registry::new(true);
        assert_eq!(render_human(&r), "(no metrics recorded)\n");
    }
}
