//! Human-readable rendering of a [`Registry`](crate::Registry) — what the
//! shell's `stats` command prints. Histograms are drawn as per-bucket bar
//! charts instead of raw Prometheus text.

use crate::metrics::{bucket_upper_bound, Registry};

const BAR_WIDTH: usize = 30;

fn fmt_bound(b: Option<u64>) -> String {
    match b {
        None => "+Inf".to_string(),
        Some(b) if b >= 1_000_000_000 => format!("{:.1}s", b as f64 / 1e9),
        Some(b) if b >= 1_000_000 => format!("{:.1}ms", b as f64 / 1e6),
        Some(b) if b >= 1_000 => format!("{:.1}us", b as f64 / 1e3),
        Some(b) => format!("{b}"),
    }
}

fn fmt_mean(key: &str, mean: f64) -> String {
    // Duration-valued families are suffixed `_ns` by convention.
    if crate::metrics::family_of(key).ends_with("_ns") {
        if mean >= 1e9 {
            format!("{:.2}s", mean / 1e9)
        } else if mean >= 1e6 {
            format!("{:.2}ms", mean / 1e6)
        } else if mean >= 1e3 {
            format!("{:.2}us", mean / 1e3)
        } else {
            format!("{mean:.0}ns")
        }
    } else {
        format!("{mean:.1}")
    }
}

/// Render every metric in `registry` as indented, sectioned, human-readable
/// text. Histogram buckets with zero counts are skipped; each non-empty
/// bucket gets a proportional ASCII bar.
pub fn render_human(registry: &Registry) -> String {
    let mut out = String::new();

    let counters = registry.counters_snapshot();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (key, v) in counters {
            out.push_str(&format!("  {key:<56} {v}\n"));
        }
    }

    let gauges = registry.gauges_snapshot();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (key, v) in gauges {
            out.push_str(&format!("  {key:<56} {v}\n"));
        }
    }

    let histograms = registry.histograms_snapshot();
    if !histograms.is_empty() {
        out.push_str("histograms:\n");
        for (key, h) in histograms {
            let count = h.count();
            out.push_str(&format!(
                "  {key}  count={count} mean={}\n",
                fmt_mean(&key, h.mean())
            ));
            if count == 0 {
                continue;
            }
            // Estimated percentiles via log2-bucket interpolation; `~`
            // marks them as estimates (exact only up to bucket granularity).
            let quantiles: Vec<String> = [(50u32, 0.50f64), (95, 0.95), (99, 0.99)]
                .iter()
                .filter_map(|&(pct, q)| {
                    h.quantile_estimate(q)
                        .map(|v| format!("p{pct}~{}", fmt_mean(&key, v as f64)))
                })
                .collect();
            if !quantiles.is_empty() {
                out.push_str(&format!("    {}\n", quantiles.join("  ")));
            }
            let buckets = h.bucket_counts();
            let max = buckets.iter().copied().max().unwrap_or(1).max(1);
            for (i, &bucket) in buckets.iter().enumerate() {
                if bucket == 0 {
                    continue;
                }
                let bar_len = ((bucket as f64 / max as f64) * BAR_WIDTH as f64).ceil() as usize;
                out.push_str(&format!(
                    "    <= {:>8} {:>8} |{}\n",
                    fmt_bound(bucket_upper_bound(i)),
                    bucket,
                    "#".repeat(bar_len.min(BAR_WIDTH))
                ));
            }
        }
    }

    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::labeled;

    #[test]
    fn renders_sections_and_bars() {
        let r = Registry::new(true);
        r.counter("hits_total").add(5);
        r.gauge("conns").set(2);
        let h = r.histogram(&labeled("lat_ns", "op", "ping"));
        h.observe(100);
        h.observe(100);
        h.observe(5_000_000);
        let text = render_human(&r);
        assert!(text.contains("counters:"));
        assert!(text.contains("hits_total"));
        assert!(text.contains("gauges:"));
        assert!(text.contains("histograms:"));
        assert!(text.contains("count=3"));
        assert!(text.contains('#'));
        // 5ms bucket bound renders with a unit, not raw ns.
        assert!(text.contains("ms"));
        // Estimated percentiles are printed for non-empty histograms.
        assert!(text.contains("p50~"), "{text}");
        assert!(text.contains("p95~"), "{text}");
        assert!(text.contains("p99~"), "{text}");
    }

    #[test]
    fn percentile_line_tracks_distribution() {
        let r = Registry::new(true);
        let h = r.histogram("skew_ns");
        for _ in 0..99 {
            h.observe(100); // bucket le=127
        }
        h.observe(1_000_000); // one outlier ~1ms
        let p50 = h.quantile_estimate(0.50).unwrap_or(0);
        let p99 = h.quantile_estimate(0.99).unwrap_or(0);
        assert!(
            p50 <= 127,
            "p50 estimate {p50} should sit in the low bucket"
        );
        assert!(p99 <= 127, "p99 rank 99 is still a 100ns sample, got {p99}");
        let p100 = h.quantile_estimate(1.0).unwrap_or(0);
        assert!(
            (524_288..=1_048_575).contains(&p100),
            "max falls in the outlier's bucket, got {p100}"
        );
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        let r = Registry::new(true);
        assert_eq!(render_human(&r), "(no metrics recorded)\n");
    }
}
