//! Dynamic lock-order checking: a debug-build-only ranked-acquisition
//! tracker that panics the moment a thread acquires locks against the
//! declared hierarchy.
//!
//! The server's hierarchy (DESIGN.md §9) is *gate mutex → HAM `RwLock`*,
//! never the reverse. `neptune-lint`'s `lock-order` rule checks this
//! syntactically; this module is the runtime half of the same contract:
//! every guard the server takes carries a [`Held`] token, and acquiring a
//! rank while the same thread already holds an equal or higher rank panics
//! with both acquisition sites named. Under `cargo test` (debug
//! assertions on) an inversion therefore fails loudly at the exact call
//! site instead of deadlocking some unlucky future run; in release builds
//! [`Held`] is a zero-sized no-op and the tracker compiles away entirely.
//!
//! Ranks are `u32`s with gaps so layers can slot locks in between;
//! [`GATE`] and [`HAM`] are the two the server uses today. Tokens may be
//! released in any order (the server drops the gate before the HAM guard),
//! so the per-thread state is a small set, not a stack.

/// A lock's position in the acquisition hierarchy: lower ranks must be
/// acquired first. Equal ranks conflict (re-entry on the same thread is an
/// error for every lock in the hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Rank(pub u32);

/// The committed-view publication slot (`Published<CommittedView>`): the
/// brief internal mutex behind `Published::load`/`publish`. Ranked below
/// the gate so a view load is legal only while holding *no* server lock —
/// the lock-free read path's whole contract — while writers publish after
/// releasing their guards.
pub const VIEW: Rank = Rank(5);

/// The transaction gate mutex (`Shared::gate` in neptune-server).
pub const GATE: Rank = Rank(10);

/// The HAM `RwLock` (`Shared::ham` in neptune-server), read or write side.
/// Retained for unsharded embedders; the sharded server replaces it with
/// per-shard ranks from [`shard`].
pub const HAM: Rank = Rank(20);

/// Base rank of the per-shard machine locks: shard `i` ranks at
/// `SHARD_BASE + i`, so acquiring shards in ascending index order is
/// automatically rank-ordered — the cross-shard two-phase commit's
/// deadlock-freedom argument, checked at runtime.
pub const SHARD_BASE: Rank = Rank(30);

/// The rank of shard `index`'s machine lock (see [`SHARD_BASE`]).
pub const fn shard(index: usize) -> Rank {
    Rank(SHARD_BASE.0 + index as u32)
}

/// Witness that a lock of some rank is held by the current thread.
/// Dropping it releases the rank. Zero-sized in release builds.
#[derive(Debug)]
#[must_use = "dropping the token immediately releases the rank"]
pub struct Held {
    #[cfg(debug_assertions)]
    id: u64,
}

/// Record acquisition of `rank` by the current thread.
///
/// # Panics
///
/// In debug builds, if this thread already holds a lock of rank `>= rank`
/// — the inversion that can deadlock against a thread acquiring in the
/// declared order. Release builds never panic (the tracker is compiled
/// out).
#[inline]
pub fn acquire(rank: Rank, name: &'static str) -> Held {
    #[cfg(debug_assertions)]
    {
        debug_impl::acquire(rank, name)
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (rank, name);
        Held {}
    }
}

#[cfg(debug_assertions)]
mod debug_impl {
    use super::{Held, Rank};
    use std::cell::RefCell;

    struct Entry {
        rank: Rank,
        name: &'static str,
        id: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    pub(super) fn acquire(rank: Rank, name: &'static str) -> Held {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(conflict) = held.iter().find(|e| e.rank >= rank) {
                panic!(
                    "lock-order violation: acquiring `{name}` (rank {}) while holding \
                     `{}` (rank {}); the hierarchy is view \u{2192} gate \u{2192} \
                     shard[i] ascending, lower ranks first (DESIGN.md \u{a7}9)",
                    rank.0, conflict.name, conflict.rank.0
                );
            }
            let id = NEXT_ID.with(|n| {
                let id = n.get();
                n.set(id + 1);
                id
            });
            held.push(Entry { rank, name, id });
            Held { id }
        })
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                if let Ok(mut held) = held.try_borrow_mut() {
                    if let Some(pos) = held.iter().position(|e| e.id == self.id) {
                        held.remove(pos);
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_acquisition_is_clean() {
        let gate = acquire(GATE, "gate");
        let ham = acquire(HAM, "ham");
        // Out-of-order release (the server's pattern: gate first).
        drop(gate);
        drop(ham);
        // And the whole sequence again, proving state was fully released.
        let gate = acquire(GATE, "gate");
        drop(gate);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn inverted_acquisition_panics() {
        let _ham = acquire(HAM, "ham");
        let _gate = acquire(GATE, "gate");
        // Release builds compile the tracker out; the cfg_attr above makes
        // this test assert the panic only when the tracker is live.
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (tracker compiled out)");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn same_rank_reentry_panics() {
        let _a = acquire(HAM, "ham");
        let _b = acquire(HAM, "ham");
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (tracker compiled out)");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-order violation"))]
    fn view_load_under_gate_panics() {
        // The lock-free contract: a view load may not happen while any
        // server lock is held.
        let _gate = acquire(GATE, "gate");
        let _view = acquire(VIEW, "view");
        #[cfg(not(debug_assertions))]
        panic!("lock-order violation (tracker compiled out)");
    }

    #[test]
    fn ascending_shard_acquisition_is_clean_and_descending_is_not() {
        let s0 = acquire(shard(0), "shard 0");
        let s3 = acquire(shard(3), "shard 3");
        drop(s0);
        drop(s3);
        let caught = std::thread::spawn(|| {
            let _s3 = acquire(shard(3), "shard 3");
            let _s1 = acquire(shard(1), "shard 1");
        })
        .join();
        if cfg!(debug_assertions) {
            assert!(caught.is_err(), "descending shard order should panic");
        }
    }

    #[test]
    fn ranks_are_per_thread() {
        let _ham = acquire(HAM, "ham");
        // Another thread starts with a clean slate: gate-after-HAM on
        // *this* thread is the violation, not across threads.
        std::thread::spawn(|| {
            let _gate = acquire(GATE, "gate");
        })
        .join()
        .expect("spawned thread should not panic");
    }
}
