//! The metrics registry: counters, gauges, and log2-bucket histograms.
//!
//! A metric is identified by a *key*: a family name optionally followed by
//! one `{label="value"}` pair, e.g. `neptune_server_rpc_ns{op="openNode"}`.
//! Keys sharing a family are one Prometheus metric family in the text
//! exposition. Handles are `Arc`s; callers on hot paths cache them in
//! `OnceLock` statics (the `span!` macro does this automatically) so the
//! steady-state cost of an observation is a few relaxed atomic ops.
//!
//! The registry is process-global ([`registry`]). [`Registry::reset`]
//! zeroes every metric *in place* — it never removes entries, so cached
//! handles stay live across resets (benches and tests rely on this).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// Number of histogram buckets. Bucket `i < BUCKETS-1` counts values
/// `v ≤ 2^i − 1`; the final bucket is `+Inf`. With nanosecond durations the
/// last bounded bucket (`2^38 − 1` ns) is ≈ 4.6 minutes.
pub const BUCKETS: usize = 40;

/// Bucket index for a value: `0` holds only zero, then one bucket per
/// power of two.
#[inline]
fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i`, or `None` for the `+Inf` bucket.
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i >= BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value. For mirroring a count maintained elsewhere
    /// (e.g. a cache's internal hit counter) into the registry; the caller
    /// is responsible for monotonicity.
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtract one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is currently lower — high-water-mark
    /// tracking (e.g. peak concurrent connections), so scrapes see the
    /// maximum reached since the last reset rather than whatever the
    /// instantaneous occupancy happens to be at scrape time.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Increment now and decrement when the returned guard drops — scoped
    /// occupancy tracking (in-flight requests, open connections).
    pub fn scoped(this: &Arc<Gauge>) -> GaugeGuard {
        this.inc();
        GaugeGuard(this.clone())
    }
}

/// Decrements its gauge on drop; see [`Gauge::scoped`].
#[derive(Debug)]
pub struct GaugeGuard(Arc<Gauge>);

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// A fixed log2-bucket histogram (see [`BUCKETS`]). Suited to latency in
/// nanoseconds and other long-tailed non-negative integer distributions
/// (e.g. delta-chain replay depth).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) by locating the
    /// log2 bucket holding the target rank and interpolating linearly
    /// between its bounds. `None` when the histogram is empty. Values in
    /// the `+Inf` bucket clamp to the last finite bound — the estimate is
    /// a floor there, which the renderer marks.
    pub fn quantile_estimate(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cumulative;
            cumulative += c;
            if cumulative >= target {
                let upper = match bucket_upper_bound(i) {
                    Some(b) => b,
                    // +Inf bucket: clamp to the last finite bound.
                    None => return bucket_upper_bound(BUCKETS - 2),
                };
                let lower = if i == 0 {
                    0
                } else {
                    bucket_upper_bound(i - 1).unwrap_or(0).saturating_add(1)
                };
                // Linear interpolation by rank position within the bucket.
                let into = (target - before) as f64 / c as f64;
                let width = upper.saturating_sub(lower) as f64;
                return Some(lower + (width * into) as u64);
            }
        }
        bucket_upper_bound(BUCKETS - 2)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// Build a `family{key="value"}` metric key. The value is escaped per the
/// Prometheus text exposition rules (`\` → `\\`, `"` → `\"`, newline →
/// `\n`), so the key is exactly the line a scraper will see.
pub fn labeled(family: &str, key: &str, value: &str) -> String {
    if value.contains(['\\', '"', '\n']) {
        format!("{family}{{{key}=\"{}\"}}", escape_label_value(value))
    } else {
        format!("{family}{{{key}=\"{value}\"}}")
    }
}

/// Escape a label value for the Prometheus text exposition format.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The family part of a key (everything before the label set).
pub fn family_of(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Insert a suffix between a key's family and its label set:
/// `f{op="x"}` + `_count` → `f_count{op="x"}`.
fn with_suffix(key: &str, suffix: &str) -> String {
    match key.find('{') {
        Some(i) => format!("{}{suffix}{}", &key[..i], &key[i..]),
        None => format!("{key}{suffix}"),
    }
}

/// Append an extra label to a key's label set (creating one if absent).
fn with_extra_label(key: &str, label: &str, value: &str) -> String {
    match key.strip_suffix('}') {
        Some(stripped) => format!("{stripped},{label}=\"{value}\"}}"),
        None => format!("{key}{{{label}=\"{value}\"}}"),
    }
}

type MetricMap<T> = RwLock<BTreeMap<String, Arc<T>>>;

/// A set of named counters, gauges, and histograms.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    counters: MetricMap<Counter>,
    gauges: MetricMap<Gauge>,
    histograms: MetricMap<Histogram>,
}

fn get_or_create<T: Default>(map: &MetricMap<T>, key: &str) -> Arc<T> {
    if let Some(m) = map.read().unwrap_or_else(PoisonError::into_inner).get(key) {
        return m.clone();
    }
    map.write()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key.to_string())
        .or_default()
        .clone()
}

impl Registry {
    /// A fresh registry (normally you want the global [`registry`]).
    pub fn new(enabled: bool) -> Registry {
        Registry {
            enabled: AtomicBool::new(enabled),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Whether instrumentation sites should record. Checking this is the
    /// *only* cost a disabled registry imposes.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Get or create the counter for `key`.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        get_or_create(&self.counters, key)
    }

    /// Get or create the gauge for `key`.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, key)
    }

    /// Get or create the histogram for `key`.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, key)
    }

    /// Zero every metric in place. Entries are never removed, so handles
    /// cached at instrumentation sites remain registered; this is a bench
    /// and test hook, not something a server does while serving.
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            c.store(0);
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            g.set(0);
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
        {
            h.reset();
        }
    }

    /// Prometheus text exposition of every metric. Families are announced
    /// with `# TYPE` lines; histogram buckets are cumulative with the
    /// standard `le` label and are elided past the last non-empty bucket.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, c) in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let fam = family_of(key);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} counter\n"));
                last_family = fam.to_string();
            }
            out.push_str(&format!("{key} {}\n", c.get()));
        }
        last_family.clear();
        for (key, g) in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let fam = family_of(key);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} gauge\n"));
                last_family = fam.to_string();
            }
            out.push_str(&format!("{key} {}\n", g.get()));
        }
        last_family.clear();
        for (key, h) in self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            let fam = family_of(key);
            if fam != last_family {
                out.push_str(&format!("# TYPE {fam} histogram\n"));
                last_family = fam.to_string();
            }
            let counts = h.bucket_counts();
            let last_nonzero = counts.iter().rposition(|&c| c > 0);
            let mut cumulative = 0u64;
            if let Some(last) = last_nonzero {
                for (i, &c) in counts.iter().enumerate().take(last + 1) {
                    cumulative += c;
                    let le = match bucket_upper_bound(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!(
                        "{} {cumulative}\n",
                        with_extra_label(&with_suffix(key, "_bucket"), "le", &le)
                    ));
                }
            }
            if last_nonzero.is_none_or(|l| l < BUCKETS - 1) {
                out.push_str(&format!(
                    "{} {cumulative}\n",
                    with_extra_label(&with_suffix(key, "_bucket"), "le", "+Inf")
                ));
            }
            out.push_str(&format!("{} {}\n", with_suffix(key, "_sum"), h.sum()));
            out.push_str(&format!("{} {}\n", with_suffix(key, "_count"), h.count()));
        }
        out
    }

    /// A flat numeric snapshot: counters and gauges by key, histograms as
    /// `<key>_count` and `<key>_sum` pairs. This is what the bench harness
    /// diffs around each benchmark run.
    pub fn flat_snapshot(&self) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for (key, c) in self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            out.insert(key.clone(), c.get() as f64);
        }
        for (key, g) in self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            out.insert(key.clone(), g.get() as f64);
        }
        for (key, h) in self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            out.insert(with_suffix(key, "_count"), h.count() as f64);
            out.insert(with_suffix(key, "_sum"), h.sum() as f64);
        }
        out
    }

    /// Visit every histogram (for rendering).
    pub(crate) fn histograms_snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Visit every counter (for rendering).
    pub(crate) fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Visit every gauge (for rendering).
    pub(crate) fn gauges_snapshot(&self) -> Vec<(String, i64)> {
        self.gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global registry. Starts enabled unless the
/// `NEPTUNE_OBS_DISABLED` environment variable is set (to anything
/// non-empty) at first use.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| {
        let disabled = std::env::var("NEPTUNE_OBS_DISABLED").is_ok_and(|v| !v.is_empty());
        Registry::new(!disabled)
    })
}

/// Whether the global registry is recording. Instrumentation sites guard
/// on this so a disabled registry costs one relaxed load.
#[inline]
pub fn enabled() -> bool {
    registry().enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 38) - 1), 38);
        assert_eq!(bucket_index(1 << 38), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(3), Some(7));
        assert_eq!(bucket_upper_bound(BUCKETS - 1), None);
    }

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let r = Registry::new(true);
        r.counter("c_total").add(3);
        r.counter("c_total").inc();
        assert_eq!(r.counter("c_total").get(), 4);
        r.gauge("g").set(7);
        r.gauge("g").dec();
        assert_eq!(r.gauge("g").get(), 6);
        let h = r.histogram("h_ns");
        h.observe(5);
        h.observe(100);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 105);
        assert!((h.mean() - 52.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_guard_tracks_scope() {
        let r = Registry::new(true);
        let g = r.gauge("inflight");
        {
            let _a = Gauge::scoped(&g);
            let _b = Gauge::scoped(&g);
            assert_eq!(g.get(), 2);
        }
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn exposition_contains_families_and_cumulative_buckets() {
        let r = Registry::new(true);
        r.counter(&labeled("req_total", "op", "ping")).add(2);
        r.gauge("conns").set(1);
        let h = r.histogram(&labeled("lat_ns", "op", "ping"));
        h.observe(1); // bucket 1 (le 1)
        h.observe(3); // bucket 2 (le 3)
        let text = r.expose();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{op=\"ping\"} 2"));
        assert!(text.contains("# TYPE conns gauge"));
        assert!(text.contains("conns 1"));
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{op=\"ping\",le=\"1\"} 1"));
        assert!(text.contains("lat_ns_bucket{op=\"ping\",le=\"3\"} 2"));
        assert!(text.contains("lat_ns_bucket{op=\"ping\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ns_sum{op=\"ping\"} 4"));
        assert!(text.contains("lat_ns_count{op=\"ping\"} 2"));
    }

    #[test]
    fn reset_zeroes_in_place_keeping_handles_live() {
        let r = Registry::new(true);
        let c = r.counter("kept_total");
        c.add(9);
        let h = r.histogram("kept_ns");
        h.observe(10);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // The pre-reset handle still feeds the registered metric.
        c.inc();
        assert_eq!(r.counter("kept_total").get(), 1);
    }

    #[test]
    fn flat_snapshot_has_histogram_count_and_sum() {
        let r = Registry::new(true);
        r.histogram(&labeled("x_ns", "op", "a")).observe(4);
        let snap = r.flat_snapshot();
        assert_eq!(snap.get("x_ns_count{op=\"a\"}"), Some(&1.0));
        assert_eq!(snap.get("x_ns_sum{op=\"a\"}"), Some(&4.0));
    }

    #[test]
    fn disabled_flag_is_runtime_togglable() {
        let r = Registry::new(false);
        assert!(!r.enabled());
        r.set_enabled(true);
        assert!(r.enabled());
    }
}
