//! Structured tracing spans.
//!
//! A span is a timed scope with a static name of the form
//! `layer.operation` (e.g. `ham.open_node`, `storage.wal_fsync`). On drop
//! it records its duration into the histogram
//! `neptune_<layer>_op_ns{op="operation"}`, notifies the installed
//! [`Subscriber`] (if any), and writes a line to stderr when the duration
//! exceeds the slow-op threshold (`NEPTUNE_SLOW_OP_MS`).
//!
//! The [`span!`] macro is the entry point; it caches the histogram handle
//! in a per-callsite static so steady-state cost is a relaxed-load guard
//! plus one `Instant::now` pair and a few relaxed atomic adds. The detail
//! string is only formatted when a subscriber is installed or the slow-op
//! log is armed.

use crate::metrics::{enabled, labeled, registry, Histogram};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// What a [`Subscriber`] sees when a span closes.
#[derive(Debug)]
pub struct SpanEvent<'a> {
    /// The static span name (`layer.operation`).
    pub name: &'static str,
    /// The formatted detail string, empty when the span carried none.
    pub detail: &'a str,
    /// How long the span was open.
    pub duration: Duration,
    /// The trace this span belonged to, when one was active on the
    /// emitting thread (see [`crate::trace_tree`]).
    pub trace_id: Option<u64>,
}

/// Receives closed-span events. Implementations must be cheap or buffer
/// internally; they are called inline on the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// Called once per closed span.
    fn on_span(&self, event: &SpanEvent<'_>);
}

static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
static HAS_SUBSCRIBER: AtomicBool = AtomicBool::new(false);

/// Install (or with `None`, remove) the global subscriber.
pub fn set_subscriber(sub: Option<Arc<dyn Subscriber>>) {
    HAS_SUBSCRIBER.store(sub.is_some(), Ordering::Relaxed);
    *SUBSCRIBER.write().unwrap_or_else(PoisonError::into_inner) = sub;
}

/// A subscriber that writes one human-readable line per span to a
/// `Write` sink (a file, or stderr).
pub struct LogSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
}

impl LogSubscriber {
    /// Log to stderr.
    pub fn stderr() -> LogSubscriber {
        LogSubscriber {
            out: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// Log to (appending) the file at `path`.
    pub fn to_file(path: &Path) -> std::io::Result<LogSubscriber> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(LogSubscriber {
            out: Mutex::new(Box::new(f)),
        })
    }
}

impl Subscriber for LogSubscriber {
    fn on_span(&self, event: &SpanEvent<'_>) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let trace = match event.trace_id {
            Some(id) => format!(" t{id:016x}"),
            None => String::new(),
        };
        if event.detail.is_empty() {
            let _ = writeln!(out, "[span]{trace} {} {:?}", event.name, event.duration);
        } else {
            let _ = writeln!(
                out,
                "[span]{trace} {} {:?} {}",
                event.name, event.duration, event.detail
            );
        }
    }
}

/// Slow-op threshold in nanoseconds; `u64::MAX` means off. Initialized
/// once from `NEPTUNE_SLOW_OP_MS`.
static SLOW_NS: AtomicU64 = AtomicU64::new(u64::MAX);
static SLOW_INIT: OnceLock<()> = OnceLock::new();

fn slow_ns() -> u64 {
    SLOW_INIT.get_or_init(|| {
        if let Ok(ms) = std::env::var("NEPTUNE_SLOW_OP_MS") {
            if let Ok(ms) = ms.trim().parse::<u64>() {
                SLOW_NS.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
            }
        }
    });
    SLOW_NS.load(Ordering::Relaxed)
}

/// Override the slow-op threshold at runtime (`None` disables it). Wins
/// over `NEPTUNE_SLOW_OP_MS`; primarily a test hook.
pub fn set_slow_op_threshold(threshold: Option<Duration>) {
    SLOW_INIT.get_or_init(|| ());
    let ns = threshold.map_or(u64::MAX, |d| d.as_nanos().min(u64::MAX as u128) as u64);
    SLOW_NS.store(ns, Ordering::Relaxed);
}

/// The current slow-op threshold in nanoseconds (`u64::MAX` when off);
/// shared with the flight recorder's tail-sampling retention decision.
pub(crate) fn slow_threshold_ns() -> u64 {
    slow_ns()
}

/// Whether span detail strings would be consumed by anyone right now.
#[inline]
pub fn detail_wanted() -> bool {
    HAS_SUBSCRIBER.load(Ordering::Relaxed) || slow_ns() != u64::MAX
}

/// Deliver a finished-span event: subscriber notification plus the
/// slow-op log. Called by [`Span`] on drop; also usable directly for
/// hand-rolled timing sites.
pub fn emit(name: &'static str, detail: &str, duration: Duration) {
    if HAS_SUBSCRIBER.load(Ordering::Relaxed) {
        let sub = SUBSCRIBER
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        if let Some(sub) = sub {
            sub.on_span(&SpanEvent {
                name,
                detail,
                duration,
                trace_id: crate::trace_tree::current_trace_id(),
            });
        }
    }
    let threshold = slow_ns();
    if threshold != u64::MAX && duration.as_nanos() as u64 >= threshold {
        if detail.is_empty() {
            eprintln!("[slow-op] {name} took {duration:?}");
        } else {
            eprintln!("[slow-op] {name} took {duration:?} ({detail})");
        }
    }
}

/// The histogram key for a span name: `layer.operation` →
/// `neptune_<layer>_op_ns{op="operation"}`. Names without a dot fall back
/// to `neptune_obs_span_ns{op="<name>"}`.
pub fn histogram_key(name: &str) -> String {
    match name.split_once('.') {
        Some((layer, op)) => labeled(&format!("neptune_{layer}_op_ns"), "op", op),
        None => labeled("neptune_obs_span_ns", "op", name),
    }
}

/// An open span; created by the [`span!`] macro via [`Span::enter`].
/// Records on drop. Inert (no timing, no recording) when the registry is
/// disabled.
#[must_use = "a span records when dropped; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    // Borrowed from the callsite's `static OnceLock` rather than cloned:
    // the Arc in the static lives forever, and skipping the clone saves
    // two atomic ref-count updates per span on hot paths.
    hist: &'static Histogram,
    detail: Option<String>,
    start: Instant,
    // Present when a trace is active on this thread: the span's slot in
    // the causal tree (see `trace_tree`).
    trace: Option<crate::trace_tree::SpanHandle>,
}

impl Span {
    /// Open a span. `cell` is the callsite's cached histogram handle (the
    /// macro supplies a `static OnceLock`); `detail` is formatted only if
    /// a subscriber or the slow-op log would consume it.
    pub fn enter(
        name: &'static str,
        cell: &'static OnceLock<Arc<Histogram>>,
        detail: fmt::Arguments<'_>,
    ) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        let hist: &'static Histogram =
            cell.get_or_init(|| registry().histogram(&histogram_key(name)));
        let trace = crate::trace_tree::enter_traced_span();
        // Trace records keep the detail too, so an active trace forces the
        // formatting that a subscriber or the slow-op log otherwise would.
        let detail = if trace.is_some() || detail_wanted() {
            Some(detail.to_string())
        } else {
            None
        };
        Span {
            inner: Some(SpanInner {
                name,
                hist,
                detail,
                start: Instant::now(),
                trace,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let dur = inner.start.elapsed();
            inner.hist.observe_duration(dur);
            if detail_wanted() {
                emit(inner.name, inner.detail.as_deref().unwrap_or(""), dur);
            }
            if let Some(handle) = inner.trace {
                // Moves the formatted detail into the trace record rather
                // than re-allocating it — this is the per-span hot path.
                crate::trace_tree::exit_traced_span(
                    handle,
                    inner.name,
                    inner.detail.unwrap_or_default(),
                    dur,
                );
            }
        }
    }
}

/// Time the enclosing scope as a span.
///
/// ```
/// # use neptune_obs::span;
/// # let (ctx, node) = (1u32, 2u32);
/// let _span = span!("ham.open_node", "ctx{} node{}", ctx, node);
/// // ... work ...
/// ```
///
/// The first argument must be a `"layer.operation"` string literal; the
/// optional rest is a `format!`-style detail message, only rendered when a
/// subscriber is installed or the slow-op log is armed. Bind the result to
/// a named `_span` variable — binding to `_` drops (and records)
/// immediately.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::span!($name, "")
    };
    ($name:literal, $($detail:tt)*) => {{
        static __NEPTUNE_OBS_HIST: ::std::sync::OnceLock<
            ::std::sync::Arc<$crate::Histogram>,
        > = ::std::sync::OnceLock::new();
        $crate::Span::enter($name, &__NEPTUNE_OBS_HIST, ::std::format_args!($($detail)*))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn histogram_key_scheme() {
        assert_eq!(
            histogram_key("ham.open_node"),
            "neptune_ham_op_ns{op=\"open_node\"}"
        );
        assert_eq!(
            histogram_key("storage.wal_fsync"),
            "neptune_storage_op_ns{op=\"wal_fsync\"}"
        );
        assert_eq!(
            histogram_key("oddball"),
            "neptune_obs_span_ns{op=\"oddball\"}"
        );
    }

    #[test]
    fn span_records_into_global_registry() {
        registry().set_enabled(true);
        let key = histogram_key("testlayer.op_a");
        let before = registry().histogram(&key).count();
        {
            let _span = span!("testlayer.op_a");
        }
        {
            let _span = span!("testlayer.op_a", "detail {}", 42);
        }
        assert_eq!(registry().histogram(&key).count(), before + 2);
    }

    struct CountingSub(AtomicUsize, Mutex<String>);
    impl Subscriber for CountingSub {
        fn on_span(&self, event: &SpanEvent<'_>) {
            // Tests share the global subscriber slot; only count our span
            // so concurrently-running tests can't skew the assertion.
            if event.name == "testlayer.op_b" {
                self.0.fetch_add(1, Ordering::Relaxed);
                *self.1.lock().unwrap() = format!("{} {}", event.name, event.detail);
            }
        }
    }

    #[test]
    fn subscriber_sees_name_and_detail() {
        registry().set_enabled(true);
        let sub = Arc::new(CountingSub(AtomicUsize::new(0), Mutex::new(String::new())));
        set_subscriber(Some(sub.clone()));
        {
            let _span = span!("testlayer.op_b", "node {}", 7);
        }
        set_subscriber(None);
        assert_eq!(sub.0.load(Ordering::Relaxed), 1);
        assert_eq!(&*sub.1.lock().unwrap(), "testlayer.op_b node 7");
    }
}
