//! Request-scoped causal trace trees.
//!
//! A *trace* is the full causal story of one request: a tree of spans
//! rooted at the operation that originated it (a shell command, a client
//! RPC, or a server-side request when the client sent no context). Every
//! [`crate::span!`] callsite automatically becomes a child of the active
//! span via a thread-local span stack, so existing instrumentation in the
//! HAM and storage layers parents correctly with no changes at the
//! callsites.
//!
//! ## Identity and context
//!
//! Trace and span ids are 64-bit integers from one process-wide counter
//! seeded from the wall clock at startup (rendered as `t%016x` / `%x`), so
//! ids are unique within a process and collide across processes only with
//! negligible probability. [`TraceContext`] is the propagation unit: the
//! trace id plus the caller's active span id. It crosses the wire as an
//! optional request prefix (see `neptune-server`'s proto layer); absence
//! means "the server originates the trace".
//!
//! ## Cross-thread assembly
//!
//! Spans are buffered per-thread (no locks on the span hot path) and
//! flushed into a sharded pending-trace table when the thread's outermost
//! span for that trace closes. The participant that *created* the pending
//! entry finalizes the trace — merging every thread's segment into one
//! [`TraceRecord`] — and hands it to the flight recorder
//! ([`crate::recorder`]). When a server joins a client-originated trace in
//! the same process (the integration-test topology), the server's segment
//! is flushed before the response frame is written, so the client's
//! finalize always sees it.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::metrics::enabled;

/// Hard cap on spans retained per trace; a runaway loop inside one request
/// must not grow an unbounded buffer. Excess spans are counted in
/// [`TraceRecord::dropped_spans`] instead of stored.
pub const MAX_SPANS_PER_TRACE: usize = 512;

/// The propagation unit for request-scoped tracing: which trace this is,
/// and which span the next child should hang under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this context belongs to.
    pub trace_id: u64,
    /// The currently active span (children parent under this).
    pub span_id: u64,
    /// The active span's own parent, if any.
    pub parent: Option<u64>,
}

/// One closed span (or zero-duration annotation) inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub span_id: u64,
    /// Parent span id; `None` for a trace root. A parent id not present in
    /// the record (a wire parent from another process) also renders as a
    /// root.
    pub parent: Option<u64>,
    /// Span name (`layer.operation`), or `"note"` for annotations.
    pub name: String,
    /// Formatted detail message (may be empty).
    pub detail: String,
    /// Offset of span open relative to the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// How long the span was open (0 for annotations).
    pub duration_ns: u64,
}

/// A completed trace: the merged span tree plus summary fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace id.
    pub trace_id: u64,
    /// Name of the root span (e.g. `server.rpc`, `shell.command`).
    pub root_name: String,
    /// Detail of the root span (e.g. the RPC op name).
    pub root_detail: String,
    /// Wall-clock duration of the root span in nanoseconds.
    pub total_ns: u64,
    /// Whether any participant tagged the trace as failed.
    pub error: bool,
    /// Spans discarded because the trace exceeded [`MAX_SPANS_PER_TRACE`].
    pub dropped_spans: u64,
    /// Completion sequence number, assigned by the flight recorder.
    pub seq: u64,
    /// Every retained span, in close order (sort by `start_ns` to walk).
    pub spans: Vec<SpanRecord>,
}

// ---------------------------------------------------------------------------
// Id generation
// ---------------------------------------------------------------------------

static NEXT_ID: OnceLock<AtomicU64> = OnceLock::new();

fn next_id() -> u64 {
    let counter = NEXT_ID.get_or_init(|| {
        // Seed from the wall clock so two processes tracing one request
        // allocate from far-apart ranges; uniqueness only has to hold well
        // enough for parent references to be unambiguous.
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        AtomicU64::new(nanos | 1)
    });
    counter.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Pending-trace table (cross-thread segment merge)
// ---------------------------------------------------------------------------

struct Pending {
    base: Instant,
    spans: Vec<SpanRecord>,
    error: bool,
    dropped: u64,
}

impl Pending {
    fn new(base: Instant) -> Pending {
        Pending {
            base,
            spans: Vec::new(),
            error: false,
            dropped: 0,
        }
    }

    fn absorb(&mut self, spans: Vec<SpanRecord>, error: bool, dropped: u64) {
        for s in spans {
            if self.spans.len() < MAX_SPANS_PER_TRACE {
                self.spans.push(s);
            } else {
                self.dropped += 1;
            }
        }
        self.error |= error;
        self.dropped += dropped;
    }
}

const PENDING_SHARDS: usize = 16;

fn pending_shard(trace_id: u64) -> &'static Mutex<HashMap<u64, Pending>> {
    static SHARDS: OnceLock<Vec<Mutex<HashMap<u64, Pending>>>> = OnceLock::new();
    let shards = SHARDS.get_or_init(|| {
        (0..PENDING_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect()
    });
    let idx = (trace_id as usize) % PENDING_SHARDS;
    shards.get(idx).unwrap_or_else(|| &shards[0])
}

// ---------------------------------------------------------------------------
// Thread-local active trace
// ---------------------------------------------------------------------------

struct ThreadTrace {
    trace_id: u64,
    /// Whether this thread created the pending entry (and thus finalizes).
    owns: bool,
    base: Instant,
    stack: Vec<u64>,
    closed: Vec<SpanRecord>,
    error: bool,
    dropped: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<ThreadTrace>> = const { RefCell::new(None) };
}

fn elapsed_ns(base: Instant) -> u64 {
    base.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Handle for a span opened inside the active thread trace; produced by
/// [`enter_traced_span`], consumed by [`exit_traced_span`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpanHandle {
    span_id: u64,
    parent: Option<u64>,
    start_ns: u64,
}

/// Open a child span under the active thread trace, if one is active.
pub(crate) fn enter_traced_span() -> Option<SpanHandle> {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let t = cur.as_mut()?;
        let span_id = next_id();
        let parent = t.stack.last().copied();
        let start_ns = elapsed_ns(t.base);
        t.stack.push(span_id);
        Some(SpanHandle {
            span_id,
            parent,
            start_ns,
        })
    })
}

/// Close a span opened by [`enter_traced_span`], buffering its record.
/// Takes the detail by value: the caller already owns the formatted
/// string, and re-allocating it here showed up in the read-path overhead
/// budget.
pub(crate) fn exit_traced_span(h: SpanHandle, name: &str, detail: String, duration: Duration) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(t) = cur.as_mut() else { return };
        // Pop through to our id: spans close LIFO, but be defensive about a
        // leaked guard above us rather than corrupting the stack.
        while let Some(top) = t.stack.pop() {
            if top == h.span_id {
                break;
            }
        }
        push_closed(
            t,
            SpanRecord {
                span_id: h.span_id,
                parent: h.parent,
                name: name.to_string(),
                detail,
                start_ns: h.start_ns,
                duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
            },
        );
    });
}

fn push_closed(t: &mut ThreadTrace, record: SpanRecord) {
    if t.closed.len() < MAX_SPANS_PER_TRACE {
        t.closed.push(record);
    } else {
        t.dropped += 1;
    }
}

/// The active trace context on this thread, for wire propagation or
/// linking. `None` when no trace is active.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| {
        let cur = c.borrow();
        let t = cur.as_ref()?;
        let span_id = t.stack.last().copied().unwrap_or(0);
        let parent = if t.stack.len() >= 2 {
            t.stack.get(t.stack.len() - 2).copied()
        } else {
            None
        };
        Some(TraceContext {
            trace_id: t.trace_id,
            span_id,
            parent,
        })
    })
}

/// The active trace id on this thread, if any (cheaper than
/// [`current_context`] when only the id is needed, e.g. for log lines).
pub fn current_trace_id() -> Option<u64> {
    CURRENT.with(|c| c.borrow().as_ref().map(|t| t.trace_id))
}

/// Append a zero-duration annotation (`name = "note"`) to the active
/// trace's event buffer — counter snapshots, decision points, anything
/// worth pinning to the timeline. No-op when no trace is active.
pub fn annotate(detail: impl std::fmt::Display) {
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        let Some(t) = cur.as_mut() else { return };
        let parent = t.stack.last().copied();
        let start_ns = elapsed_ns(t.base);
        let record = SpanRecord {
            span_id: next_id(),
            parent,
            name: "note".to_string(),
            detail: detail.to_string(),
            start_ns,
            duration_ns: 0,
        };
        push_closed(t, record);
    });
}

/// Tag the active trace as failed; the flight recorder retains error
/// traces regardless of latency. No-op when no trace is active.
pub fn tag_error() {
    CURRENT.with(|c| {
        if let Some(t) = c.borrow_mut().as_mut() {
            t.error = true;
        }
    });
}

// ---------------------------------------------------------------------------
// Root guards
// ---------------------------------------------------------------------------

enum RootKind {
    /// A root requested while this thread already had an active trace:
    /// demoted to an ordinary child span.
    Nested(SpanHandle),
    /// This guard installed the thread trace.
    Thread {
        trace_id: u64,
        root_span: u64,
        wire_parent: Option<u64>,
        root_start_ns: u64,
    },
}

/// Guard for a thread-local trace root: spans opened on this thread while
/// it lives are parented under it; dropping it flushes the thread's
/// segment and (for the trace's creator) finalizes the trace into the
/// flight recorder. Created by [`request_root`] / [`local_root`].
#[must_use = "the trace is flushed and finalized when this guard drops"]
pub struct LocalTrace {
    kind: Option<RootKind>,
    name: &'static str,
    detail: String,
    start: Instant,
}

impl LocalTrace {
    fn inert(name: &'static str) -> LocalTrace {
        LocalTrace {
            kind: None,
            name,
            detail: String::new(),
            start: Instant::now(),
        }
    }

    /// The context of this root (for linking); `None` when tracing is
    /// disabled.
    pub fn context(&self) -> Option<TraceContext> {
        match self.kind.as_ref()? {
            RootKind::Nested(_) => current_context(),
            RootKind::Thread {
                trace_id,
                root_span,
                wire_parent,
                ..
            } => Some(TraceContext {
                trace_id: *trace_id,
                span_id: *root_span,
                parent: *wire_parent,
            }),
        }
    }
}

fn root_impl(ctx: Option<TraceContext>, name: &'static str, detail: &str) -> LocalTrace {
    if !enabled() {
        return LocalTrace::inert(name);
    }
    let already_active = CURRENT.with(|c| c.borrow().is_some());
    if already_active {
        let kind = enter_traced_span().map(RootKind::Nested);
        return LocalTrace {
            kind,
            name,
            detail: detail.to_string(),
            start: Instant::now(),
        };
    }
    let (trace_id, wire_parent, base, owns) = match ctx {
        None => {
            let id = next_id();
            let base = Instant::now();
            let mut sh = pending_shard(id)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sh.insert(id, Pending::new(base));
            (id, None, base, true)
        }
        Some(c) => {
            let mut sh = pending_shard(c.trace_id)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match sh.get(&c.trace_id) {
                // The originator lives in this process (client and server
                // share the runtime): contribute a segment, don't finalize.
                Some(p) => (c.trace_id, Some(c.span_id), p.base, false),
                // Remote originator: this process keeps its own record of
                // the server-side subtree and finalizes it.
                None => {
                    let base = Instant::now();
                    sh.insert(c.trace_id, Pending::new(base));
                    (c.trace_id, Some(c.span_id), base, true)
                }
            }
        }
    };
    let root_span = next_id();
    let root_start_ns = elapsed_ns(base);
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(ThreadTrace {
            trace_id,
            owns,
            base,
            stack: vec![root_span],
            closed: Vec::new(),
            error: false,
            dropped: 0,
        });
    });
    LocalTrace {
        kind: Some(RootKind::Thread {
            trace_id,
            root_span,
            wire_parent,
            root_start_ns,
        }),
        name,
        detail: detail.to_string(),
        start: Instant::now(),
    }
}

/// Install the per-request root span for a server-side request: joins the
/// caller's [`TraceContext`] when the request carried one, otherwise
/// originates a fresh trace. The server's connection loop must call this
/// **exactly once per request** (machine-checked by the `span-parent`
/// lint).
pub fn request_root(ctx: Option<TraceContext>, op: &str) -> LocalTrace {
    root_impl(ctx, "server.rpc", op)
}

/// Begin a locally originated trace root on this thread (shell commands,
/// test harnesses, batch jobs). `name` follows the `layer.operation` span
/// convention.
pub fn local_root(name: &'static str, detail: &str) -> LocalTrace {
    root_impl(None, name, detail)
}

impl Drop for LocalTrace {
    fn drop(&mut self) {
        let Some(kind) = self.kind.take() else { return };
        let dur = self.start.elapsed();
        match kind {
            RootKind::Nested(h) => {
                exit_traced_span(h, self.name, std::mem::take(&mut self.detail), dur)
            }
            RootKind::Thread {
                trace_id,
                root_span,
                wire_parent,
                root_start_ns,
            } => {
                let taken = CURRENT.with(|c| c.borrow_mut().take());
                let Some(mut t) = taken else { return };
                push_closed(
                    &mut t,
                    SpanRecord {
                        span_id: root_span,
                        parent: wire_parent,
                        name: self.name.to_string(),
                        detail: std::mem::take(&mut self.detail),
                        start_ns: root_start_ns,
                        duration_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                    },
                );
                flush_segment(trace_id, t, dur);
            }
        }
    }
}

/// Flush a thread's finished segment into the pending table; the owning
/// segment also finalizes the trace into the flight recorder.
fn flush_segment(trace_id: u64, t: ThreadTrace, root_dur: Duration) {
    let owns = t.owns;
    let error = t.error;
    let finalized = {
        let mut sh = pending_shard(trace_id)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if owns {
            sh.remove(&trace_id).map(|mut p| {
                p.absorb(t.closed, error, t.dropped);
                p
            })
        } else {
            if let Some(p) = sh.get_mut(&trace_id) {
                p.absorb(t.closed, error, t.dropped);
            }
            None
        }
    };
    if let Some(p) = finalized {
        // The owner's root span was pushed last by the caller; recover its
        // name/detail for the summary line.
        let (root_name, root_detail) = p
            .spans
            .iter()
            .rev()
            .find(|s| s.parent.is_none() || !p.spans.iter().any(|o| Some(o.span_id) == s.parent))
            .map(|s| (s.name.clone(), s.detail.clone()))
            .unwrap_or_default();
        crate::recorder::recorder().record(TraceRecord {
            trace_id,
            root_name,
            root_detail,
            total_ns: root_dur.as_nanos().min(u64::MAX as u128) as u64,
            error: p.error,
            dropped_spans: p.dropped,
            seq: 0,
            spans: p.spans,
        });
    }
}

// ---------------------------------------------------------------------------
// Wire scope (client side)
// ---------------------------------------------------------------------------

enum WireKind {
    /// Issued inside an existing thread trace: a child of the active span
    /// that never occupies the span *stack*, so N scopes can be in flight
    /// concurrently (pipelining) and drop in any order.
    Sibling {
        trace_id: u64,
        span_id: u64,
        parent: Option<u64>,
        start_ns: u64,
    },
    /// Issued outside any trace: a detached root that does not occupy the
    /// thread-local slot, so N of them can be in flight (pipelining).
    Detached {
        trace_id: u64,
        span_id: u64,
        error: bool,
    },
}

/// Client-side scope for one wire request: supplies the [`TraceContext`]
/// to send, and on drop records the client span (finalizing the trace if
/// this scope originated it). Created by [`wire_scope`].
#[must_use = "the client span records (and the trace finalizes) when this drops"]
pub struct WireScope {
    kind: Option<WireKind>,
    name: &'static str,
    detail: String,
    start: Instant,
}

/// Open a client-side scope for a wire request named `name` (e.g.
/// `client.call`) with `detail` (e.g. the RPC op). If a trace is already
/// active on this thread the request joins it; otherwise a fresh detached
/// trace is originated.
pub fn wire_scope(name: &'static str, detail: &str) -> WireScope {
    if !enabled() {
        return WireScope {
            kind: None,
            name,
            detail: String::new(),
            start: Instant::now(),
        };
    }
    let active = CURRENT.with(|c| {
        c.borrow().as_ref().map(|t| WireKind::Sibling {
            trace_id: t.trace_id,
            span_id: next_id(),
            parent: t.stack.last().copied(),
            start_ns: elapsed_ns(t.base),
        })
    });
    let kind = match active {
        Some(sibling) => Some(sibling),
        None => {
            let trace_id = next_id();
            let span_id = next_id();
            let base = Instant::now();
            let mut sh = pending_shard(trace_id)
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sh.insert(trace_id, Pending::new(base));
            Some(WireKind::Detached {
                trace_id,
                span_id,
                error: false,
            })
        }
    };
    WireScope {
        kind,
        name,
        detail: detail.to_string(),
        start: Instant::now(),
    }
}

impl WireScope {
    /// The context to propagate with the request; `None` when tracing is
    /// disabled (the wire extension is then omitted entirely).
    pub fn context(&self) -> Option<TraceContext> {
        match self.kind.as_ref()? {
            WireKind::Sibling {
                trace_id,
                span_id,
                parent,
                ..
            } => Some(TraceContext {
                trace_id: *trace_id,
                span_id: *span_id,
                parent: *parent,
            }),
            WireKind::Detached {
                trace_id, span_id, ..
            } => Some(TraceContext {
                trace_id: *trace_id,
                span_id: *span_id,
                parent: None,
            }),
        }
    }

    /// Tag this request's trace as failed (server returned an error).
    pub fn tag_error(&mut self) {
        match self.kind.as_mut() {
            Some(WireKind::Sibling { .. }) => tag_error(),
            Some(WireKind::Detached { error, .. }) => *error = true,
            None => {}
        }
    }
}

impl Drop for WireScope {
    fn drop(&mut self) {
        let Some(kind) = self.kind.take() else { return };
        let dur = self.start.elapsed();
        match kind {
            WireKind::Sibling {
                trace_id,
                span_id,
                parent,
                start_ns,
            } => {
                let mut record = Some(SpanRecord {
                    span_id,
                    parent,
                    name: self.name.to_string(),
                    detail: std::mem::take(&mut self.detail),
                    start_ns,
                    duration_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                });
                let pushed = CURRENT.with(|c| {
                    let mut cur = c.borrow_mut();
                    match cur.as_mut() {
                        Some(t) if t.trace_id == trace_id => {
                            if let Some(r) = record.take() {
                                push_closed(t, r);
                            }
                            true
                        }
                        _ => false,
                    }
                });
                if !pushed {
                    // The scope outlived its root on this thread: absorb
                    // straight into the pending table while the trace is
                    // still open elsewhere (dropped silently otherwise).
                    if let Some(r) = record.take() {
                        let mut sh = pending_shard(trace_id)
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if let Some(p) = sh.get_mut(&trace_id) {
                            p.absorb(vec![r], false, 0);
                        }
                    }
                }
            }
            WireKind::Detached {
                trace_id,
                span_id,
                error,
            } => {
                let record = SpanRecord {
                    span_id,
                    parent: None,
                    name: self.name.to_string(),
                    detail: std::mem::take(&mut self.detail),
                    start_ns: 0,
                    duration_ns: dur.as_nanos().min(u64::MAX as u128) as u64,
                };
                let t = ThreadTrace {
                    trace_id,
                    owns: true,
                    base: self.start,
                    stack: Vec::new(),
                    closed: vec![record],
                    error,
                    dropped: 0,
                };
                flush_segment(trace_id, t, dur);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Render a trace as a human-readable tree with per-span self-time
/// (duration minus direct children), the shape the shell's `trace`
/// command prints.
pub fn render_trace(t: &TraceRecord) -> String {
    let mut out = String::new();
    let flags = match (t.error, t.dropped_spans > 0) {
        (true, true) => " [error] [truncated]",
        (true, false) => " [error]",
        (false, true) => " [truncated]",
        (false, false) => "",
    };
    let _ = writeln!(
        out,
        "trace t{:016x}  {} {}  {}  {} span(s){}",
        t.trace_id,
        t.root_name,
        t.root_detail,
        fmt_ns(t.total_ns),
        t.spans.len(),
        flags,
    );
    // Order children by start time; treat spans whose parent is absent
    // from the record (a wire parent in another process) as roots.
    let ids: std::collections::HashSet<u64> = t.spans.iter().map(|s| s.span_id).collect();
    let mut order: Vec<usize> = (0..t.spans.len()).collect();
    order.sort_by_key(|&i| t.spans.get(i).map(|s| s.start_ns).unwrap_or(0));
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for &i in &order {
        let Some(s) = t.spans.get(i) else { continue };
        match s.parent {
            Some(p) if ids.contains(&p) && p != s.span_id => children.entry(p).or_default().push(i),
            _ => roots.push(i),
        }
    }
    // Iterative DFS with a visited set so a malformed (decoded) record
    // with a parent cycle cannot loop or overflow. A second pass sweeps up
    // spans a cycle kept unreachable, rendering them flat.
    let mut visited: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
    stack.splice(0..0, order.iter().rev().map(|&i| (i, 1)));
    while let Some((i, depth)) = stack.pop() {
        let Some(s) = t.spans.get(i) else { continue };
        if !visited.insert(s.span_id) {
            continue;
        }
        let kids = children.get(&s.span_id);
        let child_total: u64 = kids
            .map(|ks| {
                ks.iter()
                    .filter_map(|&k| t.spans.get(k))
                    .map(|c| c.duration_ns)
                    .sum()
            })
            .unwrap_or(0);
        let self_ns = s.duration_ns.saturating_sub(child_total);
        let indent = "  ".repeat(depth);
        if s.duration_ns == 0 && s.name == "note" {
            let _ = writeln!(out, "{indent}note: {}  @{}", s.detail, fmt_ns(s.start_ns));
        } else {
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" {}", s.detail)
            };
            let _ = writeln!(
                out,
                "{indent}{}{}  {} (self {})",
                s.name,
                detail,
                fmt_ns(s.duration_ns),
                fmt_ns(self_ns),
            );
        }
        if let Some(ks) = kids {
            for &k in ks.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a trace as one JSON object (hand-rolled; the workspace is
/// dependency-free). Used by the shell's `trace --json`, the CI dump
/// artifact, and exemplar traces in bench reports.
pub fn render_trace_json(t: &TraceRecord) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"trace_id\":\"t{:016x}\",\"root\":\"{}\",\"detail\":\"{}\",\"total_ns\":{},\
         \"error\":{},\"dropped_spans\":{},\"seq\":{},\"spans\":[",
        t.trace_id,
        json_escape(&t.root_name),
        json_escape(&t.root_detail),
        t.total_ns,
        t.error,
        t.dropped_spans,
        t.seq,
    );
    for (i, s) in t.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let parent = match s.parent {
            Some(p) => format!("\"{p:x}\""),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"span_id\":\"{:x}\",\"parent\":{parent},\"name\":\"{}\",\"detail\":\"{}\",\
             \"start_ns\":{},\"duration_ns\":{}}}",
            s.span_id,
            json_escape(&s.name),
            json_escape(&s.detail),
            s.start_ns,
            s.duration_ns,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::registry;

    #[test]
    fn local_root_collects_child_spans_with_parent_links() {
        registry().set_enabled(true);
        let trace_id;
        {
            let root = local_root("test.root_a", "outer");
            trace_id = root.context().map(|c| c.trace_id).unwrap_or(0);
            {
                let _child = crate::span!("testtrace.child_a", "inner {}", 1);
            }
            annotate("marker");
        }
        let rec = crate::recorder::recorder()
            .find(trace_id)
            .expect("trace recorded");
        assert_eq!(rec.root_name, "test.root_a");
        assert_eq!(rec.root_detail, "outer");
        let root_span = rec
            .spans
            .iter()
            .find(|s| s.name == "test.root_a")
            .expect("root span present");
        let child = rec
            .spans
            .iter()
            .find(|s| s.name == "testtrace.child_a")
            .expect("child span present");
        assert_eq!(child.parent, Some(root_span.span_id));
        assert_eq!(child.detail, "inner 1");
        let note = rec.spans.iter().find(|s| s.name == "note").expect("note");
        assert_eq!(note.detail, "marker");
        assert_eq!(note.parent, Some(root_span.span_id));
        assert!(rec.total_ns > 0);
        assert!(!rec.error);
    }

    #[test]
    fn join_merges_segments_across_threads() {
        registry().set_enabled(true);
        let trace_id;
        {
            let root = local_root("test.root_b", "");
            let ctx = root.context().expect("ctx");
            trace_id = ctx.trace_id;
            // Simulate the server thread joining the client's trace.
            std::thread::scope(|s| {
                s.spawn(move || {
                    let joined = request_root(Some(ctx), "JoinOp");
                    {
                        let _inner = crate::span!("testtrace.join_child");
                    }
                    drop(joined);
                });
            });
        }
        let rec = crate::recorder::recorder()
            .find(trace_id)
            .expect("trace recorded");
        let server_root = rec
            .spans
            .iter()
            .find(|s| s.name == "server.rpc")
            .expect("joined server span present");
        let client_root = rec
            .spans
            .iter()
            .find(|s| s.name == "test.root_b")
            .expect("client root present");
        assert_eq!(server_root.parent, Some(client_root.span_id));
        let inner = rec
            .spans
            .iter()
            .find(|s| s.name == "testtrace.join_child")
            .expect("inner");
        assert_eq!(inner.parent, Some(server_root.span_id));
    }

    #[test]
    fn wire_scope_detached_roots_allow_pipelining() {
        registry().set_enabled(true);
        let mut ids = Vec::new();
        {
            let scopes: Vec<WireScope> =
                (0..3).map(|_| wire_scope("client.call", "Ping")).collect();
            for s in &scopes {
                let ctx = s.context().expect("ctx");
                ids.push(ctx.trace_id);
            }
        }
        // Each scope is its own trace.
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), 3);
        for id in ids {
            let rec = crate::recorder::recorder().find(id).expect("recorded");
            assert_eq!(rec.root_name, "client.call");
            assert_eq!(rec.root_detail, "Ping");
        }
    }

    #[test]
    fn wire_scopes_inside_a_trace_are_concurrent_siblings() {
        registry().set_enabled(true);
        let trace_id;
        {
            let root = local_root("test.root_d", "");
            trace_id = root.context().map(|c| c.trace_id).unwrap_or(0);
            let s1 = wire_scope("client.call", "Op1");
            let s2 = wire_scope("client.call", "Op2");
            // Out-of-order completion (pipelining): s1 closes while s2 is
            // still in flight, and the span stack must stay intact.
            drop(s1);
            {
                let _child = crate::span!("testtrace.after_drop");
            }
            drop(s2);
        }
        let rec = crate::recorder::recorder()
            .find(trace_id)
            .expect("recorded");
        let root_span = rec
            .spans
            .iter()
            .find(|s| s.name == "test.root_d")
            .expect("root");
        let calls: Vec<_> = rec
            .spans
            .iter()
            .filter(|s| s.name == "client.call")
            .collect();
        assert_eq!(calls.len(), 2);
        for c in calls {
            assert_eq!(c.parent, Some(root_span.span_id), "{}", c.detail);
        }
        let after = rec
            .spans
            .iter()
            .find(|s| s.name == "testtrace.after_drop")
            .expect("span after out-of-order drop");
        assert_eq!(after.parent, Some(root_span.span_id));
    }

    #[test]
    fn error_tags_are_sticky_and_span_cap_holds() {
        registry().set_enabled(true);
        let trace_id;
        {
            let root = local_root("test.root_c", "");
            trace_id = root.context().map(|c| c.trace_id).unwrap_or(0);
            tag_error();
            for i in 0..(MAX_SPANS_PER_TRACE + 10) {
                annotate(format_args!("n{i}"));
            }
        }
        let rec = crate::recorder::recorder()
            .find(trace_id)
            .expect("recorded");
        assert!(rec.error);
        assert!(rec.spans.len() <= MAX_SPANS_PER_TRACE);
        assert!(rec.dropped_spans >= 10);
    }

    #[test]
    fn render_shows_tree_and_self_time() {
        let t = TraceRecord {
            trace_id: 0xabc,
            root_name: "server.rpc".into(),
            root_detail: "OpenNode".into(),
            total_ns: 3_000_000,
            error: false,
            dropped_spans: 0,
            seq: 7,
            spans: vec![
                SpanRecord {
                    span_id: 1,
                    parent: None,
                    name: "server.rpc".into(),
                    detail: "OpenNode".into(),
                    start_ns: 0,
                    duration_ns: 3_000_000,
                },
                SpanRecord {
                    span_id: 2,
                    parent: Some(1),
                    name: "view.read_node".into(),
                    detail: "node 4".into(),
                    start_ns: 1_000,
                    duration_ns: 2_000_000,
                },
            ],
        };
        let text = render_trace(&t);
        assert!(text.contains("trace t0000000000000abc"), "{text}");
        assert!(text.contains("server.rpc OpenNode"), "{text}");
        assert!(text.contains("  view.read_node node 4"), "{text}");
        // Root self time = 3ms - 2ms child.
        assert!(text.contains("(self 1.00ms)"), "{text}");
        let json = render_trace_json(&t);
        assert!(
            json.contains("\"trace_id\":\"t0000000000000abc\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"view.read_node\""), "{json}");
    }

    #[test]
    fn render_survives_parent_cycles() {
        let t = TraceRecord {
            trace_id: 1,
            root_name: "x".into(),
            root_detail: String::new(),
            total_ns: 10,
            error: false,
            dropped_spans: 0,
            seq: 0,
            spans: vec![
                SpanRecord {
                    span_id: 1,
                    parent: Some(2),
                    name: "a".into(),
                    detail: String::new(),
                    start_ns: 0,
                    duration_ns: 5,
                },
                SpanRecord {
                    span_id: 2,
                    parent: Some(1),
                    name: "b".into(),
                    detail: String::new(),
                    start_ns: 1,
                    duration_ns: 5,
                },
            ],
        };
        // Must terminate; both spans referenced each other.
        let text = render_trace(&t);
        assert!(text.contains('a') && text.contains('b'));
    }
}
