//! # neptune-obs
//!
//! Observability for the Neptune hypertext system, with zero external
//! dependencies: every primitive is built from `std` atomics and locks.
//!
//! Three pieces:
//!
//! * [`metrics`] — a process-global [`metrics::Registry`] of counters,
//!   gauges, and fixed log2-bucket histograms, exposable in Prometheus text
//!   format. Metric identities are `family{label="value"}` strings; all
//!   mutation is lock-free atomic operations, so instrumented hot paths pay
//!   a handful of relaxed atomic ops per event.
//! * [`trace`] — lightweight structured spans. `span!("ham.open_node",
//!   "ctx{} node{}", c, n)` times a scope, records its duration into the
//!   histogram family derived from the span name (`layer.operation` →
//!   `neptune_<layer>_op_ns{op="operation"}`), notifies the pluggable
//!   [`trace::Subscriber`] (a human-readable event log, or a no-op), and
//!   feeds the slow-op log gated by the `NEPTUNE_SLOW_OP_MS` environment
//!   variable.
//! * [`trace_tree`] + [`recorder`] — request-scoped *causal trace trees*
//!   and the always-on flight recorder. A [`trace_tree::TraceContext`]
//!   rides a thread-local; `span!` callsites automatically parent under
//!   the active span; completed traces land in tail-sampled ring buffers
//!   retaining the recent tail plus every slow/error trace.
//! * [`render`] — a human-readable rendering of the registry (the shell's
//!   `stats` command), with histogram buckets drawn as bars rather than raw
//!   text exposition.
//! * [`lockcheck`] — a debug-build-only ranked lock-acquisition tracker:
//!   guards carry a [`lockcheck::Held`] token and acquiring against the
//!   declared hierarchy panics at the call site instead of deadlocking. In
//!   release builds the tokens are zero-sized and the tracker compiles
//!   away.
//!
//! Disabling: setting `NEPTUNE_OBS_DISABLED=1` (or calling
//! [`metrics::Registry::set_enabled`]) turns every instrumentation site
//! into a single relaxed atomic load, which is how the overhead budget
//! (see DESIGN.md §10) is measured against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lockcheck;
pub mod metrics;
pub mod recorder;
pub mod render;
pub mod trace;
pub mod trace_tree;

pub use metrics::{enabled, labeled, registry, Counter, Gauge, GaugeGuard, Histogram, Registry};
pub use recorder::{dump_json, install_panic_hook, recorder, FlightRecorder};
pub use trace::{
    set_slow_op_threshold, set_subscriber, LogSubscriber, Span, SpanEvent, Subscriber,
};
pub use trace_tree::{
    annotate, current_context, current_trace_id, local_root, render_trace, render_trace_json,
    request_root, tag_error, wire_scope, LocalTrace, SpanRecord, TraceContext, TraceRecord,
    WireScope,
};
