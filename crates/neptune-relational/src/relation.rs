//! A minimal relational algebra.
//!
//! Paper §5: *"A relationally complete query language makes possible a wide
//! range of interesting questions which can be asked."* This module
//! provides the classical operators — select, project, natural join,
//! union, difference, rename — over typed tuples of HAM [`Value`]s, enough
//! to express the paper's motivating cross-domain queries.

use std::collections::BTreeSet;
use std::fmt;

use neptune_ham::value::{value_index_key, Value};

/// A relation: a named schema and a set of tuples.
///
/// Tuples are kept deduplicated and in a canonical order, so relational
/// expressions are deterministic and comparable with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    name: String,
    schema: Vec<String>,
    tuples: Vec<Vec<Value>>,
}

/// Errors from relational operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A referenced column does not exist in the schema.
    NoSuchColumn {
        /// The missing column.
        column: String,
        /// The relation's name.
        relation: String,
    },
    /// A tuple's arity does not match the schema.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Supplied value count.
        got: usize,
    },
    /// Union/difference operands have different schemas.
    SchemaMismatch {
        /// Left schema.
        left: Vec<String>,
        /// Right schema.
        right: Vec<String>,
    },
    /// A join would produce no shared columns.
    NoCommonColumns,
    /// Renaming collides with an existing column.
    DuplicateColumn(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::NoSuchColumn { column, relation } => {
                write!(f, "no column '{column}' in relation '{relation}'")
            }
            RelError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            RelError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left:?} vs {right:?}")
            }
            RelError::NoCommonColumns => write!(f, "join operands share no columns"),
            RelError::DuplicateColumn(c) => write!(f, "duplicate column '{c}'"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias for relational operations.
pub type Result<T> = std::result::Result<T, RelError>;

/// A borrowed view of one tuple with named-column access, handed to
/// [`Relation::select`] predicates.
#[derive(Debug, Clone, Copy)]
pub struct Row<'a> {
    schema: &'a [String],
    tuple: &'a [Value],
}

impl<'a> Row<'a> {
    /// The value of the named column, if it exists.
    pub fn get(&self, name: &str) -> Option<&'a Value> {
        self.schema
            .iter()
            .position(|c| c == name)
            .map(|i| &self.tuple[i])
    }
}

fn tuple_key(tuple: &[Value]) -> Vec<u8> {
    let mut key = Vec::new();
    for v in tuple {
        let k = value_index_key(v);
        key.extend_from_slice(&(k.len() as u32).to_le_bytes());
        key.extend_from_slice(&k);
    }
    key
}

impl Relation {
    /// Create a relation with the given schema and tuples.
    ///
    /// ```
    /// use neptune_relational::Relation;
    /// use neptune_ham::Value;
    /// let r = Relation::new("nodes", vec!["node", "kind"], vec![
    ///     vec![Value::Int(1), Value::str("spec")],
    ///     vec![Value::Int(2), Value::str("design")],
    /// ]).unwrap();
    /// let spec = r.select_eq("kind", &Value::str("spec")).unwrap();
    /// assert_eq!(spec.len(), 1);
    /// ```
    pub fn new(
        name: impl Into<String>,
        schema: Vec<&str>,
        tuples: Vec<Vec<Value>>,
    ) -> Result<Relation> {
        let schema: Vec<String> = schema.into_iter().map(|s| s.to_string()).collect();
        {
            let mut seen = BTreeSet::new();
            for c in &schema {
                if !seen.insert(c.clone()) {
                    return Err(RelError::DuplicateColumn(c.clone()));
                }
            }
        }
        for t in &tuples {
            if t.len() != schema.len() {
                return Err(RelError::ArityMismatch {
                    expected: schema.len(),
                    got: t.len(),
                });
            }
        }
        let mut rel = Relation {
            name: name.into(),
            schema,
            tuples,
        };
        rel.normalize();
        Ok(rel)
    }

    /// An empty relation with the given schema.
    pub fn empty(name: impl Into<String>, schema: Vec<&str>) -> Result<Relation> {
        Relation::new(name, schema, Vec::new())
    }

    fn normalize(&mut self) {
        self.tuples.sort_by_key(|t| tuple_key(t));
        self.tuples.dedup_by(|a, b| tuple_key(a) == tuple_key(b));
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column names.
    pub fn schema(&self) -> &[String] {
        &self.schema
    }

    /// The tuples, canonically ordered.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Index of a column.
    pub fn column(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| RelError::NoSuchColumn {
                column: name.to_string(),
                relation: self.name.clone(),
            })
    }

    /// Insert a tuple (idempotent).
    pub fn insert(&mut self, tuple: Vec<Value>) -> Result<()> {
        if tuple.len() != self.schema.len() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.len(),
                got: tuple.len(),
            });
        }
        self.tuples.push(tuple);
        self.normalize();
        Ok(())
    }

    /// σ — keep tuples where column `name` equals `value`.
    pub fn select_eq(&self, name: &str, value: &Value) -> Result<Relation> {
        let idx = self.column(name)?;
        let tuples = self
            .tuples
            .iter()
            .filter(|t| t[idx] == *value)
            .cloned()
            .collect();
        Ok(Relation {
            name: format!("σ({})", self.name),
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// σ — keep tuples satisfying an arbitrary predicate on named columns.
    pub fn select<F>(&self, pred: F) -> Relation
    where
        F: Fn(Row<'_>) -> bool,
    {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| {
                pred(Row {
                    schema: &self.schema,
                    tuple: t,
                })
            })
            .cloned()
            .collect();
        Relation {
            name: format!("σ({})", self.name),
            schema: self.schema.clone(),
            tuples,
        }
    }

    /// π — keep only the named columns, in the given order.
    pub fn project(&self, columns: &[&str]) -> Result<Relation> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.column(c))
            .collect::<Result<_>>()?;
        let tuples = self
            .tuples
            .iter()
            .map(|t| indices.iter().map(|&i| t[i].clone()).collect())
            .collect();
        let mut rel = Relation {
            name: format!("π({})", self.name),
            schema: columns.iter().map(|c| c.to_string()).collect(),
            tuples,
        };
        rel.normalize();
        Ok(rel)
    }

    /// ρ — rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Result<Relation> {
        let idx = self.column(from)?;
        if self.schema.iter().any(|c| c == to) {
            return Err(RelError::DuplicateColumn(to.to_string()));
        }
        let mut schema = self.schema.clone();
        schema[idx] = to.to_string();
        Ok(Relation {
            name: self.name.clone(),
            schema,
            tuples: self.tuples.clone(),
        })
    }

    /// ⋈ — natural join on all shared column names.
    pub fn join(&self, other: &Relation) -> Result<Relation> {
        let shared: Vec<String> = self
            .schema
            .iter()
            .filter(|c| other.schema.contains(c))
            .cloned()
            .collect();
        if shared.is_empty() {
            return Err(RelError::NoCommonColumns);
        }
        let my_shared: Vec<usize> = shared
            .iter()
            .map(|c| self.column(c))
            .collect::<Result<_>>()?;
        let their_shared: Vec<usize> = shared
            .iter()
            .map(|c| other.column(c))
            .collect::<Result<_>>()?;
        let their_extra: Vec<usize> = (0..other.schema.len())
            .filter(|i| !shared.contains(&other.schema[*i]))
            .collect();

        // Hash join on the shared-column key.
        let mut index: std::collections::HashMap<Vec<u8>, Vec<&Vec<Value>>> =
            std::collections::HashMap::new();
        for t in &other.tuples {
            let key = tuple_key(
                &their_shared
                    .iter()
                    .map(|&i| t[i].clone())
                    .collect::<Vec<_>>(),
            );
            index.entry(key).or_default().push(t);
        }
        let mut schema = self.schema.clone();
        schema.extend(their_extra.iter().map(|&i| other.schema[i].clone()));
        let mut tuples = Vec::new();
        for t in &self.tuples {
            let key = tuple_key(&my_shared.iter().map(|&i| t[i].clone()).collect::<Vec<_>>());
            if let Some(matches) = index.get(&key) {
                for m in matches {
                    let mut row = t.clone();
                    row.extend(their_extra.iter().map(|&i| m[i].clone()));
                    tuples.push(row);
                }
            }
        }
        let mut rel = Relation {
            name: format!("({} ⋈ {})", self.name, other.name),
            schema,
            tuples,
        };
        rel.normalize();
        Ok(rel)
    }

    /// ∪ — union of two same-schema relations.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if self.schema != other.schema {
            return Err(RelError::SchemaMismatch {
                left: self.schema.clone(),
                right: other.schema.clone(),
            });
        }
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        let mut rel = Relation {
            name: format!("({} ∪ {})", self.name, other.name),
            schema: self.schema.clone(),
            tuples,
        };
        rel.normalize();
        Ok(rel)
    }

    /// − — tuples in `self` not in `other` (same schema).
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        if self.schema != other.schema {
            return Err(RelError::SchemaMismatch {
                left: self.schema.clone(),
                right: other.schema.clone(),
            });
        }
        let exclude: BTreeSet<Vec<u8>> = other.tuples.iter().map(|t| tuple_key(t)).collect();
        let tuples = self
            .tuples
            .iter()
            .filter(|t| !exclude.contains(&tuple_key(t)))
            .cloned()
            .collect();
        Ok(Relation {
            name: format!("({} − {})", self.name, other.name),
            schema: self.schema.clone(),
            tuples,
        })
    }

    /// Render as an aligned text table (for shell/browser output).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.schema.iter().map(|c| c.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&format!("{} ({} rows)\n", self.name, self.len()));
        out.push_str(&format!("| {} |\n", header.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("+")
        ));
        for row in rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn employees() -> Relation {
        Relation::new(
            "employees",
            vec!["name", "dept"],
            vec![
                vec![Value::str("norm"), Value::str("labs")],
                vec![Value::str("mayer"), Value::str("labs")],
                vec![Value::str("kim"), Value::str("sales")],
            ],
        )
        .unwrap()
    }

    fn depts() -> Relation {
        Relation::new(
            "depts",
            vec!["dept", "site"],
            vec![
                vec![Value::str("labs"), Value::str("beaverton")],
                vec![Value::str("sales"), Value::str("portland")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Relation::new("r", vec!["a", "a"], vec![]),
            Err(RelError::DuplicateColumn(_))
        ));
        assert!(matches!(
            Relation::new("r", vec!["a"], vec![vec![]]),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn tuples_dedupe_and_order_canonically() {
        let r = Relation::new(
            "r",
            vec!["x"],
            vec![
                vec![Value::Int(2)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let r2 = Relation::new(
            "r",
            vec!["x"],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        assert_eq!(r.tuples(), r2.tuples());
    }

    #[test]
    fn select_and_project() {
        let labs = employees().select_eq("dept", &Value::str("labs")).unwrap();
        assert_eq!(labs.len(), 2);
        let names = labs.project(&["name"]).unwrap();
        assert_eq!(names.schema(), &["name".to_string()]);
        assert_eq!(names.len(), 2);
        assert!(employees().select_eq("missing", &Value::Int(0)).is_err());
    }

    #[test]
    fn select_with_closure() {
        let r = employees()
            .select(|row| matches!(row.get("name"), Some(Value::Str(s)) if s.starts_with('m')));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn natural_join() {
        let joined = employees().join(&depts()).unwrap();
        assert_eq!(joined.schema(), &["name", "dept", "site"]);
        assert_eq!(joined.len(), 3);
        let norm = joined.select_eq("name", &Value::str("norm")).unwrap();
        assert_eq!(norm.tuples()[0][2], Value::str("beaverton"));
        // No shared columns → error.
        let other = Relation::new("o", vec!["z"], vec![]).unwrap();
        assert!(matches!(
            employees().join(&other),
            Err(RelError::NoCommonColumns)
        ));
    }

    #[test]
    fn union_and_difference() {
        let a = Relation::new(
            "a",
            vec!["x"],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
        .unwrap();
        let b = Relation::new(
            "b",
            vec!["x"],
            vec![vec![Value::Int(2)], vec![Value::Int(3)]],
        )
        .unwrap();
        assert_eq!(a.union(&b).unwrap().len(), 3);
        let diff = a.difference(&b).unwrap();
        assert_eq!(diff.len(), 1);
        assert_eq!(diff.tuples()[0][0], Value::Int(1));
        let c = Relation::new("c", vec!["y"], vec![]).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn rename_then_join_on_new_name() {
        let managers = Relation::new(
            "managers",
            vec!["who", "dept"],
            vec![vec![Value::str("norm"), Value::str("labs")]],
        )
        .unwrap()
        .rename("who", "name")
        .unwrap();
        let joined = employees().join(&managers).unwrap();
        assert_eq!(joined.len(), 1);
        assert!(employees().rename("name", "dept").is_err());
    }

    #[test]
    fn render_is_aligned() {
        let text = employees().render();
        assert!(text.contains("| name "));
        assert!(text.contains("norm"));
        assert!(text.lines().count() >= 6);
    }
}
