//! Cross-references: the paper's own example query.
//!
//! Paper §5: *"given such fine grained information as a symbol table, one
//! might want to find all references to a variable, not only in the code,
//! but in all the documentation as well."* Hypertext links capture coarse
//! structure; this module extracts the fine-grained definition/use
//! relation from node contents and exposes it relationally, so exactly
//! that question becomes a select/join.

use std::collections::HashMap;

use neptune_ham::types::{ContextId, Time};
use neptune_ham::value::Value;
use neptune_ham::Ham;

use crate::bridge::Result;
use crate::relation::Relation;

/// The extracted cross-reference database.
#[derive(Debug, Clone)]
pub struct Xref {
    /// `defs(symbol, node)` — where each symbol is defined (module name or
    /// `PROCEDURE` declaration in a Modula-2 source node).
    pub defs: Relation,
    /// `refs(symbol, node, kind)` — each occurrence of a defined symbol in
    /// some *other* node's contents; `kind` is `code` or `documentation`.
    pub refs: Relation,
}

fn identifiers(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() || c == '_' {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push(&text[s..i]);
        }
    }
    if let Some(s) = start {
        out.push(&text[s..]);
    }
    out
}

/// Extract definitions and references from every live node at `time`.
///
/// Definitions come from Modula-2 source nodes (`contentType =
/// modula2Source`): the module name and each declared procedure.
/// References are occurrences of any defined symbol in any *other* node's
/// contents — source nodes count as `code`, everything else as
/// `documentation`.
pub fn build_xref(ham: &mut Ham, context: ContextId, time: Time) -> Result<Xref> {
    // Gather node contents + whether each node is source code.
    let node_info: Vec<(u64, bool, String)> = {
        let graph = ham.graph(context)?;
        let ct = graph.attr_table.lookup("contentType");
        graph
            .nodes()
            .filter(|n| n.exists_at(time))
            .filter_map(|n| {
                let contents = n.contents_at(time).ok()?;
                let is_source = ct
                    .and_then(|attr| n.attrs.get(attr, time))
                    .map(|v| *v == Value::str("modula2Source"))
                    .unwrap_or(false);
                Some((
                    n.id.0,
                    is_source,
                    String::from_utf8_lossy(&contents).into_owned(),
                ))
            })
            .collect()
    };

    // Definitions from source nodes.
    let mut defined_in: HashMap<String, u64> = HashMap::new();
    for (id, is_source, text) in &node_info {
        if !is_source {
            continue;
        }
        for line in text.lines().map(str::trim) {
            if let Some(rest) = line.strip_prefix("PROCEDURE ") {
                if let Some(name) = identifiers(rest).first() {
                    defined_in.entry(name.to_string()).or_insert(*id);
                }
            }
            if let Some(pos) = line.find("MODULE ") {
                let rest = &line[pos + "MODULE ".len()..];
                if let Some(name) = identifiers(rest).first() {
                    defined_in.entry(name.to_string()).or_insert(*id);
                }
            }
        }
    }
    let defs_tuples: Vec<Vec<Value>> = defined_in
        .iter()
        .map(|(symbol, node)| vec![Value::str(symbol.clone()), Value::Int(*node as i64)])
        .collect();
    let defs = Relation::new("defs", vec!["symbol", "node"], defs_tuples)?;

    // References: defined symbols appearing in other nodes.
    let mut refs_tuples = Vec::new();
    for (id, is_source, text) in &node_info {
        let kind = if *is_source { "code" } else { "documentation" };
        let mut seen = std::collections::HashSet::new();
        for ident in identifiers(text) {
            if !seen.insert(ident) {
                continue;
            }
            if let Some(&def_node) = defined_in.get(ident) {
                if def_node != *id {
                    refs_tuples.push(vec![
                        Value::str(ident),
                        Value::Int(*id as i64),
                        Value::str(kind),
                    ]);
                }
            }
        }
    }
    let refs = Relation::new("refs", vec!["symbol", "node", "kind"], refs_tuples)?;
    Ok(Xref { defs, refs })
}

impl Xref {
    /// The paper's query: every node referring to `symbol`, in code *and*
    /// documentation.
    pub fn references_to(&self, symbol: &str) -> Result<Relation> {
        Ok(self.refs.select_eq("symbol", &Value::str(symbol))?)
    }

    /// References joined with node metadata (e.g. the `document` each
    /// referring node belongs to).
    pub fn references_with_context(
        &self,
        ham: &Ham,
        context: ContextId,
        time: Time,
        symbol: &str,
        node_attrs: &[&str],
    ) -> Result<Relation> {
        let hits = self.references_to(symbol)?;
        let nodes = crate::bridge::nodes_relation(ham, context, time, node_attrs)?;
        Ok(hits.join(&nodes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_case::{parse_module, CaseProject};
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn fixture() -> Ham {
        let dir = std::env::temp_dir().join(format!("neptune-xref-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let project = CaseProject::new(MAIN_CONTEXT);
        let lists =
            parse_module("DEFINITION MODULE Lists;\nPROCEDURE Insert;\nEND Insert;\nEND Lists.\n")
                .unwrap();
        let main = parse_module(
            "MODULE Main;\nIMPORT Lists;\nPROCEDURE Run;\n  Lists.Insert;\nEND Run;\nEND Main.\n",
        )
        .unwrap();
        project.ingest_module(&mut ham, &lists).unwrap();
        project.ingest_module(&mut ham, &main).unwrap();
        // Documentation mentioning the procedure by name.
        let (docnode, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            docnode,
            t,
            b"Design note: Insert must stay O(1); see Lists.\n".to_vec(),
            &[],
        )
        .unwrap();
        let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, docnode, doc, Value::str("design"))
            .unwrap();
        ham
    }

    #[test]
    fn definitions_are_extracted_from_source() {
        let mut ham = fixture();
        let xref = build_xref(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let symbols: Vec<String> = xref
            .defs
            .project(&["symbol"])
            .unwrap()
            .tuples()
            .iter()
            .map(|t| t[0].to_string())
            .collect();
        for expected in ["Lists", "Insert", "Main", "Run"] {
            assert!(symbols.contains(&expected.to_string()), "{symbols:?}");
        }
    }

    #[test]
    fn paper_query_spans_code_and_documentation() {
        let mut ham = fixture();
        let xref = build_xref(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let hits = xref.references_to("Insert").unwrap();
        let kinds: Vec<String> = hits
            .project(&["kind"])
            .unwrap()
            .tuples()
            .iter()
            .map(|t| t[0].to_string())
            .collect();
        assert!(kinds.contains(&"code".to_string()), "{}", hits.render());
        assert!(
            kinds.contains(&"documentation".to_string()),
            "{}",
            hits.render()
        );
    }

    #[test]
    fn join_adds_document_context() {
        let mut ham = fixture();
        let xref = build_xref(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        let hits = xref
            .references_with_context(&ham, MAIN_CONTEXT, Time::CURRENT, "Insert", &["document"])
            .unwrap();
        // Only the documentation node carries a `document` attribute.
        assert_eq!(hits.len(), 1);
        let doc_col = hits.column("document").unwrap();
        assert_eq!(hits.tuples()[0][doc_col], Value::str("design"));
    }

    #[test]
    fn definition_site_does_not_reference_itself() {
        let mut ham = fixture();
        let xref = build_xref(&mut ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        // "Run" is defined in Main's procedure node and referenced nowhere else
        // except possibly the module node's text (which excludes procedures).
        let hits = xref.references_to("Run").unwrap();
        let def_node = xref
            .defs
            .select_eq("symbol", &Value::str("Run"))
            .unwrap()
            .tuples()[0][1]
            .clone();
        for t in hits.tuples() {
            assert_ne!(t[1], def_node);
        }
    }

    #[test]
    fn identifier_tokenizer() {
        assert_eq!(
            identifiers("Lists.Insert(x_1, 2)"),
            vec!["Lists", "Insert", "x_1", "2"]
        );
        assert_eq!(identifiers(""), Vec::<&str>::new());
        assert_eq!(identifiers("::"), Vec::<&str>::new());
    }
}
