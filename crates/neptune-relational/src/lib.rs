//! # neptune-relational
//!
//! The paper's §5 "possible synergy, which is not currently being
//! addressed, between the use of a relational database in conjunction with
//! hypertext" — implemented. A minimal relational algebra ([`relation`]),
//! bridges that materialize HAM state as relations ([`bridge`]), and the
//! paper's motivating cross-reference query ([`xref`]): *"find all
//! references to a variable, not only in the code, but in all the
//! documentation as well."*

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod relation;
pub mod xref;

pub use bridge::{attributes_relation, links_relation, nodes_relation};
pub use relation::{RelError, Relation};
pub use xref::{build_xref, Xref};
