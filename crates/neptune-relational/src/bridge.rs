//! Materializing hypertext as relations.
//!
//! Paper §5: *"Hypertext can adequately capture the relationship between
//! all the major pieces of information … It could be very beneficial to
//! combine the advantages that hypertext provides with those provided by a
//! relational data base."* These functions project HAM state into
//! [`Relation`]s so relational expressions can range over nodes, links,
//! and attributes.

use neptune_ham::types::{ContextId, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, HamError};

use crate::relation::Relation;

/// Errors from bridging.
#[derive(Debug)]
pub enum BridgeError {
    /// The HAM failed.
    Ham(HamError),
    /// The relational layer failed.
    Relation(crate::relation::RelError),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::Ham(e) => write!(f, "ham: {e}"),
            BridgeError::Relation(e) => write!(f, "relation: {e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<HamError> for BridgeError {
    fn from(e: HamError) -> Self {
        BridgeError::Ham(e)
    }
}
impl From<crate::relation::RelError> for BridgeError {
    fn from(e: crate::relation::RelError) -> Self {
        BridgeError::Relation(e)
    }
}

/// Result alias for bridge operations.
pub type Result<T> = std::result::Result<T, BridgeError>;

/// `nodes(node, <attr>...)` — one tuple per live node at `time`, with the
/// requested attribute values. Nodes lacking one of the attributes are
/// omitted (relational tuples are total; use several relations plus outer
/// combinations if partiality is wanted).
pub fn nodes_relation(
    ham: &Ham,
    context: ContextId,
    time: Time,
    attrs: &[&str],
) -> Result<Relation> {
    let graph = ham.graph(context)?;
    let mut schema = vec!["node"];
    schema.extend_from_slice(attrs);
    let indices: Vec<_> = attrs.iter().map(|a| graph.attr_table.lookup(a)).collect();
    let mut tuples = Vec::new();
    'next_node: for node in graph.nodes() {
        if !node.exists_at(time) {
            continue;
        }
        let mut row = vec![Value::Int(node.id.0 as i64)];
        for idx in &indices {
            match idx.and_then(|i| node.attrs.get(i, time)) {
                Some(v) => row.push(v.clone()),
                None => continue 'next_node,
            }
        }
        tuples.push(row);
    }
    Ok(Relation::new("nodes", schema, tuples)?)
}

/// `links(link, from, to, <attr>...)` — one tuple per live link at `time`.
pub fn links_relation(
    ham: &Ham,
    context: ContextId,
    time: Time,
    attrs: &[&str],
) -> Result<Relation> {
    let graph = ham.graph(context)?;
    let mut schema = vec!["link", "from", "to"];
    schema.extend_from_slice(attrs);
    let indices: Vec<_> = attrs.iter().map(|a| graph.attr_table.lookup(a)).collect();
    let mut tuples = Vec::new();
    'next_link: for link in graph.links() {
        if !link.exists_at(time) {
            continue;
        }
        let mut row = vec![
            Value::Int(link.id.0 as i64),
            Value::Int(link.from.node.0 as i64),
            Value::Int(link.to.node.0 as i64),
        ];
        for idx in &indices {
            match idx.and_then(|i| link.attrs.get(i, time)) {
                Some(v) => row.push(v.clone()),
                None => continue 'next_link,
            }
        }
        tuples.push(row);
    }
    Ok(Relation::new("links", schema, tuples)?)
}

/// `attributes(node, attribute, value)` — the fully general unpivoted view
/// of every node attribute at `time`.
pub fn attributes_relation(ham: &Ham, context: ContextId, time: Time) -> Result<Relation> {
    let graph = ham.graph(context)?;
    let mut tuples = Vec::new();
    for node in graph.nodes() {
        if !node.exists_at(time) {
            continue;
        }
        for (idx, value) in node.attrs.all_at(time) {
            if let Some(name) = graph.attr_table.name(idx) {
                tuples.push(vec![Value::Int(node.id.0 as i64), Value::str(name), value]);
            }
        }
    }
    Ok(Relation::new(
        "attributes",
        vec!["node", "attribute", "value"],
        tuples,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{LinkPt, Protections, MAIN_CONTEXT};

    fn fixture() -> Ham {
        let dir = std::env::temp_dir().join(format!("neptune-rel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
        let rel = ham.get_attribute_index(MAIN_CONTEXT, "relation").unwrap();
        let (a, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        let (b, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        let (c, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, a, doc, Value::str("spec"))
            .unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, b, doc, Value::str("spec"))
            .unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, c, doc, Value::str("design"))
            .unwrap();
        let (l, _) = ham
            .add_link(MAIN_CONTEXT, LinkPt::current(a, 0), LinkPt::current(b, 0))
            .unwrap();
        ham.set_link_attribute_value(MAIN_CONTEXT, l, rel, Value::str("isPartOf"))
            .unwrap();
        ham
    }

    #[test]
    fn nodes_relation_has_attr_columns() {
        let ham = fixture();
        let r = nodes_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["document"]).unwrap();
        assert_eq!(r.schema(), &["node", "document"]);
        assert_eq!(r.len(), 3);
        let spec = r.select_eq("document", &Value::str("spec")).unwrap();
        assert_eq!(spec.len(), 2);
    }

    #[test]
    fn nodes_missing_attrs_are_omitted() {
        let ham = fixture();
        let r = nodes_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["document", "ghost"]).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn links_relation_joins_with_nodes() {
        let ham = fixture();
        let links = links_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["relation"]).unwrap();
        assert_eq!(links.len(), 1);
        // Join: which documents do structural links point into?
        let nodes = nodes_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["document"])
            .unwrap()
            .rename("node", "to")
            .unwrap();
        let joined = links.join(&nodes).unwrap();
        assert_eq!(joined.len(), 1);
        let doc_col = joined.column("document").unwrap();
        assert_eq!(joined.tuples()[0][doc_col], Value::str("spec"));
    }

    #[test]
    fn attributes_relation_unpivots() {
        let ham = fixture();
        let r = attributes_relation(&ham, MAIN_CONTEXT, Time::CURRENT).unwrap();
        assert_eq!(r.len(), 3); // three document attributes (link attrs excluded)
        let spec = r.select_eq("value", &Value::str("spec")).unwrap();
        assert_eq!(spec.len(), 2);
    }

    #[test]
    fn relations_respect_time() {
        let mut ham = fixture();
        let t_then = ham.graph(MAIN_CONTEXT).unwrap().now();
        let (extra, _) = ham.add_node(MAIN_CONTEXT, true).unwrap();
        let doc = ham.get_attribute_index(MAIN_CONTEXT, "document").unwrap();
        ham.set_node_attribute_value(MAIN_CONTEXT, extra, doc, Value::str("late"))
            .unwrap();
        let now = nodes_relation(&ham, MAIN_CONTEXT, Time::CURRENT, &["document"]).unwrap();
        let then = nodes_relation(&ham, MAIN_CONTEXT, t_then, &["document"]).unwrap();
        assert_eq!(now.len(), 4);
        assert_eq!(then.len(), 3);
    }
}
