//! Property tests: the classical relational algebra laws hold for the
//! mini-engine, over arbitrary generated relations.

use proptest::prelude::*;

use neptune_ham::value::Value;
use neptune_relational::Relation;

/// Relations over a fixed two-column schema, so binary operators apply.
fn relation_ab() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..12).prop_map(|pairs| {
        let tuples = pairs
            .into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect();
        Relation::new("r", vec!["a", "b"], tuples).unwrap()
    })
}

/// Relations over (b, c): shares column `b` with relation_ab for joins.
fn relation_bc() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..12).prop_map(|pairs| {
        let tuples = pairs
            .into_iter()
            .map(|(b, c)| vec![Value::Int(b), Value::Int(c)])
            .collect();
        Relation::new("s", vec!["b", "c"], tuples).unwrap()
    })
}

fn tuples_sorted(r: &Relation) -> Vec<Vec<Value>> {
    r.tuples().to_vec()
}

proptest! {
    #[test]
    fn union_is_commutative_associative_idempotent(
        x in relation_ab(), y in relation_ab(), z in relation_ab()
    ) {
        prop_assert_eq!(
            tuples_sorted(&x.union(&y).unwrap()),
            tuples_sorted(&y.union(&x).unwrap())
        );
        prop_assert_eq!(
            tuples_sorted(&x.union(&y).unwrap().union(&z).unwrap()),
            tuples_sorted(&x.union(&y.union(&z).unwrap()).unwrap())
        );
        prop_assert_eq!(tuples_sorted(&x.union(&x).unwrap()), tuples_sorted(&x));
    }

    #[test]
    fn difference_laws(x in relation_ab(), y in relation_ab()) {
        // x − x = ∅
        prop_assert!(x.difference(&x).unwrap().is_empty());
        // (x − y) ⊆ x
        let d = x.difference(&y).unwrap();
        prop_assert!(d.union(&x).unwrap().len() == x.len());
        // (x − y) ∪ (x ∩ y) = x, where x ∩ y = x − (x − y)
        let intersection = x.difference(&d).unwrap();
        prop_assert_eq!(
            tuples_sorted(&d.union(&intersection).unwrap()),
            tuples_sorted(&x)
        );
    }

    #[test]
    fn select_distributes_over_union(x in relation_ab(), y in relation_ab(), v in 0i64..6) {
        let value = Value::Int(v);
        let left = x.union(&y).unwrap().select_eq("a", &value).unwrap();
        let right = x
            .select_eq("a", &value)
            .unwrap()
            .union(&y.select_eq("a", &value).unwrap())
            .unwrap();
        prop_assert_eq!(tuples_sorted(&left), tuples_sorted(&right));
    }

    #[test]
    fn select_is_idempotent_and_narrowing(x in relation_ab(), v in 0i64..6) {
        let value = Value::Int(v);
        let once = x.select_eq("a", &value).unwrap();
        let twice = once.select_eq("a", &value).unwrap();
        prop_assert_eq!(tuples_sorted(&once), tuples_sorted(&twice));
        prop_assert!(once.len() <= x.len());
    }

    #[test]
    fn project_is_idempotent(x in relation_ab()) {
        let p1 = x.project(&["a"]).unwrap();
        let p2 = p1.project(&["a"]).unwrap();
        prop_assert_eq!(tuples_sorted(&p1), tuples_sorted(&p2));
        // Projection never increases cardinality.
        prop_assert!(p1.len() <= x.len());
    }

    /// Natural join agrees with the nested-loop definition.
    #[test]
    fn join_matches_nested_loop_semantics(x in relation_ab(), y in relation_bc()) {
        let joined = x.join(&y).unwrap();
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for tx in x.tuples() {
            for ty in y.tuples() {
                if tx[1] == ty[0] {
                    expected.push(vec![tx[0].clone(), tx[1].clone(), ty[1].clone()]);
                }
            }
        }
        expected.sort_by_key(|t| {
            t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\u{1}")
        });
        expected.dedup();
        let mut actual = tuples_sorted(&joined);
        actual.sort_by_key(|t| {
            t.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("\u{1}")
        });
        prop_assert_eq!(actual, expected);
    }

    /// Joining with a renamed copy of itself on all columns is identity.
    #[test]
    fn self_join_is_identity(x in relation_ab()) {
        let joined = x.join(&x).unwrap();
        prop_assert_eq!(tuples_sorted(&joined), tuples_sorted(&x));
    }
}
