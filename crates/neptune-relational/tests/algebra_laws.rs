//! Randomized (seeded, deterministic) tests: the classical relational
//! algebra laws hold for the mini-engine, over generated relations.

use neptune_ham::value::Value;
use neptune_relational::Relation;
use neptune_storage::testutil::XorShift;

/// Relations over a fixed two-column schema, so binary operators apply.
fn gen_relation_ab(rng: &mut XorShift) -> Relation {
    let tuples = (0..rng.below(12))
        .map(|_| {
            vec![
                Value::Int(rng.below(6) as i64),
                Value::Int(rng.below(6) as i64),
            ]
        })
        .collect();
    Relation::new("r", vec!["a", "b"], tuples).unwrap()
}

/// Relations over (b, c): shares column `b` with relation_ab for joins.
fn gen_relation_bc(rng: &mut XorShift) -> Relation {
    let tuples = (0..rng.below(12))
        .map(|_| {
            vec![
                Value::Int(rng.below(6) as i64),
                Value::Int(rng.below(6) as i64),
            ]
        })
        .collect();
    Relation::new("s", vec!["b", "c"], tuples).unwrap()
}

fn tuples_sorted(r: &Relation) -> Vec<Vec<Value>> {
    r.tuples().to_vec()
}

#[test]
fn union_is_commutative_associative_idempotent() {
    let mut rng = XorShift::new(0xE101);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let y = gen_relation_ab(&mut rng);
        let z = gen_relation_ab(&mut rng);
        assert_eq!(
            tuples_sorted(&x.union(&y).unwrap()),
            tuples_sorted(&y.union(&x).unwrap())
        );
        assert_eq!(
            tuples_sorted(&x.union(&y).unwrap().union(&z).unwrap()),
            tuples_sorted(&x.union(&y.union(&z).unwrap()).unwrap())
        );
        assert_eq!(tuples_sorted(&x.union(&x).unwrap()), tuples_sorted(&x));
    }
}

#[test]
fn difference_laws() {
    let mut rng = XorShift::new(0xE102);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let y = gen_relation_ab(&mut rng);
        // x − x = ∅
        assert!(x.difference(&x).unwrap().is_empty());
        // (x − y) ⊆ x
        let d = x.difference(&y).unwrap();
        assert!(d.union(&x).unwrap().len() == x.len());
        // (x − y) ∪ (x ∩ y) = x, where x ∩ y = x − (x − y)
        let intersection = x.difference(&d).unwrap();
        assert_eq!(
            tuples_sorted(&d.union(&intersection).unwrap()),
            tuples_sorted(&x)
        );
    }
}

#[test]
fn select_distributes_over_union() {
    let mut rng = XorShift::new(0xE103);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let y = gen_relation_ab(&mut rng);
        let value = Value::Int(rng.below(6) as i64);
        let left = x.union(&y).unwrap().select_eq("a", &value).unwrap();
        let right = x
            .select_eq("a", &value)
            .unwrap()
            .union(&y.select_eq("a", &value).unwrap())
            .unwrap();
        assert_eq!(tuples_sorted(&left), tuples_sorted(&right));
    }
}

#[test]
fn select_is_idempotent_and_narrowing() {
    let mut rng = XorShift::new(0xE104);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let value = Value::Int(rng.below(6) as i64);
        let once = x.select_eq("a", &value).unwrap();
        let twice = once.select_eq("a", &value).unwrap();
        assert_eq!(tuples_sorted(&once), tuples_sorted(&twice));
        assert!(once.len() <= x.len());
    }
}

#[test]
fn project_is_idempotent() {
    let mut rng = XorShift::new(0xE105);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let p1 = x.project(&["a"]).unwrap();
        let p2 = p1.project(&["a"]).unwrap();
        assert_eq!(tuples_sorted(&p1), tuples_sorted(&p2));
        // Projection never increases cardinality.
        assert!(p1.len() <= x.len());
    }
}

/// Natural join agrees with the nested-loop definition.
#[test]
fn join_matches_nested_loop_semantics() {
    let mut rng = XorShift::new(0xE106);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let y = gen_relation_bc(&mut rng);
        let joined = x.join(&y).unwrap();
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for tx in x.tuples() {
            for ty in y.tuples() {
                if tx[1] == ty[0] {
                    expected.push(vec![tx[0].clone(), tx[1].clone(), ty[1].clone()]);
                }
            }
        }
        expected.sort_by_key(|t| {
            t.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        });
        expected.dedup();
        let mut actual = tuples_sorted(&joined);
        actual.sort_by_key(|t| {
            t.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        });
        assert_eq!(actual, expected);
    }
}

/// Joining with a renamed copy of itself on all columns is identity.
#[test]
fn self_join_is_identity() {
    let mut rng = XorShift::new(0xE107);
    for _ in 0..256 {
        let x = gen_relation_ab(&mut rng);
        let joined = x.join(&x).unwrap();
        assert_eq!(tuples_sorted(&joined), tuples_sorted(&x));
    }
}
