//! Scripted shell sessions: each test drives the interpreter the way a
//! user at the REPL would and asserts on the rendered output.

use neptune_shell::{Shell, ShellError};

fn fresh(name: &str) -> Shell {
    let dir = std::env::temp_dir().join(format!("neptune-shell-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Shell::open(dir).unwrap()
}

/// Run commands, returning each output; panics on unexpected errors.
fn run(shell: &mut Shell, commands: &[&str]) -> Vec<String> {
    commands
        .iter()
        .map(|c| {
            shell
                .execute(c)
                .unwrap_or_else(|e| panic!("command '{c}' failed: {e}"))
        })
        .collect()
}

#[test]
fn create_edit_and_browse() {
    let mut shell = fresh("basic");
    let out = run(
        &mut shell,
        &[
            "new",
            "edit The Hypertext Abstract Machine.",
            "set icon Overview",
            "cat",
            "info",
            "graph",
            "history",
        ],
    );
    assert!(out[0].contains("created archive node 1"));
    assert!(out[3].contains("The Hypertext Abstract Machine."));
    assert!(out[4].contains("1 live nodes"));
    assert!(out[5].contains("[Overview]"));
    assert!(out[6].contains("modifyNode"));
}

#[test]
fn linking_following_and_trails() {
    let mut shell = fresh("trails");
    run(
        &mut shell,
        &[
            "new",
            "edit page one",
            "set icon One",
            "new",
            "edit page two",
            "set icon Two",
        ],
    );
    // Link node 1 -> node 2 wait: current node is 2; goto 1 first.
    let out = run(&mut shell, &["goto 1", "link 2 3", "view"]);
    assert!(out[1].contains("node 1 @3 -> node 2"));
    assert!(out[2].contains("links:"));
    let out = run(&mut shell, &["follow 0", "cat"]);
    assert!(out[1].contains("page two"));
    let out = run(&mut shell, &["trail", "back", "cat"]);
    assert!(out[0].contains("via link"));
    assert!(out[2].contains("page one"));
}

#[test]
fn queries_and_attribute_browser() {
    let mut shell = fresh("query");
    run(
        &mut shell,
        &[
            "new",
            "set document spec",
            "new",
            "set document spec",
            "new",
            "set document design",
        ],
    );
    let out = run(&mut shell, &["query document = spec", "attrs"]);
    assert!(out[0].contains("2 node(s)"));
    assert!(out[1].contains("document"));
    assert!(out[1].contains("design"));
}

#[test]
fn transactions_roll_back_from_the_shell() {
    let mut shell = fresh("txn");
    run(&mut shell, &["new", "edit keep me"]);
    let out = run(
        &mut shell,
        &["begin", "new", "edit lose me", "abort", "info"],
    );
    assert!(out[4].contains("1 live nodes"), "{}", out[4]);
}

#[test]
fn contexts_from_the_shell() {
    let mut shell = fresh("ctx");
    run(&mut shell, &["new", "edit mainline text", "set icon Doc"]);
    let forked = run(&mut shell, &["fork"]);
    assert!(forked[0].contains("forked ctx1"));
    let out = run(
        &mut shell,
        &[
            "switch ctx1",
            "goto 1",
            "edit private world edit",
            "switch ctx0",
            "goto 1",
            "cat",
        ],
    );
    assert!(!out[5].contains("private world edit"));
    let merged = run(&mut shell, &["merge 1"]);
    assert!(merged[0].contains("1 modified"), "{}", merged[0]);
    let out = run(&mut shell, &["goto 1", "cat"]);
    assert!(out[1].contains("private world edit"));
}

#[test]
fn diff_between_versions() {
    let mut shell = fresh("diff");
    run(&mut shell, &["new", "edit alpha"]);
    // Find the time of version 1 from history output.
    let hist = run(&mut shell, &["history"])[0].clone();
    run(&mut shell, &["edit beta"]);
    // Extract last @ time in the first history (the alpha version).
    let t1: u64 = hist
        .lines()
        .rev()
        .find(|l| l.contains('@'))
        .and_then(|l| l.split('@').nth(1))
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("history shows times");
    let out = run(&mut shell, &[&format!("diff {t1} now")]);
    assert!(out[0].contains("beta"), "{}", out[0]);
    assert!(out[0].contains('+'), "{}", out[0]);
}

#[test]
fn relational_views_from_the_shell() {
    let mut shell = fresh("sql");
    run(
        &mut shell,
        &["new", "set document spec", "new", "set document design"],
    );
    let out = run(&mut shell, &["sql document"]);
    assert!(out[0].contains("| node"), "{}", out[0]);
    assert!(out[0].contains("spec"));
    assert!(out[0].contains("design"));
}

#[test]
fn errors_are_messages_not_crashes() {
    let mut shell = fresh("errors");
    assert!(matches!(shell.execute("bogus"), Err(ShellError::Usage(_))));
    assert!(matches!(
        shell.execute("cat"),
        Err(ShellError::NoCurrentNode)
    ));
    assert!(matches!(shell.execute("goto 999"), Err(ShellError::Ham(_))));
    assert!(matches!(shell.execute("quit"), Err(ShellError::Quit)));
    // Comments and blank lines are no-ops.
    assert_eq!(shell.execute("# a comment").unwrap(), "");
    assert_eq!(shell.execute("   ").unwrap(), "");
}

#[test]
fn reopen_preserves_session_work() {
    let dir = std::env::temp_dir().join(format!("neptune-shell-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut shell = Shell::open(&dir).unwrap();
        run(&mut shell, &["new", "edit persistent line", "checkpoint"]);
    }
    let mut shell = Shell::open(&dir).unwrap();
    let out = run(&mut shell, &["goto 1", "cat"]);
    assert!(out[1].contains("persistent line"));
}

#[test]
fn read_command_times_batched_reads() {
    let mut shell = fresh("read");
    let out = run(
        &mut shell,
        &["new", "edit some contents worth reading", "read --batch 8"],
    );
    assert!(out[2].contains("x8:"), "{}", out[2]);
    assert!(out[2].contains("reads/sec"), "{}", out[2]);
    assert!(out[2].contains("version cache:"), "{}", out[2]);
    // Bad flag values are usage errors, not panics.
    assert!(matches!(
        shell.execute("read --batch zero"),
        Err(ShellError::Usage(_))
    ));
    // stats surfaces the wire-traffic counters (zero in-process) — unless a
    // parallel test flipped the global kill-switch, in which case it says so.
    let stats = shell.execute("stats").unwrap();
    assert!(
        stats.contains("bytes in") || stats.contains("disabled"),
        "{stats}"
    );
}

#[test]
fn trace_and_obs_commands_drive_the_flight_recorder() {
    let mut shell = fresh("trace");
    run(&mut shell, &["new", "edit traced line", "cat"]);
    // Each completed command line above is one trace in the recorder.
    let listing = shell.execute("trace").unwrap();
    assert!(listing.contains("shell.command"), "{listing}");
    // Pull an id back out of the listing and render its span tree.
    let id = listing
        .split_whitespace()
        .find(|w| w.len() == 17 && w.starts_with('t'))
        .expect("listing shows trace ids")
        .to_string();
    let tree = shell.execute(&format!("trace {id}")).unwrap();
    assert!(tree.contains("shell.command"), "{tree}");
    let json = shell.execute(&format!("trace --json {id}")).unwrap();
    assert!(json.trim_start().starts_with('{'), "{json}");
    let all_json = shell.execute("trace --json").unwrap();
    assert!(all_json.trim_start().starts_with('['), "{all_json}");
    // Unknown ids are messages, malformed ids are usage errors.
    assert!(shell
        .execute("trace t00000000000000ff")
        .unwrap()
        .contains("not in the flight recorder"));
    assert!(matches!(
        shell.execute("trace nonsense"),
        Err(ShellError::Usage(_))
    ));
    // Runtime obs controls: threshold and kill-switch round-trip.
    assert!(shell
        .execute("obs set slow-op-ms 250")
        .unwrap()
        .contains("250ms"));
    assert!(shell
        .execute("obs set slow-op-ms off")
        .unwrap()
        .contains("disabled"));
    assert!(shell.execute("obs off").unwrap().contains("disabled"));
    assert!(shell.execute("obs on").unwrap().contains("enabled"));
    assert!(matches!(
        shell.execute("obs bogus"),
        Err(ShellError::Usage(_))
    ));
}
