//! Command implementations.

use neptune_document::trail::Trail;
use neptune_document::{annotate, inspect, view_node, GraphBrowser};
use neptune_ham::context::ConflictPolicy;
use neptune_ham::types::{ContextId, LinkPt, Time};
use neptune_ham::{Predicate, Value};
use neptune_relational::{build_xref, nodes_relation};

use crate::shell::{Result, Shell, ShellError};

const HELP: &str = "\
Neptune shell — commands:
  graph / ls [node-pred [link-pred]]   graph browser view
  info                                 graph statistics
  goto <id>                            select a node (starts/extends the trail)
  cat [time]                           current node's contents (at a version)
  read [time] [--batch N]              time N reads of the current node
  view                                 node browser (contents with link icons)
  follow <k>                           follow the k-th inline link
  back                                 return from a diversion
  trail                                show the trail so far
  new [file]                           create a node (archive unless 'file')
  edit <text>                          append a line to the current node
  link <to-id> [offset]                link current node -> target
  annotate <text>                      attach an annotation at offset 0
  history                              version browser for the current node
  diff <t1> <t2>                       node differences between two versions
  attrs                                attribute browser
  set <attr> <value>                   set an attribute on the current node
  get <attr>                           read an attribute of the current node
  query <node-predicate>               getGraphQuery
  demons                               demon browser
  contexts                             list version threads
  fork                                 fork a private world from this context
  switch <ctx>                         operate in another context
  merge <ctx> [child|parent|fail]      merge a world back (conflict policy)
  sql <attr[,attr...]>                 nodes relation with those attributes
  refs <symbol>                        cross-references in code & docs
  begin / commit / abort               explicit transaction control
  checkpoint                           fold the log into a snapshot
  check                                verify store integrity (fsck + lints)
  stats                                metrics registry (cachestats is an alias)
  trace [--json] [id]                  flight recorder: recent & slow/error traces
  obs set slow-op-ms <n|off>           adjust the slow-trace retention threshold
  obs on|off                           observability kill-switch
  help                                 this text
  quit                                 leave
";

pub(crate) fn dispatch(shell: &mut Shell, command: &str, rest: &str) -> Result<String> {
    match command {
        "help" | "?" => Ok(HELP.to_string()),
        "quit" | "exit" => Err(ShellError::Quit),
        "graph" | "ls" => cmd_graph(shell, rest),
        "info" => cmd_info(shell),
        "goto" => cmd_goto(shell, rest),
        "cat" => cmd_cat(shell, rest),
        "read" => cmd_read(shell, rest),
        "view" => cmd_view(shell),
        "follow" => cmd_follow(shell, rest),
        "back" => cmd_back(shell),
        "trail" => cmd_trail(shell),
        "new" => cmd_new(shell, rest),
        "edit" => cmd_edit(shell, rest),
        "link" => cmd_link(shell, rest),
        "annotate" => cmd_annotate(shell, rest),
        "history" => cmd_history(shell),
        "diff" => cmd_diff(shell, rest),
        "attrs" => {
            let ctx = shell.context;
            Ok(inspect::attribute_browser(&shell.ham, ctx, Time::CURRENT)?)
        }
        "set" => cmd_set(shell, rest),
        "get" => cmd_get(shell, rest),
        "query" => cmd_query(shell, rest),
        "demons" => {
            let ctx = shell.context;
            let node = shell.current;
            Ok(inspect::demon_browser(
                &shell.ham,
                ctx,
                node,
                Time::CURRENT,
            )?)
        }
        "contexts" => {
            let list: Vec<String> = shell
                .ham
                .contexts()
                .iter()
                .map(|c| format!("ctx{}", c.0))
                .collect();
            Ok(format!(
                "contexts: {} (in ctx{})\n",
                list.join(", "),
                shell.context.0
            ))
        }
        "fork" => {
            let child = shell.ham.create_context(shell.context)?;
            Ok(format!(
                "forked ctx{} from ctx{}\n",
                child.0, shell.context.0
            ))
        }
        "switch" => cmd_switch(shell, rest),
        "merge" => cmd_merge(shell, rest),
        "sql" => cmd_sql(shell, rest),
        "refs" => cmd_refs(shell, rest),
        "begin" => {
            let id = shell.ham.begin_transaction()?;
            Ok(format!("transaction {id} open\n"))
        }
        "commit" => {
            shell.ham.commit_transaction()?;
            Ok("committed\n".to_string())
        }
        "abort" => {
            shell.ham.abort_transaction()?;
            Ok("aborted — all changes rolled back\n".to_string())
        }
        "checkpoint" => {
            shell.ham.checkpoint()?;
            Ok("checkpointed\n".to_string())
        }
        "check" => cmd_check(shell),
        "stats" | "cachestats" => cmd_stats(shell),
        "trace" => cmd_trace(rest),
        "obs" => cmd_obs(rest),
        other => Err(ShellError::Usage(format!(
            "unknown command '{other}' — try 'help'"
        ))),
    }
}

fn cmd_graph(shell: &mut Shell, rest: &str) -> Result<String> {
    let mut parts = rest.splitn(2, "::");
    let node_pred = parts
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .unwrap_or("true");
    let link_pred = parts
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .unwrap_or("true");
    let browser = GraphBrowser::with_predicates(node_pred, link_pred);
    Ok(browser.render(&shell.ham, shell.context, Time::CURRENT)?)
}

fn cmd_info(shell: &mut Shell) -> Result<String> {
    let graph = shell.ham.graph(shell.context)?;
    Ok(format!(
        "project {} — context ctx{}: {} live nodes, {} live links, clock at {}, {} attribute names\n",
        shell.ham.project_id().0,
        shell.context.0,
        graph.live_node_count(),
        graph.live_link_count(),
        graph.now().0,
        graph.attr_table.len(),
    ))
}

fn cmd_goto(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.parse_node(rest)?;
    shell
        .ham
        .graph(shell.context)?
        .live_node(node, Time::CURRENT)?;
    shell.current = Some(node);
    if shell.trail.is_none() {
        shell.trail = Some(Trail::start(
            &mut shell.ham,
            shell.context,
            "session",
            node,
        )?);
    }
    cmd_view(shell)
}

fn cmd_cat(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let time = if rest.is_empty() {
        Time::CURRENT
    } else {
        shell.parse_time(rest)?
    };
    let opened = shell.ham.open_node(shell.context, node, time, &[])?;
    let mut out = String::from_utf8_lossy(&opened.contents).into_owned();
    if !out.ends_with('\n') {
        out.push('\n');
    }
    Ok(out)
}

/// Bench-adjacent: drive the same read path the server's `openNode` RPC
/// uses, `N` times, and report throughput — on a cache-hit workload every
/// read after the first is a refcount bump on the shared contents buffer,
/// which this makes visible interactively.
fn cmd_read(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let mut time = Time::CURRENT;
    let mut batch = 1usize;
    let mut words = rest.split_whitespace();
    while let Some(word) = words.next() {
        if word == "--batch" {
            batch = words
                .next()
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .ok_or_else(|| ShellError::Usage("read [time] [--batch N]".to_string()))?;
        } else {
            time = shell.parse_time(word)?;
        }
    }
    let before = shell.ham.version_cache_stats();
    let start = std::time::Instant::now();
    let mut bytes = 0u64;
    for _ in 0..batch {
        let opened = shell.ham.open_node(shell.context, node, time, &[])?;
        bytes += opened.contents.len() as u64;
    }
    let elapsed = start.elapsed();
    let after = shell.ham.version_cache_stats();
    let per_read = elapsed.as_nanos() as u64 / batch.max(1) as u64;
    let rate = if elapsed.as_secs_f64() > 0.0 {
        batch as f64 / elapsed.as_secs_f64()
    } else {
        f64::INFINITY
    };
    Ok(format!(
        "read node {} x{}: {} bytes total, {} ns/read, {:.0} reads/sec\n\
         version cache: +{} hits, +{} misses\n",
        node.0,
        batch,
        bytes,
        per_read,
        rate,
        after.hits - before.hits,
        after.misses - before.misses,
    ))
}

fn cmd_view(shell: &mut Shell) -> Result<String> {
    let node = shell.current_node()?;
    let ctx = shell.context;
    let view = view_node(&mut shell.ham, ctx, node, Time::CURRENT)?;
    let mut out = format!("node {} (current version @ {}):\n", node.0, {
        shell.ham.get_node_time_stamp(ctx, node)?.0
    });
    for line in view.text.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    if !view.links.is_empty() {
        out.push_str("links:\n");
        for (i, l) in view.links.iter().enumerate() {
            out.push_str(&format!(
                "  [{i}] @{} -> node {} ({})\n",
                l.offset, l.target.0, l.icon
            ));
        }
    }
    Ok(out)
}

fn cmd_follow(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let index: usize = rest
        .trim()
        .parse()
        .map_err(|_| ShellError::Usage("follow <link-number>".to_string()))?;
    let ctx = shell.context;
    let view = view_node(&mut shell.ham, ctx, node, Time::CURRENT)?;
    let link = view
        .links
        .get(index)
        .ok_or_else(|| ShellError::Usage(format!("node has {} links", view.links.len())))?;
    let link_id = link.link;
    if let Some(trail) = &mut shell.trail {
        trail.follow(&mut shell.ham, ctx, link_id)?;
    }
    let (target, _) = shell.ham.get_to_node(ctx, link_id, Time::CURRENT)?;
    shell.current = Some(target);
    cmd_view(shell)
}

fn cmd_back(shell: &mut Shell) -> Result<String> {
    let ctx = shell.context;
    let Some(trail) = &mut shell.trail else {
        return Ok("no trail yet\n".to_string());
    };
    match trail.back(&mut shell.ham, ctx)? {
        Some(node) => {
            shell.current = Some(node);
            cmd_view(shell)
        }
        None => Ok("at the start of the trail\n".to_string()),
    }
}

fn cmd_trail(shell: &mut Shell) -> Result<String> {
    match &shell.trail {
        None => Ok("no trail yet — 'goto' a node to start one\n".to_string()),
        Some(trail) => {
            let mut out = format!(
                "trail '{}' (stored in node {}):\n",
                trail.name, trail.node.0
            );
            for (i, step) in trail.steps().iter().enumerate() {
                match step.link {
                    Some(l) => out.push_str(&format!(
                        "  {i}: via link {} -> node {}\n",
                        l.0, step.node.0
                    )),
                    None => out.push_str(&format!("  {i}: at node {}\n", step.node.0)),
                }
            }
            Ok(out)
        }
    }
}

fn cmd_new(shell: &mut Shell, rest: &str) -> Result<String> {
    let keep_history = rest.trim() != "file";
    let (node, t) = shell.ham.add_node(shell.context, keep_history)?;
    shell.current = Some(node);
    Ok(format!(
        "created {} node {} at time {}\n",
        if keep_history { "archive" } else { "file" },
        node.0,
        t.0
    ))
}

fn cmd_edit(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let opened = shell
        .ham
        .open_node(shell.context, node, Time::CURRENT, &[])?;
    let mut contents = opened.contents.to_vec();
    contents.extend_from_slice(rest.as_bytes());
    contents.push(b'\n');
    let t = shell.ham.modify_node(
        shell.context,
        node,
        opened.current_time,
        contents,
        &opened.link_pts,
    )?;
    Ok(format!("checked in version {} of node {}\n", t.0, node.0))
}

fn cmd_link(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let mut parts = rest.split_whitespace();
    let to = shell.parse_node(parts.next().unwrap_or(""))?;
    let offset: u64 = parts.next().map(|p| p.parse().unwrap_or(0)).unwrap_or(0);
    let (link, _) = shell.ham.add_link(
        shell.context,
        LinkPt::current(node, offset),
        LinkPt::current(to, 0),
    )?;
    Ok(format!(
        "link {} : node {} @{} -> node {}\n",
        link.0, node.0, offset, to.0
    ))
}

fn cmd_annotate(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    if rest.is_empty() {
        return Err(ShellError::Usage("annotate <text>".to_string()));
    }
    let ctx = shell.context;
    let a = annotate(&mut shell.ham, ctx, node, 0, &format!("{rest}\n"))?;
    Ok(format!(
        "annotation node {} linked via link {}\n",
        a.node.0, a.link.0
    ))
}

fn cmd_history(shell: &mut Shell) -> Result<String> {
    let node = shell.current_node()?;
    Ok(inspect::version_browser(&shell.ham, shell.context, node)?)
}

fn cmd_diff(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let mut parts = rest.split_whitespace();
    let t1 = shell.parse_time(parts.next().unwrap_or(""))?;
    let t2 = shell.parse_time(parts.next().unwrap_or("now"))?;
    Ok(neptune_document::diffview::render(
        &shell.ham,
        shell.context,
        node,
        t1,
        t2,
    )?)
}

fn cmd_set(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let (attr, value) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| ShellError::Usage("set <attr> <value>".to_string()))?;
    let idx = shell.ham.get_attribute_index(shell.context, attr)?;
    let value = Value::parse_literal(value.trim());
    shell
        .ham
        .set_node_attribute_value(shell.context, node, idx, value.clone())?;
    Ok(format!("node {}: {attr} = {value}\n", node.0))
}

fn cmd_get(shell: &mut Shell, rest: &str) -> Result<String> {
    let node = shell.current_node()?;
    let graph = shell.ham.graph(shell.context)?;
    let Some(idx) = graph.attr_table.lookup(rest.trim()) else {
        return Ok(format!("{} is not set\n", rest.trim()));
    };
    match shell
        .ham
        .get_node_attribute_value(shell.context, node, idx, Time::CURRENT)
    {
        Ok(v) => Ok(format!("{} = {v}\n", rest.trim())),
        Err(_) => Ok(format!("{} is not set\n", rest.trim())),
    }
}

fn cmd_query(shell: &mut Shell, rest: &str) -> Result<String> {
    let pred = Predicate::parse(rest)
        .map_err(|message| ShellError::Ham(neptune_ham::HamError::BadPredicate { message }))?;
    let icon = shell.ham.graph(shell.context)?.attr_table.lookup("icon");
    let attrs: Vec<_> = icon.into_iter().collect();
    let sg = shell.ham.get_graph_query(
        shell.context,
        Time::CURRENT,
        &pred,
        &Predicate::True,
        &attrs,
        &[],
    )?;
    let mut out = format!("{} node(s), {} link(s):\n", sg.nodes.len(), sg.links.len());
    for (id, values) in &sg.nodes {
        let label = values
            .first()
            .and_then(|v| v.clone())
            .map(|v| format!(" ({v})"))
            .unwrap_or_default();
        out.push_str(&format!("  node {}{label}\n", id.0));
    }
    Ok(out)
}

fn cmd_switch(shell: &mut Shell, rest: &str) -> Result<String> {
    let id: u64 = rest
        .trim()
        .strip_prefix("ctx")
        .unwrap_or(rest.trim())
        .parse()
        .map_err(|_| ShellError::Usage("switch <ctx-id>".to_string()))?;
    let ctx = ContextId(id);
    shell.ham.graph(ctx)?; // validate
    shell.context = ctx;
    shell.current = None;
    shell.trail = None;
    Ok(format!("now in ctx{id}\n"))
}

fn cmd_merge(shell: &mut Shell, rest: &str) -> Result<String> {
    let mut parts = rest.split_whitespace();
    let raw = parts.next().unwrap_or("");
    let id: u64 = raw
        .strip_prefix("ctx")
        .unwrap_or(raw)
        .parse()
        .map_err(|_| ShellError::Usage("merge <ctx-id> [child|parent|fail]".to_string()))?;
    let policy = match parts.next().unwrap_or("fail") {
        "child" => ConflictPolicy::PreferChild,
        "parent" => ConflictPolicy::PreferParent,
        _ => ConflictPolicy::Fail,
    };
    let report = shell.ham.merge_context(ContextId(id), policy)?;
    Ok(format!(
        "merged ctx{id}: {} modified, {} added, {} deleted, {} attr change(s), {} conflict(s)\n",
        report.nodes_modified.len(),
        report.nodes_added.len(),
        report.nodes_deleted.len(),
        report.attrs_changed,
        report.conflicts.len()
    ))
}

fn cmd_sql(shell: &mut Shell, rest: &str) -> Result<String> {
    let attrs: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if attrs.is_empty() {
        return Err(ShellError::Usage("sql <attr[,attr...]>".to_string()));
    }
    let rel = nodes_relation(&shell.ham, shell.context, Time::CURRENT, &attrs)
        .map_err(|e| ShellError::Usage(e.to_string()))?;
    Ok(rel.render())
}

fn cmd_check(shell: &mut Shell) -> Result<String> {
    let mut findings = neptune_check::verify_open_ham(&shell.ham);
    let project = neptune_case::CaseProject::new(shell.context);
    findings.extend(neptune_check::lint_project(&shell.ham, &project));
    if findings.is_empty() {
        return Ok("store is clean: 0 findings\n".to_string());
    }
    let mut out = String::new();
    for f in &findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out.push_str(&format!("{} finding(s)\n", findings.len()));
    Ok(out)
}

fn cmd_stats(shell: &mut Shell) -> Result<String> {
    let s = shell.ham.version_cache_stats();
    let mut out = format!(
        "version cache: {} hits, {} misses, {} entries, {} bytes\n",
        s.hits, s.misses, s.entries, s.bytes
    );
    if neptune_obs::enabled() {
        let registry = neptune_obs::registry();
        registry
            .gauge("neptune_storage_vcache_entries")
            .set(s.entries as i64);
        registry
            .gauge("neptune_storage_vcache_bytes")
            .set(s.bytes.min(i64::MAX as u64) as i64);
        out.push_str(&format!(
            "server wire traffic: {} bytes in, {} bytes out\n",
            registry.counter("neptune_server_bytes_in_total").get(),
            registry.counter("neptune_server_bytes_out_total").get(),
        ));
        out.push('\n');
        out.push_str(&neptune_obs::render::render_human(registry));
    } else {
        out.push_str("(metrics registry disabled via NEPTUNE_OBS_DISABLED)\n");
    }
    Ok(out)
}

fn parse_trace_id(text: &str) -> Result<u64> {
    let trimmed = text.trim();
    let hex = trimmed.strip_prefix('t').unwrap_or(trimmed);
    u64::from_str_radix(hex, 16)
        .map_err(|_| ShellError::Usage(format!("'{text}' is not a trace id (t<hex>)")))
}

fn cmd_trace(rest: &str) -> Result<String> {
    let mut json = false;
    let mut id = None;
    for word in rest.split_whitespace() {
        if word == "--json" {
            json = true;
        } else {
            id = Some(parse_trace_id(word)?);
        }
    }
    if let Some(id) = id {
        let Some(t) = neptune_obs::recorder().find(id) else {
            return Ok(format!("trace t{id:016x} is not in the flight recorder\n"));
        };
        return Ok(if json {
            let mut out = neptune_obs::render_trace_json(&t);
            out.push('\n');
            out
        } else {
            neptune_obs::render_trace(&t)
        });
    }
    if json {
        let mut out = neptune_obs::dump_json();
        out.push('\n');
        return Ok(out);
    }
    let traces = neptune_obs::recorder().dump();
    if traces.is_empty() {
        return Ok("flight recorder is empty\n".to_string());
    }
    let mut out = format!(
        "flight recorder: {} trace(s) — 'trace <id>' for the span tree\n",
        traces.len()
    );
    for t in &traces {
        let flags = match (t.error, t.dropped_spans > 0) {
            (true, true) => " [error, truncated]",
            (true, false) => " [error]",
            (false, true) => " [truncated]",
            (false, false) => "",
        };
        out.push_str(&format!(
            "  t{:016x}  {:>9.3}ms  {:>3} span(s)  {} {}{}\n",
            t.trace_id,
            t.total_ns as f64 / 1e6,
            t.spans.len(),
            t.root_name,
            t.root_detail,
            flags,
        ));
    }
    Ok(out)
}

fn cmd_obs(rest: &str) -> Result<String> {
    const USAGE: &str = "obs set slow-op-ms <n|off> | obs on|off";
    let mut words = rest.split_whitespace();
    match (words.next(), words.next(), words.next()) {
        (Some("on"), None, _) => {
            neptune_obs::registry().set_enabled(true);
            Ok("observability enabled\n".to_string())
        }
        (Some("off"), None, _) => {
            neptune_obs::registry().set_enabled(false);
            Ok("observability disabled (kill-switch)\n".to_string())
        }
        (Some("set"), Some("slow-op-ms"), Some("off")) => {
            neptune_obs::set_slow_op_threshold(None);
            Ok("slow-op retention disabled — only errors stay notable\n".to_string())
        }
        (Some("set"), Some("slow-op-ms"), Some(n)) => {
            let ms: u64 = n
                .parse()
                .map_err(|_| ShellError::Usage(USAGE.to_string()))?;
            neptune_obs::set_slow_op_threshold(Some(std::time::Duration::from_millis(ms)));
            Ok(format!("slow-op threshold set to {ms}ms\n"))
        }
        _ => Err(ShellError::Usage(USAGE.to_string())),
    }
}

fn cmd_refs(shell: &mut Shell, rest: &str) -> Result<String> {
    if rest.trim().is_empty() {
        return Err(ShellError::Usage("refs <symbol>".to_string()));
    }
    let ctx = shell.context;
    let xref = build_xref(&mut shell.ham, ctx, Time::CURRENT)
        .map_err(|e| ShellError::Usage(e.to_string()))?;
    let hits = xref
        .references_to(rest.trim())
        .map_err(|e| ShellError::Usage(e.to_string()))?;
    Ok(hits.render())
}
