//! # neptune-shell
//!
//! An interactive shell over a Neptune graph — the reproduction's "user
//! interface layer" (paper §3): it drives the browsers of
//! `neptune-document`, the HAM's operations, trails, contexts, and the
//! relational bridge from a line-oriented command language, the way the
//! original's Smalltalk browsers drove the HAM over RPC.
//!
//! The interpreter is a library ([`Shell`]) so sessions are scriptable and
//! testable; `src/main.rs` wraps it in a stdin REPL.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commands;
mod shell;

pub use shell::{Shell, ShellError};
