//! The shell's state and command dispatch.

use std::fmt;
use std::path::Path;

use neptune_document::trail::Trail;
use neptune_ham::types::{ContextId, NodeIndex, Protections, Time, MAIN_CONTEXT};
use neptune_ham::{Ham, HamError};

/// Errors surfaced to the user as messages.
#[derive(Debug)]
pub enum ShellError {
    /// The HAM refused an operation.
    Ham(HamError),
    /// The command line could not be understood.
    Usage(String),
    /// The command needs a current node but none is selected.
    NoCurrentNode,
    /// The shell has been asked to exit.
    Quit,
}

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShellError::Ham(e) => write!(f, "error: {e}"),
            ShellError::Usage(msg) => write!(f, "usage: {msg}"),
            ShellError::NoCurrentNode => write!(f, "no current node — use 'goto <id>' first"),
            ShellError::Quit => write!(f, "bye"),
        }
    }
}

impl std::error::Error for ShellError {}

impl From<HamError> for ShellError {
    fn from(e: HamError) -> Self {
        ShellError::Ham(e)
    }
}

/// Result alias for shell commands.
pub type Result<T> = std::result::Result<T, ShellError>;

/// One interactive session over an opened graph.
pub struct Shell {
    pub(crate) ham: Ham,
    pub(crate) context: ContextId,
    pub(crate) current: Option<NodeIndex>,
    pub(crate) trail: Option<Trail>,
}

impl Shell {
    /// Open (or create) the graph in `directory` and start a session.
    pub fn open(directory: impl AsRef<Path>) -> Result<Shell> {
        let directory = directory.as_ref();
        let ham = if directory.join("graph.meta").exists() {
            Ham::open_existing(directory)?.0
        } else {
            Ham::create_graph(directory, Protections::DEFAULT)?.0
        };
        Ok(Shell {
            ham,
            context: MAIN_CONTEXT,
            current: None,
            trail: None,
        })
    }

    /// Start a session over an already-open HAM (used by tests).
    pub fn with_ham(ham: Ham) -> Shell {
        Shell {
            ham,
            context: MAIN_CONTEXT,
            current: None,
            trail: None,
        }
    }

    /// The underlying machine (for embedding).
    pub fn ham_mut(&mut self) -> &mut Ham {
        &mut self.ham
    }

    /// Execute one command line, returning the text to display.
    ///
    /// `Err(ShellError::Quit)` means the user asked to leave.
    pub fn execute(&mut self, line: &str) -> Result<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (command, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        // Every command line is one trace: spans opened further down (HAM,
        // storage, server calls from embedded clients) parent under this
        // root, and the completed trace lands in the flight recorder.
        let _root = neptune_obs::local_root("shell.command", command);
        let result = crate::commands::dispatch(self, command, rest);
        if !matches!(result, Ok(_) | Err(ShellError::Quit)) {
            neptune_obs::tag_error();
        }
        result
    }

    pub(crate) fn current_node(&self) -> Result<NodeIndex> {
        self.current.ok_or(ShellError::NoCurrentNode)
    }

    pub(crate) fn parse_node(&self, text: &str) -> Result<NodeIndex> {
        text.trim()
            .parse::<u64>()
            .map(NodeIndex)
            .map_err(|_| ShellError::Usage(format!("'{text}' is not a node id")))
    }

    pub(crate) fn parse_time(&self, text: &str) -> Result<Time> {
        match text.trim() {
            "now" | "current" | "0" => Ok(Time::CURRENT),
            t => t
                .parse::<u64>()
                .map(Time)
                .map_err(|_| ShellError::Usage(format!("'{text}' is not a time"))),
        }
    }

    /// The prompt string, reflecting context and current node.
    pub fn prompt(&self) -> String {
        let ctx = if self.context == MAIN_CONTEXT {
            String::new()
        } else {
            format!("ctx{}:", self.context.0)
        };
        match self.current {
            Some(n) => format!("neptune {ctx}n{}> ", n.0),
            None => format!("neptune {ctx}> "),
        }
    }
}
