//! The Neptune shell binary: a stdin REPL over a graph directory.
//!
//! ```sh
//! neptune-shell /path/to/graph-dir
//! ```

#![forbid(unsafe_code)]
use std::io::{BufRead, Write};

use neptune_shell::{Shell, ShellError};

fn main() {
    let dir = match std::env::args().nth(1) {
        Some(d) => d,
        None => {
            eprintln!("usage: neptune-shell <graph-directory>");
            std::process::exit(2);
        }
    };
    let mut shell = match Shell::open(&dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open graph in {dir}: {e}");
            std::process::exit(1);
        }
    };
    println!("Neptune shell — 'help' for commands, 'quit' to leave.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("{}", shell.prompt());
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match shell.execute(&line) {
            Ok(output) => print!("{output}"),
            Err(ShellError::Quit) => break,
            Err(e) => println!("{e}"),
        }
    }
    // Leave the graph in a cleanly checkpointed state.
    if let Err(e) = shell.ham_mut().checkpoint() {
        eprintln!("checkpoint on exit failed: {e}");
    }
}
