//! Representing Modula-2 programs as hypertext.
//!
//! Paper §4.2: a module is *"a simple tree"* of procedure nodes under a
//! module node, with `isPartOf` links; import lists become links to the
//! imported modules' nodes, making the program a directed graph. The
//! compiler's unit of incrementality — the procedure — determines what a
//! source node holds.

use std::collections::HashMap;

use neptune_ham::types::{ContextId, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Predicate, Result};

use crate::model::{code_type, content_type, relation, CODE_TYPE, CONTENT_TYPE, RELATION};
use crate::modula::{Module, ModuleKind, Procedure};

/// Attribute naming nodes (shared with the document layer's browsers).
const ICON: &str = "icon";

/// The hypertext footprint of one ingested module.
#[derive(Debug, Clone)]
pub struct ModuleNodes {
    /// The module's root node (module-level text).
    pub module: NodeIndex,
    /// Procedure nodes by (possibly nested, dot-joined) name, e.g.
    /// `Allocate` or `Allocate.Grow`.
    pub procedures: HashMap<String, NodeIndex>,
}

/// A CASE project: conventions bound to one context.
#[derive(Debug, Clone, Copy)]
pub struct CaseProject {
    /// The context the project lives in.
    pub context: ContextId,
}

impl CaseProject {
    /// Create a project handle.
    pub fn new(context: ContextId) -> CaseProject {
        CaseProject { context }
    }

    /// Ingest a parsed module: one node for the module text, one per
    /// procedure (nested procedures under their parents), `isPartOf`
    /// structure links, and the §4.2 attribute conventions. One
    /// transaction.
    pub fn ingest_module(&self, ham: &mut Ham, module: &Module) -> Result<ModuleNodes> {
        ham.begin_transaction()?;
        let result = (|| {
            let ctx = self.context;
            let (mnode, t) = ham.add_node(ctx, true)?;
            ham.modify_node(ctx, mnode, t, module.text.clone().into_bytes(), &[])?;
            let ct = ham.get_attribute_index(ctx, CONTENT_TYPE)?;
            let code = ham.get_attribute_index(ctx, CODE_TYPE)?;
            let icon = ham.get_attribute_index(ctx, ICON)?;
            ham.set_node_attribute_value(ctx, mnode, ct, Value::str(content_type::MODULA2_SOURCE))?;
            let kind = match module.kind {
                ModuleKind::Definition => code_type::DEFINITION_MODULE,
                ModuleKind::Implementation => code_type::IMPLEMENTATION_MODULE,
            };
            ham.set_node_attribute_value(ctx, mnode, code, Value::str(kind))?;
            ham.set_node_attribute_value(ctx, mnode, icon, Value::str(&module.name))?;

            let mut procedures = HashMap::new();
            for (i, proc) in module.procedures.iter().enumerate() {
                self.ingest_procedure(
                    ham,
                    mnode,
                    proc,
                    &module.name,
                    i as u64,
                    "",
                    &mut procedures,
                )?;
            }
            Ok(ModuleNodes {
                module: mnode,
                procedures,
            })
        })();
        match result {
            Ok(nodes) => {
                ham.commit_transaction()?;
                Ok(nodes)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn ingest_procedure(
        &self,
        ham: &mut Ham,
        parent: NodeIndex,
        proc: &Procedure,
        module_name: &str,
        order: u64,
        prefix: &str,
        out: &mut HashMap<String, NodeIndex>,
    ) -> Result<()> {
        let ctx = self.context;
        let (pnode, t) = ham.add_node(ctx, true)?;
        ham.modify_node(ctx, pnode, t, proc.text.clone().into_bytes(), &[])?;
        let ct = ham.get_attribute_index(ctx, CONTENT_TYPE)?;
        let code = ham.get_attribute_index(ctx, CODE_TYPE)?;
        let icon = ham.get_attribute_index(ctx, ICON)?;
        let rel = ham.get_attribute_index(ctx, RELATION)?;
        ham.set_node_attribute_value(ctx, pnode, ct, Value::str(content_type::MODULA2_SOURCE))?;
        ham.set_node_attribute_value(ctx, pnode, code, Value::str(code_type::PROCEDURE))?;
        let qualified = if prefix.is_empty() {
            proc.name.clone()
        } else {
            format!("{prefix}.{}", proc.name)
        };
        ham.set_node_attribute_value(
            ctx,
            pnode,
            icon,
            Value::str(format!("{module_name}.{qualified}")),
        )?;
        let (link, _) = ham.add_link(
            ctx,
            LinkPt::current(parent, order),
            LinkPt::current(pnode, 0),
        )?;
        ham.set_link_attribute_value(ctx, link, rel, Value::str(relation::IS_PART_OF))?;
        out.insert(qualified.clone(), pnode);
        for (i, child) in proc.children.iter().enumerate() {
            self.ingest_procedure(ham, pnode, child, module_name, i as u64, &qualified, out)?;
        }
        Ok(())
    }

    /// Create `imports` links from each module node to the nodes of the
    /// modules it imports. Unknown imports (library modules not in the
    /// project) are skipped. Returns the number of links created.
    pub fn link_imports(&self, ham: &mut Ham, modules: &[(&Module, NodeIndex)]) -> Result<usize> {
        let by_name: HashMap<&str, NodeIndex> =
            modules.iter().map(|(m, n)| (m.name.as_str(), *n)).collect();
        let ctx = self.context;
        ham.begin_transaction()?;
        let result = (|| {
            let rel = ham.get_attribute_index(ctx, RELATION)?;
            let mut created = 0;
            for (module, node) in modules {
                for (i, import) in module.imports.iter().enumerate() {
                    let Some(&target) = by_name.get(import.as_str()) else {
                        continue;
                    };
                    let (link, _) = ham.add_link(
                        ctx,
                        LinkPt::current(*node, i as u64),
                        LinkPt::current(target, 0),
                    )?;
                    ham.set_link_attribute_value(ctx, link, rel, Value::str(relation::IMPORTS))?;
                    created += 1;
                }
            }
            Ok(created)
        })();
        match result {
            Ok(n) => {
                ham.commit_transaction()?;
                Ok(n)
            }
            Err(e) => {
                let _ = ham.abort_transaction();
                Err(e)
            }
        }
    }

    /// Find a module node by name (its `icon` attribute).
    pub fn module_node(&self, ham: &Ham, name: &str) -> Result<Option<NodeIndex>> {
        let pred = Predicate::parse(&format!(
            "{ICON} = \"{name}\" and {CODE_TYPE} != {}",
            code_type::PROCEDURE
        ))
        .expect("static predicate parses");
        let sg = ham.get_graph_query(
            self.context,
            Time::CURRENT,
            &pred,
            &Predicate::True,
            &[],
            &[],
        )?;
        Ok(sg.nodes.first().map(|(id, _)| *id))
    }

    /// Modules `node` imports (targets of its `imports` links).
    pub fn imports_of(&self, ham: &Ham, node: NodeIndex) -> Result<Vec<NodeIndex>> {
        self.linked_targets(ham, node, relation::IMPORTS)
    }

    /// Modules that import `node` (sources of `imports` links into it).
    pub fn importers_of(&self, ham: &Ham, node: NodeIndex) -> Result<Vec<NodeIndex>> {
        let graph = ham.graph(self.context)?;
        let rel = graph.attr_table.lookup(RELATION);
        let n = graph.node(node)?;
        let mut out = Vec::new();
        for &link_id in &n.incident_links {
            let link = graph.link(link_id)?;
            if link.to.node != node || !link.exists_at(Time::CURRENT) {
                continue;
            }
            let matches = rel
                .and_then(|attr| link.attrs.get(attr, Time::CURRENT))
                .map(|v| *v == Value::str(relation::IMPORTS))
                .unwrap_or(false);
            if matches {
                out.push(link.from.node);
            }
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Targets of `node`'s out-links carrying `relation = wanted`.
    pub fn linked_targets(
        &self,
        ham: &Ham,
        node: NodeIndex,
        wanted: &str,
    ) -> Result<Vec<NodeIndex>> {
        let graph = ham.graph(self.context)?;
        let rel = graph.attr_table.lookup(RELATION);
        let n = graph.node(node)?;
        let mut out: Vec<(u64, NodeIndex)> = Vec::new();
        for &link_id in &n.incident_links {
            let link = graph.link(link_id)?;
            if link.from.node != node || !link.exists_at(Time::CURRENT) {
                continue;
            }
            let matches = rel
                .and_then(|attr| link.attrs.get(attr, Time::CURRENT))
                .map(|v| *v == Value::str(wanted))
                .unwrap_or(false);
            if matches {
                if let Some(offset) = link.from.position_at(Time::CURRENT) {
                    out.push((offset, link.to.node));
                }
            }
        }
        out.sort_unstable();
        Ok(out.into_iter().map(|(_, n)| n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modula::parse_module;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn fresh(name: &str) -> Ham {
        let dir = std::env::temp_dir().join(format!("neptune-case-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Ham::create_graph(dir, Protections::DEFAULT).unwrap().0
    }

    const LISTS: &str = "DEFINITION MODULE Lists;\nEND Lists.\n";
    const MAIN: &str = "\
MODULE Main;
IMPORT Lists;
PROCEDURE Run;
BEGIN
END Run;
BEGIN
END Main.
";

    #[test]
    fn ingest_builds_tree_with_conventions() {
        let mut ham = fresh("ingest");
        let project = CaseProject::new(MAIN_CONTEXT);
        let module = parse_module(MAIN).unwrap();
        let nodes = project.ingest_module(&mut ham, &module).unwrap();
        assert_eq!(nodes.procedures.len(), 1);
        let run = nodes.procedures["Run"];
        // Attributes applied.
        let code = ham.get_attribute_index(MAIN_CONTEXT, CODE_TYPE).unwrap();
        assert_eq!(
            ham.get_node_attribute_value(MAIN_CONTEXT, run, code, Time::CURRENT)
                .unwrap(),
            Value::str(code_type::PROCEDURE)
        );
        // Structure link in place.
        let children = project
            .linked_targets(&ham, nodes.module, relation::IS_PART_OF)
            .unwrap();
        assert_eq!(children, vec![run]);
        // The module node holds the module-level text.
        let opened = ham
            .open_node(MAIN_CONTEXT, nodes.module, Time::CURRENT, &[])
            .unwrap();
        assert!(String::from_utf8_lossy(&opened.contents).contains("MODULE Main"));
    }

    #[test]
    fn import_links_form_the_directed_graph() {
        let mut ham = fresh("imports");
        let project = CaseProject::new(MAIN_CONTEXT);
        let lists = parse_module(LISTS).unwrap();
        let main = parse_module(MAIN).unwrap();
        let lists_nodes = project.ingest_module(&mut ham, &lists).unwrap();
        let main_nodes = project.ingest_module(&mut ham, &main).unwrap();
        let created = project
            .link_imports(
                &mut ham,
                &[(&lists, lists_nodes.module), (&main, main_nodes.module)],
            )
            .unwrap();
        assert_eq!(created, 1);
        assert_eq!(
            project.imports_of(&ham, main_nodes.module).unwrap(),
            vec![lists_nodes.module]
        );
        assert_eq!(
            project.importers_of(&ham, lists_nodes.module).unwrap(),
            vec![main_nodes.module]
        );
        // Unknown imports are skipped silently.
        assert!(project
            .imports_of(&ham, lists_nodes.module)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn module_node_lookup_by_name() {
        let mut ham = fresh("lookup");
        let project = CaseProject::new(MAIN_CONTEXT);
        let main = parse_module(MAIN).unwrap();
        let nodes = project.ingest_module(&mut ham, &main).unwrap();
        assert_eq!(
            project.module_node(&ham, "Main").unwrap(),
            Some(nodes.module)
        );
        assert_eq!(project.module_node(&ham, "Ghost").unwrap(), None);
    }

    #[test]
    fn nested_procedures_nest_in_hypertext() {
        let mut ham = fresh("nested");
        let project = CaseProject::new(MAIN_CONTEXT);
        let src = "MODULE M;\nPROCEDURE Outer;\nPROCEDURE Inner;\nEND Inner;\nEND Outer;\nEND M.\n";
        let module = parse_module(src).unwrap();
        let nodes = project.ingest_module(&mut ham, &module).unwrap();
        let outer = nodes.procedures["Outer"];
        let inner = nodes.procedures["Outer.Inner"];
        assert_eq!(
            project
                .linked_targets(&ham, outer, relation::IS_PART_OF)
                .unwrap(),
            vec![inner]
        );
    }
}
