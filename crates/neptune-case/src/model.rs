//! CASE attribute conventions.
//!
//! Paper §4.2: *"In a Modula-2 CASE environment every node has an attached
//! attribute, named contentType, that identifies what the node contains …
//! Values of contentType could include text, graphics, Modula-2 source
//! code, Modula-2 object code or Modula-2 symbol table. … nodes that
//! contain portions of a Modula-2 source program could have an attribute
//! codeType … such as definitionModule, implementationModule, or
//! procedure. Every link has an attached attribute, named relation … Values
//! of 'relation' could include isPartOf, annotates, references, or
//! compilesInto."*

/// Attribute identifying what a node contains.
pub const CONTENT_TYPE: &str = "contentType";
/// Attribute describing the syntactic kind of a source fragment.
pub const CODE_TYPE: &str = "codeType";
/// Attribute naming a link's relationship (shared with the document layer).
pub const RELATION: &str = "relation";
/// Attribute recording which project member is responsible for a node.
pub const RESPONSIBLE: &str = "responsible";
/// Attribute a modification demon sets so the incremental compiler can
/// find work (paper §5's "invoking an incremental compiler when a node
/// which contains code is modified").
pub const DIRTY: &str = "dirty";

/// `contentType` values.
pub mod content_type {
    /// Plain text.
    pub const TEXT: &str = "text";
    /// Graphics data.
    pub const GRAPHICS: &str = "graphics";
    /// Modula-2 source code.
    pub const MODULA2_SOURCE: &str = "modula2Source";
    /// Modula-2 object code.
    pub const MODULA2_OBJECT: &str = "modula2Object";
    /// Modula-2 symbol table.
    pub const MODULA2_SYMBOLS: &str = "modula2SymbolTable";
}

/// `codeType` values.
pub mod code_type {
    /// A definition module.
    pub const DEFINITION_MODULE: &str = "definitionModule";
    /// An implementation module.
    pub const IMPLEMENTATION_MODULE: &str = "implementationModule";
    /// A procedure.
    pub const PROCEDURE: &str = "procedure";
}

/// `relation` values used by the CASE layer.
pub mod relation {
    /// Structural containment.
    pub const IS_PART_OF: &str = "isPartOf";
    /// Annotation.
    pub const ANNOTATES: &str = "annotates";
    /// Cross-reference.
    pub const REFERENCES: &str = "references";
    /// Source → object code produced by compilation.
    pub const COMPILES_INTO: &str = "compilesInto";
    /// Module import (the paper: "Associated with each import list in a
    /// module is a link that points to the node representing the module
    /// being imported").
    pub const IMPORTS: &str = "imports";
    /// Source → symbol table produced by compilation.
    pub const EXPORTS_SYMBOLS: &str = "exportsSymbols";
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::Predicate;

    #[test]
    fn conventions_form_valid_predicates() {
        for text in [
            format!("{CONTENT_TYPE} = {}", content_type::MODULA2_SOURCE),
            format!("{CODE_TYPE} = {}", code_type::PROCEDURE),
            format!("{RELATION} = {}", relation::COMPILES_INTO),
            format!("{DIRTY} = true"),
        ] {
            assert!(Predicate::parse(&text).is_ok(), "{text}");
        }
    }
}
