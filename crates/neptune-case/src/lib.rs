//! # neptune-case
//!
//! The CASE (Computer-Aided Software Engineering) application layer from
//! the Neptune paper (§4.2): attribute conventions (`contentType`,
//! `codeType`, `relation`), a Modula-2 subset parser, ingestion of programs
//! into hypertext (module trees + import links), a demon-driven toy
//! incremental compiler, and a configuration manager built on
//! version-pinned link attachments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod config;
pub mod model;
pub mod modula;
pub mod project;

pub use compiler::{compile_pass, dirty_sources, install_recompile_demon, CompileStats};
pub use config::{checkout, create_release, Release, ReleaseMember};
pub use modula::{parse_module, Module, ModuleKind, Procedure};
pub use project::{CaseProject, ModuleNodes};
