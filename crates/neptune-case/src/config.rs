//! Configuration management via version-pinned links.
//!
//! Paper §3: a link attachment that *"refers to a particular version of a
//! node … is a useful primitive for building a configuration manager."*
//! A [`Release`] is a node whose out-links are pinned to the exact versions
//! of its member nodes at release time; checking the release out later
//! reproduces those versions byte-for-byte, no matter how the members have
//! evolved since.

use neptune_ham::types::{ContextId, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Result};

use crate::model::RELATION;

/// `relation` value on release membership links.
pub const CONFIG_ITEM: &str = "configItem";

/// A named, frozen configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// The release's manifest node.
    pub node: NodeIndex,
}

/// One member of a checked-out release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseMember {
    /// The member node.
    pub node: NodeIndex,
    /// The pinned version time.
    pub version: Time,
    /// The member's contents at that version.
    pub contents: Vec<u8>,
}

/// Freeze the current versions of `members` as a release named `name`.
/// The manifest node lists the members; each membership link is pinned to
/// the member's current version time.
pub fn create_release(
    ham: &mut Ham,
    context: ContextId,
    name: &str,
    members: &[NodeIndex],
) -> Result<Release> {
    ham.begin_transaction()?;
    let result = (|| {
        let (manifest, t) = ham.add_node(context, true)?;
        let rel = ham.get_attribute_index(context, RELATION)?;
        let icon = ham.get_attribute_index(context, "icon")?;
        // Write the manifest text before attaching links: modifyNode
        // requires a LinkPt per existing attachment.
        let mut versions = Vec::with_capacity(members.len());
        let mut text = format!("RELEASE {name}\n");
        for &member in members {
            let version = ham.get_node_time_stamp(context, member)?;
            text.push_str(&format!("  node {} @ {}\n", member.0, version.0));
            versions.push(version);
        }
        ham.modify_node(context, manifest, t, text.into_bytes(), &[])?;
        for (i, (&member, &version)) in members.iter().zip(&versions).enumerate() {
            let (link, _) = ham.add_link(
                context,
                LinkPt::current(manifest, i as u64),
                LinkPt::pinned(member, 0, version),
            )?;
            ham.set_link_attribute_value(context, link, rel, Value::str(CONFIG_ITEM))?;
        }
        ham.set_node_attribute_value(context, manifest, icon, Value::str(name))?;
        Ok(Release { node: manifest })
    })();
    match result {
        Ok(release) => {
            ham.commit_transaction()?;
            Ok(release)
        }
        Err(e) => {
            let _ = ham.abort_transaction();
            Err(e)
        }
    }
}

/// Reconstruct the exact member versions a release froze.
pub fn checkout(ham: &mut Ham, context: ContextId, release: Release) -> Result<Vec<ReleaseMember>> {
    // Collect the pinned membership links.
    let links: Vec<_> = {
        let graph = ham.graph(context)?;
        let rel = graph.attr_table.lookup(RELATION);
        let manifest = graph.node(release.node)?;
        let mut out: Vec<(u64, neptune_ham::LinkIndex)> = Vec::new();
        for &link_id in &manifest.incident_links {
            let link = graph.link(link_id)?;
            if link.from.node != release.node || !link.exists_at(Time::CURRENT) {
                continue;
            }
            let is_member = rel
                .and_then(|attr| link.attrs.get(attr, Time::CURRENT))
                .map(|v| *v == Value::str(CONFIG_ITEM))
                .unwrap_or(false);
            if is_member {
                if let Some(offset) = link.from.position_at(Time::CURRENT) {
                    out.push((offset, link_id));
                }
            }
        }
        out.sort_unstable();
        out.into_iter().map(|(_, l)| l).collect()
    };

    let mut members = Vec::with_capacity(links.len());
    for link in links {
        // getToNode resolves the pinned version (paper §A.3).
        let (node, version) = ham.get_to_node(context, link, Time::CURRENT)?;
        let contents = ham.open_node(context, node, version, &[])?.contents;
        members.push(ReleaseMember {
            node,
            version,
            contents: contents.to_vec(),
        });
    }
    Ok(members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    fn fresh(name: &str) -> (Ham, Vec<NodeIndex>) {
        let dir = std::env::temp_dir().join(format!("neptune-cfg-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let mut nodes = Vec::new();
        for i in 0..3 {
            let (n, t) = ham.add_node(MAIN_CONTEXT, true).unwrap();
            ham.modify_node(
                MAIN_CONTEXT,
                n,
                t,
                format!("module {i} v1\n").into_bytes(),
                &[],
            )
            .unwrap();
            nodes.push(n);
        }
        (ham, nodes)
    }

    #[test]
    fn checkout_reproduces_frozen_versions() {
        let (mut ham, nodes) = fresh("freeze");
        let release = create_release(&mut ham, MAIN_CONTEXT, "R1", &nodes).unwrap();

        // Evolve every member after the release.
        for (i, &n) in nodes.iter().enumerate() {
            let opened = ham.open_node(MAIN_CONTEXT, n, Time::CURRENT, &[]).unwrap();
            ham.modify_node(
                MAIN_CONTEXT,
                n,
                opened.current_time,
                format!("module {i} v2 CHANGED\n").into_bytes(),
                &opened.link_pts,
            )
            .unwrap();
        }

        let members = checkout(&mut ham, MAIN_CONTEXT, release).unwrap();
        assert_eq!(members.len(), 3);
        for (i, m) in members.iter().enumerate() {
            assert_eq!(m.node, nodes[i]);
            assert_eq!(m.contents, format!("module {i} v1\n").into_bytes());
        }
    }

    #[test]
    fn two_releases_freeze_different_states() {
        let (mut ham, nodes) = fresh("two");
        let r1 = create_release(&mut ham, MAIN_CONTEXT, "R1", &nodes).unwrap();
        let opened = ham
            .open_node(MAIN_CONTEXT, nodes[0], Time::CURRENT, &[])
            .unwrap();
        ham.modify_node(
            MAIN_CONTEXT,
            nodes[0],
            opened.current_time,
            b"module 0 v2\n".to_vec(),
            &opened.link_pts,
        )
        .unwrap();
        let r2 = create_release(&mut ham, MAIN_CONTEXT, "R2", &nodes).unwrap();

        let m1 = checkout(&mut ham, MAIN_CONTEXT, r1).unwrap();
        let m2 = checkout(&mut ham, MAIN_CONTEXT, r2).unwrap();
        assert_eq!(m1[0].contents, b"module 0 v1\n".to_vec());
        assert_eq!(m2[0].contents, b"module 0 v2\n".to_vec());
        assert_eq!(m1[1].contents, m2[1].contents);
    }

    #[test]
    fn manifest_lists_members() {
        let (mut ham, nodes) = fresh("manifest");
        let release = create_release(&mut ham, MAIN_CONTEXT, "R1", &nodes).unwrap();
        let manifest = ham
            .open_node(MAIN_CONTEXT, release.node, Time::CURRENT, &[])
            .unwrap();
        let text = String::from_utf8_lossy(&manifest.contents).into_owned();
        assert!(text.starts_with("RELEASE R1"));
        for n in &nodes {
            assert!(text.contains(&format!("node {}", n.0)));
        }
    }

    #[test]
    fn release_of_missing_node_rolls_back() {
        let (mut ham, _) = fresh("rollback");
        let before = ham.graph(MAIN_CONTEXT).unwrap().live_node_count();
        assert!(create_release(&mut ham, MAIN_CONTEXT, "bad", &[NodeIndex(777)]).is_err());
        assert_eq!(ham.graph(MAIN_CONTEXT).unwrap().live_node_count(), before);
    }
}
