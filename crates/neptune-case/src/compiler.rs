//! A demon-driven incremental compiler.
//!
//! Paper §5's motivating demon example: *"invoking an incremental compiler
//! when a node which contains code is modified"*; §4.2: *"A compiler
//! integrated with hypertext can use nodes for object code and symbol
//! tables; links can be used to associate these objects with their source
//! code"* and *"the unit of incrementality of the compiler should be used
//! to determine what syntactic code fragment the source code nodes
//! represent"* (citing Magpie's per-procedure recompilation \[SDB84\]).
//!
//! This toy compiler preserves those data-flow properties without being a
//! real code generator: "object code" is a deterministic digest of the
//! source text plus imported symbol tables. A graph demon marks modified
//! source nodes `dirty = true`; a compile pass finds dirty nodes with
//! `getGraphQuery`, regenerates their object/symbol nodes, and propagates
//! dirtiness to importers whose interface inputs changed — so tests and
//! benchmarks can verify *exactly which* nodes a change recompiles.

use neptune_ham::demons::{DemonSpec, Event};
use neptune_ham::types::{ContextId, LinkPt, NodeIndex, Time};
use neptune_ham::value::Value;
use neptune_ham::{Ham, Predicate, Result};

use neptune_storage::checksum::crc32;

use crate::model::{content_type, relation, CONTENT_TYPE, DIRTY, RELATION};
use crate::project::CaseProject;

/// Name of the demon installed by [`install_recompile_demon`].
pub const DEMON_NAME: &str = "mark-source-dirty";

/// What one compile pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Source nodes whose object code was regenerated, in compile order.
    pub compiled: Vec<NodeIndex>,
    /// Source nodes examined but already up to date.
    pub skipped: usize,
    /// Import-propagation rounds performed.
    pub rounds: usize,
}

/// Install the §5 demon: every `modifyNode` on this graph marks the
/// modified node `dirty = true`, queueing it for the next compile pass.
pub fn install_recompile_demon(ham: &mut Ham, context: ContextId) -> Result<()> {
    ham.set_graph_demon_value(
        context,
        Event::NodeModified,
        Some(DemonSpec::mark_node(DEMON_NAME, DIRTY, true)),
    )
}

/// Compile every dirty source node (and everything whose imports' symbol
/// tables changed), producing/refreshing `compilesInto` object nodes and
/// `exportsSymbols` symbol-table nodes.
pub fn compile_pass(ham: &mut Ham, project: &CaseProject) -> Result<CompileStats> {
    let ctx = project.context;
    let mut stats = CompileStats::default();

    loop {
        stats.rounds += 1;
        let dirty = dirty_sources(ham, ctx)?;
        if dirty.is_empty() {
            break;
        }
        let mut interface_changed: Vec<NodeIndex> = Vec::new();
        for node in dirty {
            let changed = compile_one(ham, project, node)?;
            stats.compiled.push(node);
            if changed {
                interface_changed.push(node);
            } else {
                stats.skipped += 1;
            }
            let dirty_attr = ham.get_attribute_index(ctx, DIRTY)?;
            ham.delete_node_attribute(ctx, node, dirty_attr)?;
        }
        // Propagate: importers of modules whose symbol table changed must
        // recompile next round.
        let mut to_mark: Vec<NodeIndex> = Vec::new();
        for node in interface_changed {
            to_mark.extend(project.importers_of(ham, node)?);
        }
        to_mark.sort_unstable();
        to_mark.dedup();
        if to_mark.is_empty() {
            break;
        }
        let dirty_attr = ham.get_attribute_index(ctx, DIRTY)?;
        for node in to_mark {
            ham.set_node_attribute_value(ctx, node, dirty_attr, Value::Bool(true))?;
        }
        // Safety valve for import cycles: at most one round per module.
        if stats.rounds > 64 {
            break;
        }
    }
    Ok(stats)
}

/// Source nodes currently marked dirty, in index order.
pub fn dirty_sources(ham: &Ham, context: ContextId) -> Result<Vec<NodeIndex>> {
    let pred = Predicate::parse(&format!(
        "{DIRTY} = true and {CONTENT_TYPE} = {}",
        content_type::MODULA2_SOURCE
    ))
    .expect("static predicate parses");
    let sg = ham.get_graph_query(context, Time::CURRENT, &pred, &Predicate::True, &[], &[])?;
    Ok(sg.node_ids())
}

/// Compile one source node. Returns whether its exported symbol table
/// changed (which forces importers to recompile).
fn compile_one(ham: &mut Ham, project: &CaseProject, source: NodeIndex) -> Result<bool> {
    let ctx = project.context;
    let contents = ham.open_node(ctx, source, Time::CURRENT, &[])?.contents;

    // The toy "compilation": digest of source + imported interfaces.
    let mut input = contents.to_vec();
    for import in project.imports_of(ham, source)? {
        if let Some(symbols) = project
            .linked_targets(ham, import, relation::EXPORTS_SYMBOLS)?
            .first()
        {
            input.extend_from_slice(&ham.open_node(ctx, *symbols, Time::CURRENT, &[])?.contents);
        }
    }
    let object_code = format!("OBJ {:08x} len={}\n", crc32(&input), contents.len()).into_bytes();
    // The symbol table digests only the *interface* — the declared
    // procedure headers — so body/comment edits do not cascade to
    // importers, while adding or removing an exported procedure does.
    let interface = interface_of(&contents);
    let symbol_table = format!("SYM {:08x}\n", crc32(interface.as_bytes())).into_bytes();

    write_product(ham, project, source, relation::COMPILES_INTO, object_code)?;
    let symbols_changed = write_product(
        ham,
        project,
        source,
        relation::EXPORTS_SYMBOLS,
        symbol_table,
    )?;
    Ok(symbols_changed)
}

/// The interface of a source fragment: its module header and procedure
/// declaration lines, which is what importers can see.
fn interface_of(contents: &[u8]) -> String {
    String::from_utf8_lossy(contents)
        .lines()
        .map(str::trim)
        .filter(|l| l.starts_with("PROCEDURE") || l.contains("MODULE "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Create or refresh the product node linked from `source` with `rel`.
/// Returns whether the product's contents actually changed.
fn write_product(
    ham: &mut Ham,
    project: &CaseProject,
    source: NodeIndex,
    rel: &str,
    contents: Vec<u8>,
) -> Result<bool> {
    let ctx = project.context;
    let existing = project.linked_targets(ham, source, rel)?.first().copied();
    match existing {
        Some(product) => {
            let opened = ham.open_node(ctx, product, Time::CURRENT, &[])?;
            if opened.contents[..] == contents[..] {
                return Ok(false);
            }
            ham.modify_node(
                ctx,
                product,
                opened.current_time,
                contents,
                &opened.link_pts,
            )?;
            Ok(true)
        }
        None => {
            ham.begin_transaction()?;
            let result = (|| {
                let (product, t) = ham.add_node(ctx, true)?;
                ham.modify_node(ctx, product, t, contents, &[])?;
                let ct = ham.get_attribute_index(ctx, CONTENT_TYPE)?;
                let kind = if rel == relation::COMPILES_INTO {
                    content_type::MODULA2_OBJECT
                } else {
                    content_type::MODULA2_SYMBOLS
                };
                ham.set_node_attribute_value(ctx, product, ct, Value::str(kind))?;
                let (link, _) =
                    ham.add_link(ctx, LinkPt::current(source, 0), LinkPt::current(product, 0))?;
                let rel_attr = ham.get_attribute_index(ctx, RELATION)?;
                ham.set_link_attribute_value(ctx, link, rel_attr, Value::str(rel))?;
                Ok(())
            })();
            match result {
                Ok(()) => {
                    ham.commit_transaction()?;
                    Ok(true)
                }
                Err(e) => {
                    let _ = ham.abort_transaction();
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modula::parse_module;
    use neptune_ham::types::{Protections, MAIN_CONTEXT};

    const LISTS: &str = "DEFINITION MODULE Lists;\nPROCEDURE Length;\nEND Length;\nEND Lists.\n";
    const MAIN: &str = "MODULE Main;\nIMPORT Lists;\nPROCEDURE Run;\nBEGIN\nEND Run;\nEND Main.\n";

    struct Fixture {
        ham: Ham,
        project: CaseProject,
        lists: NodeIndex,
        main: NodeIndex,
    }

    fn fixture(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("neptune-cc-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut ham, _, _) = Ham::create_graph(dir, Protections::DEFAULT).unwrap();
        let project = CaseProject::new(MAIN_CONTEXT);
        let lists_ast = parse_module(LISTS).unwrap();
        let main_ast = parse_module(MAIN).unwrap();
        let lists = project.ingest_module(&mut ham, &lists_ast).unwrap().module;
        let main = project.ingest_module(&mut ham, &main_ast).unwrap().module;
        project
            .link_imports(&mut ham, &[(&lists_ast, lists), (&main_ast, main)])
            .unwrap();
        install_recompile_demon(&mut ham, MAIN_CONTEXT).unwrap();
        // Mark everything dirty for the initial build.
        let dirty = ham.get_attribute_index(MAIN_CONTEXT, DIRTY).unwrap();
        for node in [lists, main] {
            ham.set_node_attribute_value(MAIN_CONTEXT, node, dirty, Value::Bool(true))
                .unwrap();
        }
        Fixture {
            ham,
            project,
            lists,
            main,
        }
    }

    #[test]
    fn initial_build_compiles_everything_and_links_products() {
        let mut f = fixture("initial");
        let stats = compile_pass(&mut f.ham, &f.project).unwrap();
        assert!(stats.compiled.contains(&f.lists));
        assert!(stats.compiled.contains(&f.main));
        // Products exist and are typed.
        let obj = f
            .project
            .linked_targets(&f.ham, f.main, relation::COMPILES_INTO)
            .unwrap();
        assert_eq!(obj.len(), 1);
        let ct = f
            .ham
            .get_attribute_index(MAIN_CONTEXT, CONTENT_TYPE)
            .unwrap();
        assert_eq!(
            f.ham
                .get_node_attribute_value(MAIN_CONTEXT, obj[0], ct, Time::CURRENT)
                .unwrap(),
            Value::str(content_type::MODULA2_OBJECT)
        );
        // Everything clean afterwards.
        assert!(dirty_sources(&f.ham, MAIN_CONTEXT).unwrap().is_empty());
    }

    #[test]
    fn demon_marks_modified_source_dirty() {
        let mut f = fixture("demon");
        compile_pass(&mut f.ham, &f.project).unwrap();
        // Edit Main via modifyNode: the graph demon marks it dirty.
        let opened = f
            .ham
            .open_node(MAIN_CONTEXT, f.main, Time::CURRENT, &[])
            .unwrap();
        let mut text = opened.contents.to_vec();
        text.extend_from_slice(b"(* edited *)\n");
        f.ham
            .modify_node(
                MAIN_CONTEXT,
                f.main,
                opened.current_time,
                text,
                &opened.link_pts,
            )
            .unwrap();
        assert_eq!(dirty_sources(&f.ham, MAIN_CONTEXT).unwrap(), vec![f.main]);
    }

    #[test]
    fn body_edit_recompiles_only_that_module() {
        let mut f = fixture("incremental");
        compile_pass(&mut f.ham, &f.project).unwrap();
        // A comment-only edit to Main changes its object code but not its
        // interface, so Lists must not recompile. (Main exports nothing
        // anyone imports, so nothing cascades either.)
        let opened = f
            .ham
            .open_node(MAIN_CONTEXT, f.main, Time::CURRENT, &[])
            .unwrap();
        let mut text = opened.contents.to_vec();
        text.extend_from_slice(b"(* body tweak *)\n");
        f.ham
            .modify_node(
                MAIN_CONTEXT,
                f.main,
                opened.current_time,
                text,
                &opened.link_pts,
            )
            .unwrap();
        let stats = compile_pass(&mut f.ham, &f.project).unwrap();
        assert_eq!(stats.compiled, vec![f.main]);
    }

    #[test]
    fn interface_change_cascades_to_importers() {
        let mut f = fixture("cascade");
        compile_pass(&mut f.ham, &f.project).unwrap();
        // Editing Lists changes its symbol table → Main must recompile too.
        let opened = f
            .ham
            .open_node(MAIN_CONTEXT, f.lists, Time::CURRENT, &[])
            .unwrap();
        let mut text = opened.contents.to_vec();
        text.extend_from_slice(b"PROCEDURE Extra;\nEND Extra;\n");
        f.ham
            .modify_node(
                MAIN_CONTEXT,
                f.lists,
                opened.current_time,
                text,
                &opened.link_pts,
            )
            .unwrap();
        let stats = compile_pass(&mut f.ham, &f.project).unwrap();
        assert!(stats.compiled.contains(&f.lists));
        assert!(
            stats.compiled.contains(&f.main),
            "importer recompiled: {stats:?}"
        );
        assert!(stats.rounds >= 2);
    }

    #[test]
    fn clean_pass_compiles_nothing() {
        let mut f = fixture("clean");
        compile_pass(&mut f.ham, &f.project).unwrap();
        let stats = compile_pass(&mut f.ham, &f.project).unwrap();
        assert!(stats.compiled.is_empty());
    }

    #[test]
    fn object_history_is_versioned_too() {
        let mut f = fixture("history");
        compile_pass(&mut f.ham, &f.project).unwrap();
        let obj = f
            .project
            .linked_targets(&f.ham, f.main, relation::COMPILES_INTO)
            .unwrap()[0];
        let first = f
            .ham
            .open_node(MAIN_CONTEXT, obj, Time::CURRENT, &[])
            .unwrap();
        // Edit + rebuild.
        let opened = f
            .ham
            .open_node(MAIN_CONTEXT, f.main, Time::CURRENT, &[])
            .unwrap();
        let mut text = opened.contents.to_vec();
        text.extend_from_slice(b"(* v2 *)\n");
        f.ham
            .modify_node(
                MAIN_CONTEXT,
                f.main,
                opened.current_time,
                text,
                &opened.link_pts,
            )
            .unwrap();
        compile_pass(&mut f.ham, &f.project).unwrap();
        let second = f
            .ham
            .open_node(MAIN_CONTEXT, obj, Time::CURRENT, &[])
            .unwrap();
        assert_ne!(first.contents, second.contents);
        // The old object code is still reachable at its version time.
        let old = f
            .ham
            .open_node(MAIN_CONTEXT, obj, first.current_time, &[])
            .unwrap();
        assert_eq!(old.contents, first.contents);
    }
}
