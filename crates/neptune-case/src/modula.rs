//! A Modula-2 subset parser.
//!
//! Paper §4.2: *"In a language like Modula-2 a program requires a directed
//! graph to represent its static structure. Each module can be represented
//! by a simple tree similar to the Pascal program; the need for a directed
//! graph is due to links that are used to specify imported modules."* To
//! ingest programs into hypertext we parse the structural subset that
//! matters: module headers, import lists, and (nested) procedures — the
//! compiler's unit of incrementality (§4.2 cites Magpie's per-procedure
//! recompilation \[SDB84\]).
//!
//! Grammar subset (line-oriented, case-sensitive keywords):
//!
//! ```text
//! module    := ("DEFINITION" | "IMPLEMENTATION")? "MODULE" ident ";"
//!              import* decl* ("BEGIN" text)? "END" ident "."
//! import    := "IMPORT" ident ("," ident)* ";"
//!            | "FROM" ident "IMPORT" ident ("," ident)* ";"
//! decl      := "PROCEDURE" ident ...";" body "END" ident ";"  (nestable)
//! ```

use std::fmt;

/// The kind of module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleKind {
    /// `DEFINITION MODULE`.
    Definition,
    /// `IMPLEMENTATION MODULE` (or a bare `MODULE`, treated the same).
    Implementation,
}

/// A parsed procedure with its nested procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    /// The procedure's name.
    pub name: String,
    /// The procedure's own source text (header + body lines belonging to
    /// it, excluding nested procedures' text).
    pub text: String,
    /// Nested procedures, in order of appearance.
    pub children: Vec<Procedure>,
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Definition vs implementation module.
    pub kind: ModuleKind,
    /// Imported module names, in order, deduplicated.
    pub imports: Vec<String>,
    /// For each `FROM <module> IMPORT <items>;` line: the source module and
    /// the items pulled from it, in order of appearance. Used by the lint
    /// pass to find exported-but-never-imported procedures.
    pub from_imports: Vec<(String, Vec<String>)>,
    /// Top-level procedures.
    pub procedures: Vec<Procedure>,
    /// Module-level text (header, declarations, module body) excluding
    /// procedure text.
    pub text: String,
}

impl Module {
    /// Total number of procedures, including nested ones.
    pub fn procedure_count(&self) -> usize {
        fn count(p: &Procedure) -> usize {
            1 + p.children.iter().map(count).sum::<usize>()
        }
        self.procedures.iter().map(count).sum()
    }
}

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn ident_after<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.trim().strip_prefix(keyword)?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(&rest[..end])
    }
}

/// Parse Modula-2 source text into a [`Module`].
pub fn parse_module(source: &str) -> Result<Module, ParseError> {
    let lines: Vec<&str> = source.lines().collect();
    let mut kind = ModuleKind::Implementation;
    let mut name: Option<String> = None;
    let mut imports: Vec<String> = Vec::new();
    let mut from_imports: Vec<(String, Vec<String>)> = Vec::new();
    let mut module_text = String::new();

    // Stack of open procedures; the finished top-level ones accumulate.
    let mut stack: Vec<Procedure> = Vec::new();
    let mut procedures: Vec<Procedure> = Vec::new();

    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if name.is_none() {
            if line.is_empty() || line.starts_with("(*") {
                continue;
            }
            let (k, rest) = if let Some(rest) = line.strip_prefix("DEFINITION ") {
                (ModuleKind::Definition, rest.trim_start())
            } else if let Some(rest) = line.strip_prefix("IMPLEMENTATION ") {
                (ModuleKind::Implementation, rest.trim_start())
            } else {
                (ModuleKind::Implementation, line)
            };
            let Some(n) = ident_after(rest, "MODULE") else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("expected MODULE header, found '{line}'"),
                });
            };
            kind = k;
            name = Some(n.to_string());
            module_text.push_str(raw);
            module_text.push('\n');
            continue;
        }

        // Imports (module level only).
        if stack.is_empty() {
            if let Some(rest) = line.strip_prefix("FROM ") {
                if let Some(module) = ident_after(rest, "") {
                    if !imports.iter().any(|m| m == module) {
                        imports.push(module.to_string());
                    }
                    // Items after the inner IMPORT keyword.
                    let items: Vec<String> = rest
                        .split_once("IMPORT")
                        .map(|(_, items)| {
                            items
                                .trim_end_matches(';')
                                .split(',')
                                .map(str::trim)
                                .filter(|s| !s.is_empty())
                                .map(str::to_string)
                                .collect()
                        })
                        .unwrap_or_default();
                    from_imports.push((module.to_string(), items));
                }
                module_text.push_str(raw);
                module_text.push('\n');
                continue;
            }
            if let Some(rest) = line.strip_prefix("IMPORT ") {
                for m in rest.trim_end_matches(';').split(',') {
                    let m = m.trim();
                    if !m.is_empty() && !imports.iter().any(|x| x == m) {
                        imports.push(m.to_string());
                    }
                }
                module_text.push_str(raw);
                module_text.push('\n');
                continue;
            }
        }

        if let Some(pname) = ident_after(line, "PROCEDURE") {
            let mut proc = Procedure {
                name: pname.to_string(),
                text: String::new(),
                children: Vec::new(),
            };
            proc.text.push_str(raw);
            proc.text.push('\n');
            stack.push(proc);
            continue;
        }

        // END of a procedure (matched by name) or of the module.
        if let Some(end_name) = ident_after(line, "END") {
            if let Some(top) = stack.last() {
                if top.name == end_name {
                    let mut finished = stack.pop().expect("non-empty stack");
                    finished.text.push_str(raw);
                    finished.text.push('\n');
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(finished),
                        None => procedures.push(finished),
                    }
                    continue;
                }
            }
            if Some(end_name) == name.as_deref() && stack.is_empty() {
                module_text.push_str(raw);
                module_text.push('\n');
                continue;
            }
            return Err(ParseError {
                line: lineno,
                message: format!(
                    "END {end_name} does not match open scope {:?}",
                    stack.last().map(|p| p.name.as_str()).or(name.as_deref())
                ),
            });
        }

        // Ordinary line: belongs to the innermost open scope.
        match stack.last_mut() {
            Some(proc) => {
                proc.text.push_str(raw);
                proc.text.push('\n');
            }
            None => {
                module_text.push_str(raw);
                module_text.push('\n');
            }
        }
    }

    let Some(name) = name else {
        return Err(ParseError {
            line: lines.len(),
            message: "no MODULE header found".into(),
        });
    };
    if let Some(open) = stack.last() {
        return Err(ParseError {
            line: lines.len(),
            message: format!("unterminated PROCEDURE {}", open.name),
        });
    }
    Ok(Module {
        name,
        kind,
        imports,
        from_imports,
        procedures,
        text: module_text,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
IMPLEMENTATION MODULE Storage;
FROM SYSTEM IMPORT ADR, SIZE;
IMPORT Lists, Strings;

VAR pool: ARRAY [0..255] OF CARDINAL;

PROCEDURE Allocate;
  VAR x: CARDINAL;
  PROCEDURE Grow;
  BEGIN
    (* grow the pool *)
  END Grow;
BEGIN
  Grow;
END Allocate;

PROCEDURE Release;
BEGIN
END Release;

BEGIN
END Storage.
";

    #[test]
    fn parses_structure() {
        let m = parse_module(SAMPLE).unwrap();
        assert_eq!(m.name, "Storage");
        assert_eq!(m.kind, ModuleKind::Implementation);
        assert_eq!(m.imports, vec!["SYSTEM", "Lists", "Strings"]);
        assert_eq!(
            m.from_imports,
            vec![("SYSTEM".to_string(), vec!["ADR".into(), "SIZE".into()])]
        );
        assert_eq!(m.procedures.len(), 2);
        assert_eq!(m.procedures[0].name, "Allocate");
        assert_eq!(m.procedures[0].children.len(), 1);
        assert_eq!(m.procedures[0].children[0].name, "Grow");
        assert_eq!(m.procedures[1].name, "Release");
        assert_eq!(m.procedure_count(), 3);
    }

    #[test]
    fn procedure_text_excludes_nested() {
        let m = parse_module(SAMPLE).unwrap();
        let alloc = &m.procedures[0];
        assert!(alloc.text.contains("PROCEDURE Allocate"));
        assert!(alloc.text.contains("END Allocate"));
        assert!(
            !alloc.text.contains("grow the pool"),
            "nested body excluded"
        );
        assert!(alloc.children[0].text.contains("grow the pool"));
    }

    #[test]
    fn module_text_excludes_procedures() {
        let m = parse_module(SAMPLE).unwrap();
        assert!(m.text.contains("MODULE Storage"));
        assert!(m.text.contains("VAR pool"));
        assert!(!m.text.contains("PROCEDURE Allocate"));
    }

    #[test]
    fn definition_modules() {
        let m = parse_module("DEFINITION MODULE Lists;\nEND Lists.\n").unwrap();
        assert_eq!(m.kind, ModuleKind::Definition);
        assert_eq!(m.name, "Lists");
        assert!(m.imports.is_empty());
    }

    #[test]
    fn errors_are_located() {
        let err = parse_module("VAR x: CARDINAL;\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("MODULE header"));

        let err = parse_module("MODULE M;\nPROCEDURE P;\nEND Wrong;\n").unwrap_err();
        assert_eq!(err.line, 3);

        let err = parse_module("MODULE M;\nPROCEDURE P;\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn duplicate_imports_dedupe() {
        let m = parse_module("MODULE M;\nIMPORT A, B;\nIMPORT A;\nEND M.\n").unwrap();
        assert_eq!(m.imports, vec!["A", "B"]);
    }
}
