//! Property-based tests for the storage substrate's core invariants.

use proptest::prelude::*;

use neptune_storage::archive::Archive;
use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::delta::Delta;
use neptune_storage::diff::{differences, diff_lines, split_lines, Difference, HunkKind};
use neptune_storage::varint;

/// Arbitrary "texts": a mix of line-structured and binary-ish content.
fn text_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Line-oriented text from a small alphabet so diffs find structure.
        proptest::collection::vec(
            prop_oneof![
                Just(b"alpha\n".to_vec()),
                Just(b"beta\n".to_vec()),
                Just(b"gamma\n".to_vec()),
                Just(b"delta line with more text\n".to_vec()),
                Just(b"\n".to_vec()),
            ],
            0..40
        )
        .prop_map(|lines| lines.concat()),
        // Arbitrary bytes, possibly with no newlines at all.
        proptest::collection::vec(any::<u8>(), 0..200),
    ]
}

proptest! {
    #[test]
    fn varint_u64_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(buf.len(), varint::encoded_len(v));
    }

    #[test]
    fn varint_i64_roundtrips(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let (decoded, used) = varint::read_i64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn zigzag_is_a_bijection(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn delta_apply_reconstructs_target(base in text_strategy(), target in text_strategy()) {
        let d = Delta::compute(&base, &target);
        prop_assert_eq!(d.apply(&base).unwrap(), target.clone());
        prop_assert_eq!(d.target_len(), target.len() as u64);
        // And the encoded form survives a roundtrip.
        let decoded = Delta::from_bytes(&d.to_bytes()).unwrap();
        prop_assert_eq!(decoded.apply(&base).unwrap(), target);
    }

    #[test]
    fn diff_hunks_partition_both_inputs(a in text_strategy(), b in text_strategy()) {
        let hunks = diff_lines(&a, &b);
        let mut a_pos = 0usize;
        let mut b_pos = 0usize;
        for h in &hunks {
            prop_assert_eq!(h.a_range.0, a_pos);
            prop_assert_eq!(h.b_range.0, b_pos);
            match h.kind {
                HunkKind::Equal => {
                    prop_assert_eq!(h.a_range.1 - h.a_range.0, h.b_range.1 - h.b_range.0);
                }
                HunkKind::Delete => prop_assert_eq!(h.b_range.0, h.b_range.1),
                HunkKind::Insert => prop_assert_eq!(h.a_range.0, h.a_range.1),
            }
            a_pos = h.a_range.1;
            b_pos = h.b_range.1;
        }
        prop_assert_eq!(a_pos, split_lines(&a).len());
        prop_assert_eq!(b_pos, split_lines(&b).len());
    }

    #[test]
    fn differences_roundtrip_codec(a in text_strategy(), b in text_strategy()) {
        for d in differences(&a, &b) {
            let decoded = Difference::from_bytes(&d.to_bytes()).unwrap();
            prop_assert_eq!(decoded, d);
        }
    }

    #[test]
    fn identical_texts_have_no_differences(a in text_strategy()) {
        prop_assert!(differences(&a, &a).is_empty());
    }

    #[test]
    fn archive_checkout_returns_exact_versions(
        versions in proptest::collection::vec(text_strategy(), 1..12)
    ) {
        let mut archive = Archive::new(versions[0].clone(), 1);
        for (i, v) in versions.iter().enumerate().skip(1) {
            archive.checkin(v.clone(), (i + 1) as u64).unwrap();
        }
        for (i, v) in versions.iter().enumerate() {
            prop_assert_eq!(&archive.checkout((i + 1) as u64).unwrap(), v);
        }
        // Time 0 is always the newest version.
        prop_assert_eq!(&archive.checkout(0).unwrap(), versions.last().unwrap());
        // Encoded archives are faithful.
        let decoded = Archive::from_bytes(&archive.to_bytes()).unwrap();
        for (i, v) in versions.iter().enumerate() {
            prop_assert_eq!(&decoded.checkout((i + 1) as u64).unwrap(), v);
        }
    }

    #[test]
    fn codec_seq_roundtrips(items in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded: Vec<u64> = decode_seq(&mut r).unwrap();
        prop_assert_eq!(decoded, items);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn codec_string_roundtrips(s in "\\PC*") {
        let bytes = s.to_bytes();
        prop_assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn truncated_codec_input_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..100),
        cut in 0usize..100
    ) {
        // Decoding arbitrary (possibly truncated) bytes must error, not panic.
        let cut = cut.min(payload.len());
        let _ = Delta::from_bytes(&payload[..cut]);
        let _ = Archive::from_bytes(&payload[..cut]);
        let _ = Difference::from_bytes(&payload[..cut]);
    }
}
