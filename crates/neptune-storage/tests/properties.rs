//! Randomized (seeded, deterministic) tests for the storage substrate's
//! core invariants. Each test sweeps many generated inputs from an
//! explicit `XorShift` seed, so failures reproduce exactly.

use neptune_storage::archive::Archive;
use neptune_storage::codec::{decode_seq, encode_seq, Decode, Encode, Reader, Writer};
use neptune_storage::delta::Delta;
use neptune_storage::diff::{diff_lines, differences, split_lines, Difference, HunkKind};
use neptune_storage::testutil::XorShift;
use neptune_storage::varint;

/// Generated "texts": a mix of line-structured and binary-ish content.
fn gen_text(rng: &mut XorShift) -> Vec<u8> {
    if rng.chance(1, 2) {
        // Line-oriented text from a small alphabet so diffs find structure.
        const LINES: [&[u8]; 5] = [
            b"alpha\n",
            b"beta\n",
            b"gamma\n",
            b"delta line with more text\n",
            b"\n",
        ];
        let count = rng.below(40) as usize;
        let mut out = Vec::new();
        for _ in 0..count {
            out.extend_from_slice(LINES[rng.index(LINES.len())]);
        }
        out
    } else {
        // Arbitrary bytes, possibly with no newlines at all.
        let len = rng.below(200) as usize;
        rng.bytes(len)
    }
}

/// Interesting u64 values plus random ones.
fn gen_u64(rng: &mut XorShift) -> u64 {
    match rng.below(4) {
        0 => [0, 1, 2, u64::MAX, u64::MAX - 1, 1 << 32, (1 << 63) - 1][rng.index(7)],
        _ => rng.next_u64(),
    }
}

#[test]
fn varint_u64_roundtrips() {
    let mut rng = XorShift::new(0x5701);
    for _ in 0..2000 {
        let v = gen_u64(&mut rng);
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, v);
        let (decoded, used) = varint::read_u64(&buf).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
        assert_eq!(buf.len(), varint::encoded_len(v));
    }
}

#[test]
fn varint_i64_roundtrips() {
    let mut rng = XorShift::new(0x5702);
    for _ in 0..2000 {
        let v = gen_u64(&mut rng) as i64;
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let (decoded, used) = varint::read_i64(&buf).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
    }
}

#[test]
fn zigzag_is_a_bijection() {
    let mut rng = XorShift::new(0x5703);
    for _ in 0..2000 {
        let v = gen_u64(&mut rng) as i64;
        assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }
}

#[test]
fn delta_apply_reconstructs_target() {
    let mut rng = XorShift::new(0x5704);
    for _ in 0..200 {
        let base = gen_text(&mut rng);
        let target = gen_text(&mut rng);
        let d = Delta::compute(&base, &target);
        assert_eq!(d.apply(&base).unwrap(), target);
        assert_eq!(d.target_len(), target.len() as u64);
        // And the encoded form survives a roundtrip.
        let decoded = Delta::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(decoded.apply(&base).unwrap(), target);
    }
}

#[test]
fn diff_hunks_partition_both_inputs() {
    let mut rng = XorShift::new(0x5705);
    for _ in 0..200 {
        let a = gen_text(&mut rng);
        let b = gen_text(&mut rng);
        let hunks = diff_lines(&a, &b);
        let mut a_pos = 0usize;
        let mut b_pos = 0usize;
        for h in &hunks {
            assert_eq!(h.a_range.0, a_pos);
            assert_eq!(h.b_range.0, b_pos);
            match h.kind {
                HunkKind::Equal => {
                    assert_eq!(h.a_range.1 - h.a_range.0, h.b_range.1 - h.b_range.0);
                }
                HunkKind::Delete => assert_eq!(h.b_range.0, h.b_range.1),
                HunkKind::Insert => assert_eq!(h.a_range.0, h.a_range.1),
            }
            a_pos = h.a_range.1;
            b_pos = h.b_range.1;
        }
        assert_eq!(a_pos, split_lines(&a).len());
        assert_eq!(b_pos, split_lines(&b).len());
    }
}

#[test]
fn differences_roundtrip_codec() {
    let mut rng = XorShift::new(0x5706);
    for _ in 0..200 {
        let a = gen_text(&mut rng);
        let b = gen_text(&mut rng);
        for d in differences(&a, &b) {
            let decoded = Difference::from_bytes(&d.to_bytes()).unwrap();
            assert_eq!(decoded, d);
        }
    }
}

#[test]
fn identical_texts_have_no_differences() {
    let mut rng = XorShift::new(0x5707);
    for _ in 0..200 {
        let a = gen_text(&mut rng);
        assert!(differences(&a, &a).is_empty());
    }
}

#[test]
fn archive_checkout_returns_exact_versions() {
    let mut rng = XorShift::new(0x5708);
    for _ in 0..40 {
        let count = 1 + rng.below(11) as usize;
        let versions: Vec<Vec<u8>> = (0..count).map(|_| gen_text(&mut rng)).collect();
        let mut archive = Archive::new(versions[0].clone(), 1);
        for (i, v) in versions.iter().enumerate().skip(1) {
            archive.checkin(v.clone(), (i + 1) as u64).unwrap();
        }
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&archive.checkout((i + 1) as u64).unwrap()[..], &v[..]);
        }
        // Time 0 is always the newest version.
        assert_eq!(
            &archive.checkout(0).unwrap()[..],
            &versions.last().unwrap()[..]
        );
        // Encoded archives are faithful.
        let decoded = Archive::from_bytes(&archive.to_bytes()).unwrap();
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(&decoded.checkout((i + 1) as u64).unwrap()[..], &v[..]);
        }
    }
}

#[test]
fn codec_seq_roundtrips() {
    let mut rng = XorShift::new(0x5709);
    for _ in 0..200 {
        let items: Vec<u64> = (0..rng.below(50)).map(|_| gen_u64(&mut rng)).collect();
        let mut w = Writer::new();
        encode_seq(&items, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded: Vec<u64> = decode_seq(&mut r).unwrap();
        assert_eq!(decoded, items);
        assert!(r.is_at_end());
    }
}

#[test]
fn codec_string_roundtrips() {
    let mut rng = XorShift::new(0x570A);
    for _ in 0..200 {
        // Printable-ish strings including multi-byte characters.
        let len = rng.below(40) as usize;
        let s: String = (0..len)
            .map(|_| match rng.below(4) {
                0 => char::from(b'a' + rng.below(26) as u8),
                1 => char::from(b'0' + rng.below(10) as u8),
                2 => ['é', 'ß', '→', '日', '🜁'][rng.index(5)],
                _ => ' ',
            })
            .collect();
        let bytes = s.to_bytes();
        assert_eq!(String::from_bytes(&bytes).unwrap(), s);
    }
}

#[test]
fn truncated_codec_input_never_panics() {
    let mut rng = XorShift::new(0x570B);
    for _ in 0..500 {
        // Decoding arbitrary (possibly truncated) bytes must error, not panic.
        let len = rng.below(100) as usize;
        let payload = rng.bytes(len);
        let cut = if payload.is_empty() {
            0
        } else {
            rng.index(payload.len() + 1)
        };
        let _ = Delta::from_bytes(&payload[..cut]);
        let _ = Archive::from_bytes(&payload[..cut]);
        let _ = Difference::from_bytes(&payload[..cut]);
    }
}
