//! Pluggable filesystem interface for the durable write path.
//!
//! Everything in this crate that *writes* durable state (the WAL, snapshot
//! files, the blob store) goes through a [`Vfs`] rather than `std::fs`
//! directly. In production that is [`StdVfs`], a zero-cost passthrough. In
//! tests it is [`crate::fault::FaultVfs`], which injects scripted I/O
//! failures and simulates power loss, so the exact fsync/rename orderings
//! the durability contract relies on (DESIGN.md §12) are executable, not
//! just documented.
//!
//! The surface is deliberately small — append-only file handles plus the
//! handful of directory operations the storage layer actually uses. There
//! is no seek: every consumer either appends, truncates, or reads a file
//! whole, and keeping the trait that narrow is what makes the fault model
//! tractable (each method is one injectable step).

use std::fmt::Debug;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle obtained from a [`Vfs`].
///
/// Writes always go to the end of the file (the WAL and snapshot writers
/// are strictly append-shaped); [`VfsFile::set_len`] is the only way to
/// shrink one.
pub trait VfsFile: Send + Sync + Debug {
    /// Append `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;
    /// Force the file's contents to stable storage (`fdatasync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncate (or extend with zeros) to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Read the entire file from the start.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;
    /// Current length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Whether the file is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// A filesystem as seen by the storage layer's durable write path.
pub trait Vfs: Send + Sync + Debug {
    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Create `path` (truncating any existing file) for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically rename `from` to `to`. Durable only after
    /// [`Vfs::sync_dir`] on the parent directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsync a directory, making completed renames/removes in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Remove `dir` and everything under it (`destroyGraph`'s teardown).
    /// Like `rename`/`remove_file`, durable only after [`Vfs::sync_dir`]
    /// on the parent.
    fn remove_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not full paths) of the entries in `dir`.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<std::ffi::OsString>>;
    /// Whether anything exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Set Unix permission bits on `path` (no-op on non-Unix platforms).
    fn set_permissions(&self, path: &Path, mode: u32) -> io::Result<()>;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shared handle to the passthrough Vfs.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

#[derive(Debug)]
struct StdVfsFile {
    file: File,
    /// O_APPEND handles position writes at the end themselves; create-mode
    /// handles (O_APPEND and O_TRUNC are mutually exclusive) seek first.
    append_mode: bool,
}

impl VfsFile for StdVfsFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        if !self.append_mode {
            self.file.seek(SeekFrom::End(0))?;
        }
        self.file.write_all(data)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Vfs for StdVfs {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(Box::new(StdVfsFile {
            file,
            append_mode: true,
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdVfsFile {
            file,
            append_mode: false,
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn remove_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::remove_dir_all(dir)
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<std::ffi::OsString>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name());
        }
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    #[cfg(unix)]
    fn set_permissions(&self, path: &Path, mode: u32) -> io::Result<()> {
        use std::os::unix::fs::PermissionsExt;
        fs::set_permissions(path, fs::Permissions::from_mode(mode))
    }

    #[cfg(not(unix))]
    fn set_permissions(&self, _path: &Path, _mode: u32) -> io::Result<()> {
        Ok(())
    }
}

/// Parent directory of `path` for durability syncs: an empty parent (a bare
/// relative file name) means the current directory.
pub fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-vfs-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_read_roundtrip() {
        let dir = tmpdir("rt");
        let vfs = StdVfs;
        let path = dir.join("f");
        let mut f = vfs.create(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.read_all().unwrap(), b"hello world");
        // Reads do not break append positioning.
        f.append(b"!").unwrap();
        assert_eq!(f.len().unwrap(), 12);
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world!");
    }

    #[test]
    fn set_len_then_append_continues_at_new_end() {
        let dir = tmpdir("truncate");
        let vfs = StdVfs;
        let mut f = vfs.create(&dir.join("f")).unwrap();
        f.append(b"0123456789").unwrap();
        f.set_len(4).unwrap();
        f.append(b"XY").unwrap();
        assert_eq!(f.read_all().unwrap(), b"0123XY");
    }

    #[test]
    fn open_append_preserves_existing_contents() {
        let dir = tmpdir("append");
        let vfs = StdVfs;
        let path = dir.join("f");
        vfs.create(&path).unwrap().append(b"abc").unwrap();
        let mut f = vfs.open_append(&path).unwrap();
        f.append(b"def").unwrap();
        assert_eq!(f.read_all().unwrap(), b"abcdef");
    }

    #[test]
    fn rename_and_dir_ops() {
        let dir = tmpdir("dirops");
        let vfs = StdVfs;
        let a = dir.join("a");
        let b = dir.join("b");
        vfs.create(&a).unwrap().append(b"x").unwrap();
        vfs.rename(&a, &b).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert!(!vfs.exists(&a));
        assert!(vfs.exists(&b));
        let names = vfs.read_dir(&dir).unwrap();
        assert_eq!(names, vec![std::ffi::OsString::from("b")]);
        vfs.remove_file(&b).unwrap();
        assert!(!vfs.exists(&b));
    }

    #[test]
    fn parent_dir_of_bare_name_is_cwd() {
        assert_eq!(parent_dir(Path::new("wal.log")), PathBuf::from("."));
        assert_eq!(parent_dir(Path::new("/a/b")), PathBuf::from("/a"));
    }
}
