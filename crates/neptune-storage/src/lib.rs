//! # neptune-storage
//!
//! Storage substrate for the Neptune hypertext system — the layer beneath
//! the Hypertext Abstract Machine (HAM) described in *"Neptune: a Hypertext
//! System for CAD Applications"* (Delisle & Schwartz, SIGMOD 1986).
//!
//! The paper's HAM is *"a transaction-based server"* that keeps *"a complete
//! version history"* of a hypergraph, storing node contents with *"backward
//! deltas similar to RCS"*. This crate provides those mechanisms, free of
//! any hypertext semantics:
//!
//! * [`codec`] — an explicit binary encoding for all durable state;
//! * [`checksum`] — CRC-32 integrity for every durable record;
//! * [`varint`] — compact integer encoding used throughout;
//! * [`diff`] — a Myers O(ND) line diff producing the paper's `Difference`
//!   domain (`getNodeDifferences`, the node-differences browser);
//! * [`delta`] — copy/add deltas between byte buffers;
//! * [`archive`] — backward-delta version archives (paper §A.2 "archives"),
//!   with a persisted hierarchical skip ladder and a byte-bounded anchor
//!   cache making any checkout O(log n) deltas;
//! * [`vcache`] — a bounded LRU cache of fully materialized node versions;
//! * [`wal`] — a write-ahead log giving transaction durability and
//!   crash recovery (paper §2.2);
//! * [`snapshot`] — atomic checksummed state snapshots for checkpointing;
//! * [`blobstore`] — directory-backed blobs carrying the paper's
//!   `Protections` domain;
//! * [`vfs`] — the pluggable filesystem the durable write path runs on;
//! * [`fault`] — a fault-injecting [`vfs::Vfs`] simulating power loss for
//!   crash-consistency tests.
//!
//! Everything here treats content as uninterpreted bytes, matching the
//! paper's stance that *"there is no interpretation at the HAM level — it is
//! just binary data."*

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod blobstore;
pub mod checksum;
pub mod codec;
pub mod delta;
pub mod diff;
pub mod error;
pub mod fault;
pub mod snapshot;
pub mod testutil;
pub mod varint;
pub mod vcache;
pub mod vfs;
pub mod wal;

pub use archive::Archive;
pub use blobstore::{BlobStore, Protections};
pub use codec::{Decode, Encode, Reader, Writer};
pub use delta::{Delta, DeltaOp};
pub use diff::{differences, Difference};
pub use error::{Result, StorageError};
pub use fault::{FaultKind, FaultVfs};
pub use vcache::{CacheStats, MaterializationCache};
pub use vfs::{StdVfs, Vfs, VfsFile};
pub use wal::{CommittedTxn, RecordKind, Wal, WalRecord};
