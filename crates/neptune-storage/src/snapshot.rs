//! Atomic, checksummed snapshot files.
//!
//! Graph state that is folded out of the WAL at checkpoint time is written
//! as a snapshot: a header, a CRC-32, and the payload, written to a
//! temporary file and atomically renamed into place so a crash during
//! checkpointing never leaves a half-written snapshot where a good one was.

use std::path::Path;

use crate::checksum::crc32;
use crate::codec::{read_u32_at, read_u64_at};
use crate::error::{Result, StorageError};
use crate::vfs::{parent_dir, StdVfs, Vfs};

/// Magic bytes identifying a Neptune snapshot file, version 2: node
/// archives inside the payload carry their persisted skip ladder (the
/// temporal index). All new snapshots are written as v2.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"NEPTSNP2";

/// Version-1 magic, still accepted on read: a v1 payload decodes through
/// the same codec (archives use the ladder-less tag), and the next
/// checkpoint rewrites the store as v2 — migration needs no extra step.
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"NEPTSNP1";

/// Atomically write `payload` as a snapshot at `path` on the standard
/// filesystem.
pub fn write_snapshot(path: impl AsRef<Path>, payload: &[u8]) -> Result<()> {
    write_snapshot_with(&StdVfs, path, payload)
}

/// Atomically write `payload` as a snapshot at `path` through `vfs`.
///
/// Ordering: the temporary file's contents are fsync'd before the rename,
/// and the directory is fsync'd after it. Every error — including the
/// directory fsync's — propagates: a swallowed dir-fsync error would let a
/// checkpoint truncate the WAL on the strength of a rename that may not
/// survive a crash.
pub fn write_snapshot_with(vfs: &dyn Vfs, path: impl AsRef<Path>, payload: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut f = vfs.create(&tmp)?;
        let mut header = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 12);
        header.extend_from_slice(SNAPSHOT_MAGIC);
        header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        header.extend_from_slice(&crc32(payload).to_le_bytes());
        f.append(&header)?;
        f.append(payload)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    // Durability of the rename itself requires syncing the directory.
    vfs.sync_dir(&parent_dir(path))?;
    Ok(())
}

/// Read and verify a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    read_snapshot_with(&StdVfs, path)
}

/// Read and verify a snapshot through `vfs`.
pub fn read_snapshot_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let bytes = vfs.read(path.as_ref())?;
    let header_len = SNAPSHOT_MAGIC.len() + 8 + 4;
    let known_magic = bytes.starts_with(SNAPSHOT_MAGIC) || bytes.starts_with(SNAPSHOT_MAGIC_V1);
    if bytes.len() < header_len || !known_magic {
        return Err(StorageError::BadFileHeader {
            context: "snapshot",
        });
    }
    let len = read_u64_at(&bytes, SNAPSHOT_MAGIC.len()).ok_or(StorageError::UnexpectedEof {
        context: "snapshot length header",
    })? as usize;
    let expected =
        read_u32_at(&bytes, SNAPSHOT_MAGIC.len() + 8).ok_or(StorageError::UnexpectedEof {
            context: "snapshot checksum header",
        })?;
    let payload = bytes
        .get(header_len..header_len + len)
        .ok_or(StorageError::UnexpectedEof {
            context: "snapshot payload",
        })?;
    let actual = crc32(payload);
    if actual != expected {
        return Err(StorageError::ChecksumMismatch { expected, actual });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("rt");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"hello graph").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), b"hello graph".to_vec());
    }

    #[test]
    fn empty_payload() {
        let dir = tmpdir("empty");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_replaces_cleanly() {
        let dir = tmpdir("overwrite");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"first").unwrap();
        write_snapshot(&path, b"second, longer payload").unwrap();
        assert_eq!(
            read_snapshot(&path).unwrap(),
            b"second, longer payload".to_vec()
        );
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"important bytes").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmpdir("trunc");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"important bytes").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot(&path).is_err());
    }

    #[test]
    fn truncated_header_is_an_error_not_a_panic() {
        // Regression: the length and checksum fields used to be sliced with
        // `expect`-backed indexing; a file that ends inside the fixed header
        // must fail with a decode error, not panic.
        let dir = tmpdir("trunc-header");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"payload").unwrap();
        let bytes = fs::read(&path).unwrap();
        // Cut inside the u64 length field, then inside the u32 crc field.
        for cut in [SNAPSHOT_MAGIC.len() + 4, SNAPSHOT_MAGIC.len() + 10] {
            fs::write(&path, &bytes[..cut]).unwrap();
            assert!(matches!(
                read_snapshot(&path),
                Err(StorageError::BadFileHeader { .. })
            ));
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let dir = tmpdir("magic");
        let path = dir.join("graph.snap");
        fs::write(&path, b"WRONGMAGxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::BadFileHeader { .. })
        ));
    }

    #[test]
    fn v1_magic_still_reads_unknown_versions_do_not() {
        let dir = tmpdir("v1compat");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"pre-index payload").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[..SNAPSHOT_MAGIC_V1.len()].copy_from_slice(SNAPSHOT_MAGIC_V1);
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), b"pre-index payload".to_vec());
        bytes[..8].copy_from_slice(b"NEPTSNP3");
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::BadFileHeader { .. })
        ));
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let dir = tmpdir("tmpfile");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"payload").unwrap();
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn dir_fsync_failure_propagates() {
        use crate::fault::{FaultKind, FaultVfs};
        let dir = tmpdir("dirsync");
        let path = dir.join("graph.snap");
        let vfs = FaultVfs::new();
        // First sync in write_snapshot is the tmp file; the second sync
        // class op is the directory fsync after the rename.
        vfs.arm(FaultKind::FailSync, 1);
        assert!(
            write_snapshot_with(&vfs, &path, b"payload").is_err(),
            "a failed directory fsync must not be swallowed"
        );
        // Without the dir fsync the rename is not durable.
        vfs.power_off();
        vfs.materialize_durable(&dir).unwrap();
        assert!(!path.exists());
    }

    #[test]
    fn faulted_writes_leave_old_snapshot_durable() {
        use crate::fault::{FaultKind, FaultVfs};
        for kind in FaultKind::ALL {
            let mut at = 0;
            loop {
                let dir = tmpdir(&format!("old-{kind}"));
                let path = dir.join("graph.snap");
                let vfs = FaultVfs::new();
                write_snapshot_with(&vfs, &path, b"old").unwrap();
                vfs.arm(kind, at);
                let r = write_snapshot_with(&vfs, &path, b"new");
                if vfs.injected() == 0 {
                    // The plan outlasted the write's fault points: done.
                    r.unwrap();
                    break;
                }
                if !vfs.is_powered_off() {
                    assert!(r.is_err(), "{kind} at {at} must surface");
                }
                vfs.power_off();
                vfs.materialize_durable(&dir).unwrap();
                let payload = read_snapshot(&path).expect("snapshot must survive any fault");
                assert!(
                    payload == b"old" || payload == b"new",
                    "{kind} at {at}: snapshot must be exactly one of the two versions"
                );
                at += 1;
            }
        }
    }
}
