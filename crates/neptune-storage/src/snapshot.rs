//! Atomic, checksummed snapshot files.
//!
//! Graph state that is folded out of the WAL at checkpoint time is written
//! as a snapshot: a header, a CRC-32, and the payload, written to a
//! temporary file and atomically renamed into place so a crash during
//! checkpointing never leaves a half-written snapshot where a good one was.

use std::fs;
use std::io::Write;
use std::path::Path;

use crate::checksum::crc32;
use crate::error::{Result, StorageError};

/// Magic bytes identifying a Neptune snapshot file, version 1.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"NEPTSNP1";

/// Atomically write `payload` as a snapshot at `path`.
pub fn write_snapshot(path: impl AsRef<Path>, payload: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(SNAPSHOT_MAGIC)?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.write_all(payload)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Durability of the rename itself requires syncing the directory.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read and verify a snapshot written by [`write_snapshot`].
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Vec<u8>> {
    let bytes = fs::read(path.as_ref())?;
    let header_len = SNAPSHOT_MAGIC.len() + 8 + 4;
    if bytes.len() < header_len || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StorageError::BadFileHeader {
            context: "snapshot",
        });
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let expected = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let payload = bytes
        .get(header_len..header_len + len)
        .ok_or(StorageError::UnexpectedEof {
            context: "snapshot payload",
        })?;
    let actual = crc32(payload);
    if actual != expected {
        return Err(StorageError::ChecksumMismatch { expected, actual });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("rt");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"hello graph").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), b"hello graph".to_vec());
    }

    #[test]
    fn empty_payload() {
        let dir = tmpdir("empty");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn overwrite_replaces_cleanly() {
        let dir = tmpdir("overwrite");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"first").unwrap();
        write_snapshot(&path, b"second, longer payload").unwrap();
        assert_eq!(
            read_snapshot(&path).unwrap(),
            b"second, longer payload".to_vec()
        );
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"important bytes").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmpdir("trunc");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"important bytes").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_snapshot(&path).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let dir = tmpdir("magic");
        let path = dir.join("graph.snap");
        fs::write(&path, b"WRONGMAGxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(StorageError::BadFileHeader { .. })
        ));
    }

    #[test]
    fn no_tmp_file_left_behind() {
        let dir = tmpdir("tmpfile");
        let path = dir.join("graph.snap");
        write_snapshot(&path, b"payload").unwrap();
        assert!(!path.with_extension("tmp").exists());
    }
}
