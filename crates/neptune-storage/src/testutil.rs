//! Deterministic pseudo-randomness for tests and benchmarks.
//!
//! The workspace builds with no external crates, so randomized tests and
//! workload generators use this small xorshift64* generator instead of
//! `rand`. It is seeded explicitly, making every "random" run reproducible
//! from its seed.

/// A xorshift64* pseudo-random generator (Vigna, 2016).
///
/// Not cryptographic; statistically good enough for fuzz-style tests and
/// benchmark workloads.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Create a generator from a seed (zero is remapped: xorshift has an
    /// all-zero fixed point).
    pub fn new(seed: u64) -> XorShift {
        XorShift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform `usize` index in `[0, len)`. Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// A boolean with probability numerator/denominator.
    pub fn chance(&mut self, numerator: u64, denominator: u64) -> bool {
        self.below(denominator) < numerator
    }

    /// A vector of `len` uniform bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let chunk = self.next_u64().to_le_bytes();
            let take = chunk.len().min(len - out.len());
            out.extend_from_slice(&chunk[..take]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = XorShift::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift::new(42);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn bytes_has_requested_length() {
        let mut r = XorShift::new(3);
        assert_eq!(r.bytes(0).len(), 0);
        assert_eq!(r.bytes(13).len(), 13);
    }
}
