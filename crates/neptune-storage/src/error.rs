//! Error types for the storage substrate.

use std::fmt;
use std::io;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A stored record failed its CRC-32 integrity check.
    ChecksumMismatch {
        /// Checksum recorded alongside the data.
        expected: u32,
        /// Checksum recomputed from the data.
        actual: u32,
    },
    /// A byte stream ended before a complete value could be decoded.
    UnexpectedEof {
        /// What was being decoded when the stream ran out.
        context: &'static str,
    },
    /// A decoded tag/discriminant did not correspond to any known variant.
    InvalidTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A varint was longer than the maximum encodable width.
    VarintOverflow,
    /// Decoded bytes were not valid UTF-8 where a string was expected.
    InvalidUtf8,
    /// A delta referred to offsets outside its base text.
    DeltaOutOfRange {
        /// Offset the delta asked for.
        offset: u64,
        /// Length of the base it was applied to.
        base_len: u64,
    },
    /// A requested version time does not exist in an archive.
    NoSuchVersion {
        /// The requested time.
        time: u64,
    },
    /// An archive or store was asked for an object it does not contain.
    NotFound {
        /// Identifier of the missing object.
        id: u64,
    },
    /// The write-ahead log contained a structurally invalid record.
    CorruptLog {
        /// Byte offset of the corrupt record.
        offset: u64,
        /// Human-readable description of the damage.
        reason: &'static str,
    },
    /// A file's magic number or format version was not recognized.
    BadFileHeader {
        /// Which file kind was being opened.
        context: &'static str,
    },
    /// The write-ahead log hit an I/O failure mid-append or mid-sync and
    /// refuses further writes until reopened.
    ///
    /// After a failed append the file may hold a torn frame, and after a
    /// failed fsync the kernel may have *dropped* the dirty pages
    /// (the fsyncgate lesson): retrying as if nothing happened could
    /// persist a commit the caller was told failed, or append intact
    /// frames after a torn one — turning a recoverable torn tail into
    /// hard mid-log corruption. Reopening re-scans and truncates.
    LogPoisoned,
    /// A frame header declared a payload larger than the protocol allows.
    ///
    /// Raised *before* any payload buffer is allocated, so a corrupt or
    /// hostile length field can never drive an OOM-sized allocation.
    FrameTooLarge {
        /// Length the header claimed.
        len: u64,
        /// Maximum the protocol accepts.
        max: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            StorageError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            StorageError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            StorageError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            StorageError::InvalidUtf8 => write!(f, "invalid utf-8 in decoded string"),
            StorageError::DeltaOutOfRange { offset, base_len } => {
                write!(
                    f,
                    "delta copy at offset {offset} exceeds base length {base_len}"
                )
            }
            StorageError::NoSuchVersion { time } => write!(f, "no version at time {time}"),
            StorageError::NotFound { id } => write!(f, "object {id} not found"),
            StorageError::CorruptLog { offset, reason } => {
                write!(f, "corrupt log record at offset {offset}: {reason}")
            }
            StorageError::BadFileHeader { context } => {
                write!(f, "unrecognized file header for {context}")
            }
            StorageError::LogPoisoned => {
                write!(
                    f,
                    "write-ahead log poisoned by an earlier I/O failure; reopen to recover"
                )
            }
            StorageError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenient result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = StorageError::UnexpectedEof {
            context: "node header",
        };
        assert!(e.to_string().contains("node header"));
        let e = StorageError::NoSuchVersion { time: 42 };
        assert!(e.to_string().contains("42"));
        let e = StorageError::CorruptLog {
            offset: 10,
            reason: "short read",
        };
        assert!(e.to_string().contains("short read"));
        let e = StorageError::FrameTooLarge {
            len: 1 << 30,
            max: 1 << 26,
        };
        assert!(e.to_string().contains("exceeds maximum"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }
}
