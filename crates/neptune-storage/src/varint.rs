//! LEB128-style variable-length integer encoding.
//!
//! The storage layer's binary formats (codec, deltas, WAL records) encode
//! most integers as varints: the HAM's identifiers and offsets are usually
//! small, so this keeps on-disk records compact without a fixed-width tax.

use crate::error::{Result, StorageError};

/// Maximum number of bytes a 64-bit varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Append the unsigned LEB128 encoding of `value` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zig-zag encoded signed integer to `out`.
pub fn write_i64(out: &mut Vec<u8>, value: i64) {
    write_u64(out, zigzag_encode(value));
}

/// Decode an unsigned LEB128 varint from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
pub fn read_u64(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(StorageError::VarintOverflow);
        }
        let low = (byte & 0x7F) as u64;
        // The tenth byte may only contribute the final bit of a u64.
        if shift == 63 && low > 1 {
            return Err(StorageError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(StorageError::UnexpectedEof { context: "varint" })
}

/// Decode a zig-zag encoded signed integer from the front of `input`.
pub fn read_i64(input: &[u8]) -> Result<(i64, usize)> {
    let (raw, used) = read_u64(input)?;
    Ok((zigzag_decode(raw), used))
}

/// Map signed integers onto unsigned so small magnitudes stay short.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes [`write_u64`] would emit for `value`.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), encoded_len(v));
        let (decoded, used) = read_u64(&buf).unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn unsigned_roundtrips() {
        for v in [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip(v);
        }
    }

    #[test]
    fn signed_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            let (decoded, used) = read_i64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_short() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in -1000..1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(read_u64(&buf[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn overlong_encoding_is_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let bad = [0x80u8; 11];
        assert!(matches!(read_u64(&bad), Err(StorageError::VarintOverflow)));
        // Ten bytes whose final byte overflows the top bit.
        let mut high = vec![0xFFu8; 9];
        high.push(0x02);
        assert!(matches!(read_u64(&high), Err(StorageError::VarintOverflow)));
    }

    #[test]
    fn reads_only_consume_one_varint() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        write_u64(&mut buf, 7);
        let (a, used) = read_u64(&buf).unwrap();
        assert_eq!(a, 300);
        let (b, used2) = read_u64(&buf[used..]).unwrap();
        assert_eq!(b, 7);
        assert_eq!(used + used2, buf.len());
    }
}
