//! Write-ahead log.
//!
//! The paper requires the HAM to be *"transaction-oriented"* and to provide
//! *"complete recovery from any aborted transaction"* (§2.2) and
//! *"transaction-based crash recovery"* (§3). This WAL provides the
//! durability half: each transaction's operations are appended as records
//! bracketed by `Begin`/`Commit` (or `Abort`), with the commit record
//! fsync'd. After a crash, [`Wal::recover`] replays only the operations of
//! committed transactions; a torn tail (partial final record) is detected by
//! length/CRC checks and discarded.
//!
//! Damage classification matters here: a record that fails its length or CRC
//! check **at end-of-file** is the expected signature of a crash mid-write
//! and is silently truncated, but the same failure with intact records
//! *after* it cannot be a torn write — it is mid-log corruption, and
//! truncating there would silently discard committed transactions. Mid-log
//! damage is therefore a hard [`StorageError::CorruptLog`] error, which
//! `neptune-check` surfaces as an unopenable store.
//!
//! The log is *fail-stop on write errors*: once any append, truncate, or
//! fsync fails, the `Wal` poisons itself and every further write returns
//! [`StorageError::LogPoisoned`] until the log is reopened. A failed append
//! may have left a torn frame, and a failed fsync may have *dropped* dirty
//! pages rather than merely delayed them — appending more intact frames
//! after either would turn a recoverable torn tail into unrecoverable
//! mid-log corruption, and re-syncing could make durable a commit whose
//! failure the caller already observed and rolled back.
//!
//! All file I/O goes through a [`Vfs`](crate::vfs::Vfs) so crash-consistency
//! tests can inject failures at every step ([`crate::fault::FaultVfs`]).
//!
//! Record layout on disk, after an 8-byte file header:
//!
//! ```text
//! [ payload_len: u32 LE ][ crc32(payload): u32 LE ][ payload ]
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::checksum::crc32;
use crate::codec::{read_u32_at, Decode, Encode, Reader, Writer};
use crate::error::{Result, StorageError};
use crate::vfs::{StdVfs, Vfs, VfsFile};

/// Magic bytes identifying a Neptune WAL file, version 1.
pub const WAL_MAGIC: &[u8; 8] = b"NEPTWAL1";

/// Kinds of log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A transaction started.
    Begin,
    /// One operation inside a transaction; the payload is opaque to the WAL.
    Op,
    /// The transaction's effects are durable once this record is on disk.
    Commit,
    /// The transaction was rolled back; its ops must be ignored on replay.
    Abort,
    /// Everything before this point has been folded into a snapshot.
    Checkpoint,
}

impl RecordKind {
    fn to_tag(self) -> u8 {
        match self {
            RecordKind::Begin => 0,
            RecordKind::Op => 1,
            RecordKind::Commit => 2,
            RecordKind::Abort => 3,
            RecordKind::Checkpoint => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => RecordKind::Begin,
            1 => RecordKind::Op,
            2 => RecordKind::Commit,
            3 => RecordKind::Abort,
            4 => RecordKind::Checkpoint,
            t => {
                return Err(StorageError::InvalidTag {
                    context: "RecordKind",
                    tag: t as u64,
                })
            }
        })
    }
}

/// One write-ahead log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotonically increasing log sequence number.
    pub lsn: u64,
    /// Transaction this record belongs to (0 for checkpoints).
    pub txn_id: u64,
    /// What the record represents.
    pub kind: RecordKind,
    /// Opaque operation payload (empty except for `Op` records).
    pub payload: Vec<u8>,
}

impl Encode for WalRecord {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.lsn);
        w.put_u64(self.txn_id);
        w.put_u8(self.kind.to_tag());
        w.put_bytes(&self.payload);
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(WalRecord {
            lsn: r.get_u64()?,
            txn_id: r.get_u64()?,
            kind: RecordKind::from_tag(r.get_u8()?)?,
            payload: r.get_bytes()?.to_vec(),
        })
    }
}

/// One committed transaction as recovered from the log: its id, the global
/// commit sequence stamped into its commit record (0 for logs written
/// before commit records carried a sequence), and its `Op` payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Transaction id.
    pub txn_id: u64,
    /// Global commit sequence stamped by the HAM (0 when absent).
    pub seq: u64,
    /// The transaction's `Op` payloads, in append order.
    pub ops: Vec<Vec<u8>>,
}

/// An append-only, checksummed write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    next_lsn: u64,
    poisoned: bool,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path` on the standard
    /// filesystem.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        Self::open_with(&StdVfs, path)
    }

    /// Open (creating if absent) the WAL at `path` through `vfs`.
    ///
    /// Any torn tail from a previous crash is truncated away so new records
    /// append after the last intact one. Corruption *before* the last record
    /// is not a torn tail and fails the open with
    /// [`StorageError::CorruptLog`] instead of silently dropping data.
    pub fn open_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let mut file = vfs.open_append(&path)?;
        let bytes = file.read_all()?;
        if bytes.is_empty() {
            file.append(WAL_MAGIC)?;
            file.sync()?;
            return Ok(Wal {
                file,
                path,
                next_lsn: 1,
                poisoned: false,
            });
        }

        let (records, valid_end) = Self::scan(&bytes)?;
        if valid_end < bytes.len() as u64 {
            // Torn tail: discard it.
            file.set_len(valid_end)?;
            if neptune_obs::enabled() {
                neptune_obs::registry()
                    .counter("neptune_storage_wal_torn_tail_truncations_total")
                    .inc();
            }
        }
        let next_lsn = records.last().map(|r| r.lsn + 1).unwrap_or(1);
        Ok(Wal {
            file,
            path,
            next_lsn,
            poisoned: false,
        })
    }

    /// Read all intact records, returning them and the byte offset of the
    /// end of the last intact record.
    ///
    /// A damaged frame at the very end of the file is a torn tail: the scan
    /// stops there and the caller may truncate. A damaged frame with bytes
    /// after it is mid-log corruption and a hard error — the frame header's
    /// own length field walks the scan from record to record, so nothing
    /// past the damage can be trusted, and truncating would drop committed
    /// transactions without telling anyone.
    fn scan(bytes: &[u8]) -> Result<(Vec<WalRecord>, u64)> {
        if !bytes.starts_with(WAL_MAGIC) {
            return Err(StorageError::BadFileHeader {
                context: "write-ahead log",
            });
        }
        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        let mut last_lsn = 0u64;
        loop {
            if pos == bytes.len() {
                break; // clean end
            }
            // A torn length/crc header is only possible at end-of-file;
            // the checked reads stop the scan there instead of panicking
            // on truncated input (DESIGN.md §12).
            let (Some(payload_len), Some(expected_crc)) =
                (read_u32_at(bytes, pos), read_u32_at(bytes, pos + 4))
            else {
                break;
            };
            let payload_len = payload_len as usize;
            let body_start = pos + 8;
            let body_end = match body_start.checked_add(payload_len) {
                Some(e) if e <= bytes.len() => e,
                _ => break, // payload runs past end-of-file: torn final write
            };
            let Some(payload) = bytes.get(body_start..body_end) else {
                break; // unreachable given the bound check; stays panic-free
            };
            if crc32(payload) != expected_crc {
                if body_end == bytes.len() {
                    break; // damaged final record: torn tail, safe to truncate
                }
                return Err(StorageError::CorruptLog {
                    offset: pos as u64,
                    reason: "frame checksum mismatch mid-log",
                });
            }
            let record = WalRecord::from_bytes(payload).map_err(|_| StorageError::CorruptLog {
                offset: pos as u64,
                reason: "undecodable record body",
            })?;
            if record.lsn <= last_lsn {
                return Err(StorageError::CorruptLog {
                    offset: pos as u64,
                    reason: "non-monotonic LSN",
                });
            }
            last_lsn = record.lsn;
            records.push(record);
            pos = body_end;
        }
        Ok((records, pos as u64))
    }

    /// Mark the log unusable after a failed write or sync.
    fn poison(&mut self) {
        if !self.poisoned {
            self.poisoned = true;
            if neptune_obs::enabled() {
                neptune_obs::registry()
                    .counter("neptune_storage_wal_poisoned_total")
                    .inc();
            }
        }
    }

    /// Refuse writes after a poisoning failure.
    fn guard(&self) -> Result<()> {
        if self.poisoned {
            return Err(StorageError::LogPoisoned);
        }
        Ok(())
    }

    /// Whether an earlier write/sync failure has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Append a record, assigning it the next LSN. Not yet durable — call
    /// [`Wal::sync`] (done automatically by [`Wal::append_commit`]).
    pub fn append(&mut self, txn_id: u64, kind: RecordKind, payload: Vec<u8>) -> Result<u64> {
        let _span = neptune_obs::span!("storage.wal_append");
        self.guard()?;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let record = WalRecord {
            lsn,
            txn_id,
            kind,
            payload,
        };
        let body = record.to_bytes();
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if let Err(e) = self.file.append(&frame) {
            // The frame may be torn on disk; no further appends until a
            // reopen rescans and truncates.
            self.poison();
            return Err(e.into());
        }
        Ok(lsn)
    }

    /// Append a commit record and force everything to disk.
    pub fn append_commit(&mut self, txn_id: u64) -> Result<u64> {
        self.append_commit_with(txn_id, Vec::new())
    }

    /// Append a commit record carrying `payload` and force everything to
    /// disk. The HAM stamps the global commit sequence here (8 bytes LE)
    /// so recovery and cross-shard view assembly can order commits across
    /// independent per-shard logs; an empty payload (every pre-shard log)
    /// decodes as sequence 0.
    pub fn append_commit_with(&mut self, txn_id: u64, payload: Vec<u8>) -> Result<u64> {
        let lsn = self.append(txn_id, RecordKind::Commit, payload)?;
        self.sync()?;
        Ok(lsn)
    }

    /// Force buffered records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        let _span = neptune_obs::span!("storage.wal_fsync");
        self.guard()?;
        if let Err(e) = self.file.sync() {
            // After a failed fsync the kernel may have dropped the dirty
            // pages; a later "successful" sync would silently persist
            // records whose durability we already reported as failed.
            self.poison();
            return Err(e.into());
        }
        Ok(())
    }

    /// Read every intact record currently in the log.
    pub fn records(&mut self) -> Result<Vec<WalRecord>> {
        let bytes = self.file.read_all()?;
        let (records, _) = Self::scan(&bytes)?;
        Ok(records)
    }

    /// Replay the log: returns, in commit order, each committed transaction's
    /// id and its `Op` payloads. Records after the last `Checkpoint` only.
    pub fn recover(&mut self) -> Result<Vec<(u64, Vec<Vec<u8>>)>> {
        self.recover_after(0)
    }

    /// [`Wal::recover_after`], additionally surfacing each committed
    /// transaction's global commit sequence (the first 8 LE bytes of its
    /// commit record's payload; 0 for pre-shard logs with empty commit
    /// payloads).
    pub fn recover_committed_after(&mut self, boundary: u64) -> Result<Vec<CommittedTxn>> {
        let _span = neptune_obs::span!("storage.wal_recover");
        let records = self.records()?;
        // Start from the last checkpoint, if any.
        let start = records
            .iter()
            .rposition(|r| r.kind == RecordKind::Checkpoint)
            .map(|i| i + 1)
            .unwrap_or(0);
        let mut pending: HashMap<u64, Vec<Vec<u8>>> = HashMap::new();
        let mut committed: Vec<CommittedTxn> = Vec::new();
        for r in records[start..].iter().filter(|r| r.lsn > boundary) {
            match r.kind {
                RecordKind::Begin => {
                    pending.insert(r.txn_id, Vec::new());
                }
                RecordKind::Op => {
                    pending.entry(r.txn_id).or_default().push(r.payload.clone());
                }
                RecordKind::Commit => {
                    if let Some(ops) = pending.remove(&r.txn_id) {
                        let seq = match r.payload.get(..8) {
                            Some(bytes) => {
                                u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
                            }
                            None => 0,
                        };
                        committed.push(CommittedTxn {
                            txn_id: r.txn_id,
                            seq,
                            ops,
                        });
                    }
                }
                RecordKind::Abort => {
                    pending.remove(&r.txn_id);
                }
                RecordKind::Checkpoint => {}
            }
        }
        if neptune_obs::enabled() {
            neptune_obs::registry()
                .counter("neptune_storage_wal_recovered_txns_total")
                .add(committed.len() as u64);
        }
        Ok(committed)
    }

    /// Replay the log, ignoring every record with `lsn <= boundary` — they
    /// are already folded into the snapshot the boundary was read from.
    ///
    /// The boundary guards the crash window between a snapshot rename
    /// becoming durable and the log truncation becoming durable: replaying
    /// the full log onto the *new* snapshot would apply every transaction a
    /// second time. Storing the boundary LSN inside the snapshot makes the
    /// skip atomic with the state it protects.
    pub fn recover_after(&mut self, boundary: u64) -> Result<Vec<(u64, Vec<Vec<u8>>)>> {
        Ok(self
            .recover_committed_after(boundary)?
            .into_iter()
            .map(|t| (t.txn_id, t.ops))
            .collect())
    }

    /// Write a checkpoint record and truncate the log so replay starts fresh.
    ///
    /// Callers must have made the checkpointed state durable first: this is
    /// the point of no return for a checkpoint, and any failure inside it
    /// poisons the log. The truncation is fsync'd *before* the checkpoint
    /// record is appended — a crash between the two must never leave a
    /// checkpoint record claiming a truncation the file doesn't durably
    /// have, with stale pre-checkpoint frames resurfacing after it.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.guard()?;
        if let Err(e) = self.file.set_len(WAL_MAGIC.len() as u64) {
            self.poison();
            return Err(e.into());
        }
        if let Err(e) = self.file.sync() {
            self.poison();
            return Err(e.into());
        }
        self.append(0, RecordKind::Checkpoint, Vec::new())?;
        self.sync()
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// LSN that the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::{Read, Seek, SeekFrom, Write};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("neptune-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_recover_committed() {
        let dir = tmpdir("basic");
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append(1, RecordKind::Op, b"op-a".to_vec()).unwrap();
            wal.append(1, RecordKind::Op, b"op-b".to_vec()).unwrap();
            wal.append_commit(1).unwrap();
            wal.append(2, RecordKind::Begin, vec![]).unwrap();
            wal.append(2, RecordKind::Op, b"doomed".to_vec()).unwrap();
            wal.append(2, RecordKind::Abort, vec![]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 1);
        assert_eq!(committed[0].1, vec![b"op-a".to_vec(), b"op-b".to_vec()]);
    }

    #[test]
    fn uncommitted_tail_is_ignored_on_recovery() {
        let dir = tmpdir("uncommitted");
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append(1, RecordKind::Op, b"x".to_vec()).unwrap();
            wal.append_commit(1).unwrap();
            wal.append(2, RecordKind::Begin, vec![]).unwrap();
            wal.append(2, RecordKind::Op, b"in flight at crash".to_vec())
                .unwrap();
            wal.sync().unwrap();
            // No commit: simulates crashing mid-transaction.
        }
        let mut wal = Wal::open(&path).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 1);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append(1, RecordKind::Op, b"keep me".to_vec()).unwrap();
            wal.append_commit(1).unwrap();
        }
        // Simulate a torn write: append garbage that is not a whole record.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xDE, 0xAD, 0xBE]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        // And appending after recovery still works.
        wal.append(2, RecordKind::Begin, vec![]).unwrap();
        wal.append_commit(2).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 2);
    }

    #[test]
    fn truncated_frame_header_is_a_torn_tail_not_a_panic() {
        // Regression: the scan used to slice the 8-byte length/crc header
        // with `expect`-backed indexing; a file ending partway through a
        // frame header must recover cleanly, not panic.
        let dir = tmpdir("torn-header");
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append(1, RecordKind::Op, b"keep me".to_vec()).unwrap();
            wal.append_commit(1).unwrap();
        }
        // Half a frame header: 4 of the 8 length/crc bytes.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x10, 0x00, 0x00, 0x00]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].1[0], b"keep me".to_vec());
    }

    fn flip_byte(path: &Path, offset: u64) {
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap();
        f.seek(SeekFrom::Start(offset)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(offset)).unwrap();
        f.write_all(&[b[0] ^ 0xFF]).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let dir = tmpdir("corrupt-mid");
        let path = dir.join("wal");
        let flip_offset;
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append_commit(1).unwrap();
            flip_offset = std::fs::metadata(&path).unwrap().len() - 1;
            wal.append(2, RecordKind::Begin, vec![]).unwrap();
            wal.append_commit(2).unwrap();
        }
        // Flip a payload byte inside txn 1's commit record: intact records
        // follow, so this cannot be a torn write and must not be truncated.
        flip_byte(&path, flip_offset);
        match Wal::open(&path) {
            Err(StorageError::CorruptLog { reason, .. }) => {
                assert!(reason.contains("mid-log"), "{reason}");
            }
            other => panic!("expected CorruptLog, got {other:?}"),
        }
        // The damaged file was left untouched for forensics.
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len > flip_offset);
    }

    #[test]
    fn corrupt_final_record_is_a_torn_tail() {
        let dir = tmpdir("corrupt-tail");
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            wal.append(1, RecordKind::Op, b"keep".to_vec()).unwrap();
            wal.append_commit(1).unwrap();
            wal.append(2, RecordKind::Begin, vec![]).unwrap();
            wal.append(2, RecordKind::Op, b"torn".to_vec()).unwrap();
            wal.sync().unwrap();
        }
        // Damage the *last* record's payload: indistinguishable from a crash
        // mid-write, so recovery truncates it and keeps everything before.
        let len = std::fs::metadata(&path).unwrap().len();
        flip_byte(&path, len - 1);
        let mut wal = Wal::open(&path).unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < len);
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 1);
        // The log accepts fresh appends after the truncation.
        wal.append(3, RecordKind::Begin, vec![]).unwrap();
        wal.append_commit(3).unwrap();
        assert_eq!(wal.recover().unwrap().len(), 2);
    }

    #[test]
    fn checkpoint_resets_replay() {
        let dir = tmpdir("checkpoint");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        wal.append(1, RecordKind::Op, b"before".to_vec()).unwrap();
        wal.append_commit(1).unwrap();
        wal.checkpoint().unwrap();
        wal.append(2, RecordKind::Begin, vec![]).unwrap();
        wal.append(2, RecordKind::Op, b"after".to_vec()).unwrap();
        wal.append_commit(2).unwrap();
        let committed = wal.recover().unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 2);
    }

    #[test]
    fn lsns_increase_across_reopen() {
        let dir = tmpdir("lsn");
        let path = dir.join("wal");
        let last;
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(1, RecordKind::Begin, vec![]).unwrap();
            last = wal.append_commit(1).unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), last + 1);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = tmpdir("magic");
        let path = dir.join("wal");
        std::fs::write(&path, b"NOTAWAL!extra").unwrap();
        assert!(matches!(
            Wal::open(&path),
            Err(StorageError::BadFileHeader { .. })
        ));
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let dir = tmpdir("empty");
        let mut wal = Wal::open(dir.join("wal")).unwrap();
        assert!(wal.recover().unwrap().is_empty());
        assert_eq!(wal.next_lsn(), 1);
    }

    #[test]
    fn commit_sequence_roundtrips_and_legacy_commits_decode_as_zero() {
        let dir = tmpdir("commit-seq");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path).unwrap();
        // Legacy commit: empty payload.
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        wal.append(1, RecordKind::Op, b"old".to_vec()).unwrap();
        wal.append_commit(1).unwrap();
        // Stamped commit.
        wal.append(2, RecordKind::Begin, vec![]).unwrap();
        wal.append(2, RecordKind::Op, b"new".to_vec()).unwrap();
        wal.append_commit_with(2, 42u64.to_le_bytes().to_vec())
            .unwrap();
        let committed = wal.recover_committed_after(0).unwrap();
        assert_eq!(committed.len(), 2);
        assert_eq!((committed[0].txn_id, committed[0].seq), (1, 0));
        assert_eq!((committed[1].txn_id, committed[1].seq), (2, 42));
        assert_eq!(committed[1].ops, vec![b"new".to_vec()]);
    }

    #[test]
    fn recover_after_skips_checkpointed_lsns() {
        let dir = tmpdir("boundary");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        wal.append(1, RecordKind::Op, b"folded".to_vec()).unwrap();
        let boundary = wal.append_commit(1).unwrap();
        wal.append(2, RecordKind::Begin, vec![]).unwrap();
        wal.append(2, RecordKind::Op, b"fresh".to_vec()).unwrap();
        wal.append_commit(2).unwrap();
        // As if a snapshot holding everything up to `boundary` became
        // durable but the log truncation never did.
        let committed = wal.recover_after(boundary).unwrap();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].0, 2);
        assert!(wal.recover_after(u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn failed_append_poisons_the_log() {
        use crate::fault::{FaultKind, FaultVfs};
        let dir = tmpdir("poison-append");
        let vfs = FaultVfs::new();
        let mut wal = Wal::open_with(&vfs, dir.join("wal")).unwrap();
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        vfs.arm(FaultKind::ShortWrite, 0);
        assert!(wal.append(1, RecordKind::Op, b"torn".to_vec()).is_err());
        assert!(wal.is_poisoned());
        // Everything write-shaped now refuses with LogPoisoned...
        assert!(matches!(
            wal.append(1, RecordKind::Op, b"more".to_vec()),
            Err(StorageError::LogPoisoned)
        ));
        assert!(matches!(wal.sync(), Err(StorageError::LogPoisoned)));
        assert!(matches!(wal.checkpoint(), Err(StorageError::LogPoisoned)));
        drop(wal);
        // ...and a reopen truncates the torn frame and works again.
        let mut wal = Wal::open(dir.join("wal")).unwrap();
        assert!(!wal.is_poisoned());
        wal.append_commit(1).unwrap();
    }

    #[test]
    fn failed_sync_poisons_the_log() {
        use crate::fault::{FaultKind, FaultVfs};
        let dir = tmpdir("poison-sync");
        let vfs = FaultVfs::new();
        let mut wal = Wal::open_with(&vfs, dir.join("wal")).unwrap();
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        vfs.arm(FaultKind::FailSync, 0);
        assert!(wal.sync().is_err());
        assert!(wal.is_poisoned());
        assert!(matches!(wal.sync(), Err(StorageError::LogPoisoned)));
    }

    #[test]
    fn checkpoint_syncs_truncation_before_checkpoint_record() {
        use crate::fault::FaultVfs;
        let dir = tmpdir("ckpt-order");
        let vfs = FaultVfs::new();
        let mut wal = Wal::open_with(&vfs, dir.join("wal")).unwrap();
        wal.append(1, RecordKind::Begin, vec![]).unwrap();
        wal.append_commit(1).unwrap();
        vfs.clear_op_log();
        wal.checkpoint().unwrap();
        let ops: Vec<String> = vfs
            .op_log()
            .iter()
            .map(|s| s.split(' ').next().unwrap().to_string())
            .collect();
        assert_eq!(
            ops,
            vec!["set_len", "sync", "append", "sync"],
            "truncation must be durable before the checkpoint record exists"
        );
    }
}
