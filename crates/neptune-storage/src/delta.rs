//! Copy/add deltas between byte buffers.
//!
//! Paper §3: *"we wanted effective storage of many versions of such data
//! without copying each individual item; for nodes this is provided by
//! backward deltas similar to RCS"*. A [`Delta`] is a compact program that
//! rebuilds a target buffer from a base buffer: a sequence of `Copy`
//! (byte range of the base) and `Add` (literal bytes) instructions. The
//! archive stores the *current* version in full and one backward delta per
//! older version.

use crate::codec::{Decode, Encode, Reader, Writer};
use crate::diff::{diff_lines, split_lines, HunkKind};
use crate::error::{Result, StorageError};

/// One delta instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Copy `len` bytes starting at `offset` in the base buffer.
    Copy {
        /// Byte offset into the base.
        offset: u64,
        /// Number of bytes to copy.
        len: u64,
    },
    /// Append these literal bytes.
    Add(Vec<u8>),
}

/// A program that reconstructs a target buffer from a base buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Delta {
    ops: Vec<DeltaOp>,
    target_len: u64,
}

impl Delta {
    /// Compute a delta such that `delta.apply(base) == target`.
    ///
    /// Uses the line-level Myers diff to find shared regions; byte-identical
    /// runs of lines become `Copy` instructions, novel bytes become `Add`s.
    pub fn compute(base: &[u8], target: &[u8]) -> Delta {
        let hunks = diff_lines(base, target);
        let base_lines = split_lines(base);
        let target_lines = split_lines(target);

        // Byte offset of each line start, plus total length sentinel.
        let mut base_offsets = Vec::with_capacity(base_lines.len() + 1);
        let mut acc = 0u64;
        for l in &base_lines {
            base_offsets.push(acc);
            acc += l.len() as u64;
        }
        base_offsets.push(acc);

        let mut ops: Vec<DeltaOp> = Vec::new();
        for h in &hunks {
            match h.kind {
                HunkKind::Equal => {
                    let start = base_offsets[h.a_range.0];
                    let end = base_offsets[h.a_range.1];
                    if end > start {
                        // Coalesce with a preceding contiguous copy.
                        if let Some(DeltaOp::Copy { offset, len }) = ops.last_mut() {
                            if *offset + *len == start {
                                *len = end - *offset;
                                continue;
                            }
                        }
                        ops.push(DeltaOp::Copy {
                            offset: start,
                            len: end - start,
                        });
                    }
                }
                HunkKind::Insert => {
                    let mut bytes = Vec::new();
                    for l in &target_lines[h.b_range.0..h.b_range.1] {
                        bytes.extend_from_slice(l);
                    }
                    if !bytes.is_empty() {
                        if let Some(DeltaOp::Add(prev)) = ops.last_mut() {
                            prev.extend_from_slice(&bytes);
                        } else {
                            ops.push(DeltaOp::Add(bytes));
                        }
                    }
                }
                HunkKind::Delete => {}
            }
        }
        Delta {
            ops,
            target_len: target.len() as u64,
        }
    }

    /// Rebuild the target buffer from `base`.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.target_len as usize);
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    let start = *offset as usize;
                    let end =
                        start
                            .checked_add(*len as usize)
                            .ok_or(StorageError::DeltaOutOfRange {
                                offset: *offset,
                                base_len: base.len() as u64,
                            })?;
                    let slice = base.get(start..end).ok_or(StorageError::DeltaOutOfRange {
                        offset: *offset,
                        base_len: base.len() as u64,
                    })?;
                    out.extend_from_slice(slice);
                }
                DeltaOp::Add(bytes) => out.extend_from_slice(bytes),
            }
        }
        Ok(out)
    }

    /// Length of the buffer this delta reconstructs.
    pub fn target_len(&self) -> u64 {
        self.target_len
    }

    /// Number of instructions.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Bytes of literal (`Add`) data carried by this delta — the part that
    /// actually costs storage beyond fixed overhead.
    pub fn added_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Add(b) => b.len() as u64,
                DeltaOp::Copy { .. } => 0,
            })
            .sum()
    }

    /// Approximate encoded size in bytes, for storage accounting.
    pub fn storage_size(&self) -> u64 {
        self.to_bytes().len() as u64
    }

    /// The instruction stream.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }
}

impl Encode for Delta {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.target_len);
        w.put_u64(self.ops.len() as u64);
        for op in &self.ops {
            match op {
                DeltaOp::Copy { offset, len } => {
                    w.put_u8(0);
                    w.put_u64(*offset);
                    w.put_u64(*len);
                }
                DeltaOp::Add(bytes) => {
                    w.put_u8(1);
                    w.put_bytes(bytes);
                }
            }
        }
    }
}

impl Decode for Delta {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let target_len = r.get_u64()?;
        let count = r.get_u64()? as usize;
        let mut ops = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            ops.push(match r.get_u8()? {
                0 => DeltaOp::Copy {
                    offset: r.get_u64()?,
                    len: r.get_u64()?,
                },
                1 => DeltaOp::Add(r.get_bytes()?.to_vec()),
                tag => {
                    return Err(StorageError::InvalidTag {
                        context: "DeltaOp",
                        tag: tag as u64,
                    })
                }
            });
        }
        Ok(Delta { ops, target_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(base: &[u8], target: &[u8]) -> Delta {
        let d = Delta::compute(base, target);
        assert_eq!(d.apply(base).unwrap(), target.to_vec());
        assert_eq!(d.target_len(), target.len() as u64);
        d
    }

    #[test]
    fn roundtrips() {
        check(b"", b"");
        check(b"", b"hello\nworld\n");
        check(b"hello\nworld\n", b"");
        check(b"a\nb\nc\n", b"a\nB\nc\n");
        check(b"same\nsame\n", b"same\nsame\n");
        check(b"\x00\x01\x02", b"\x00\x01\x02\x03");
    }

    #[test]
    fn small_edit_produces_small_delta() {
        // 1000 lines, one changed: delta literal payload should be ~1 line.
        let base: Vec<u8> = (0..1000)
            .map(|i| format!("line number {i}\n"))
            .collect::<String>()
            .into_bytes();
        let mut target_str = String::new();
        for i in 0..1000 {
            if i == 500 {
                target_str.push_str("EDITED LINE\n");
            } else {
                target_str.push_str(&format!("line number {i}\n"));
            }
        }
        let target = target_str.into_bytes();
        let d = check(&base, &target);
        assert!(d.added_bytes() < 64, "added {} bytes", d.added_bytes());
        assert!(d.storage_size() < 128, "stored {} bytes", d.storage_size());
        assert!(d.storage_size() < base.len() as u64 / 10);
    }

    #[test]
    fn identical_buffers_delta_is_one_copy() {
        let base = b"x\ny\nz\n";
        let d = Delta::compute(base, base);
        assert_eq!(d.op_count(), 1);
        assert_eq!(d.added_bytes(), 0);
    }

    #[test]
    fn adjacent_copies_coalesce() {
        // A deletion in the middle leaves two copy regions which must stay
        // separate; but consecutive equal hunks would coalesce.
        let base = b"a\nb\nc\nd\n";
        let target = b"a\nb\nd\n";
        let d = check(base, target);
        assert_eq!(d.added_bytes(), 0);
        assert_eq!(d.op_count(), 2); // copy "a\nb\n", copy "d\n"
    }

    #[test]
    fn apply_rejects_out_of_range_copy() {
        let d = Delta {
            ops: vec![DeltaOp::Copy { offset: 10, len: 5 }],
            target_len: 5,
        };
        assert!(matches!(
            d.apply(b"short"),
            Err(StorageError::DeltaOutOfRange { .. })
        ));
    }

    #[test]
    fn apply_rejects_overflowing_copy() {
        let d = Delta {
            ops: vec![DeltaOp::Copy {
                offset: u64::MAX,
                len: u64::MAX,
            }],
            target_len: 1,
        };
        assert!(d.apply(b"x").is_err());
    }

    #[test]
    fn codec_roundtrip() {
        let d = Delta::compute(b"one\ntwo\nthree\n", b"one\n2\nthree\nfour\n");
        let decoded = Delta::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(decoded, d);
        assert_eq!(
            decoded.apply(b"one\ntwo\nthree\n").unwrap(),
            b"one\n2\nthree\nfour\n".to_vec()
        );
    }

    #[test]
    fn binary_data_without_newlines_still_works() {
        let base: Vec<u8> = (0..=255u8).collect();
        let mut target = base.clone();
        target[128] = 0;
        let d = Delta::compute(&base, &target);
        assert_eq!(d.apply(&base).unwrap(), target);
    }
}
