//! Line-oriented differencing.
//!
//! The HAM's `getNodeDifferences` operation and the node-differences browser
//! (paper §4.1) need to report *what changed* between two versions of a
//! node's contents, and the backward-delta archive ([`crate::delta`]) needs a
//! compact edit script between adjacent versions. Both are built on a Myers
//! O(ND) diff over lines.
//!
//! Node contents at the HAM level are uninterpreted bytes (paper §3); we
//! split on `\n` for diffing, which degrades gracefully to whole-buffer
//! replacement for binary data with no newlines.

mod lines;
mod myers;
mod script;

pub use lines::{split_lines, Interner};
pub use myers::diff_tokens;
pub use script::{differences, hunks, Difference, Hunk, HunkKind};

/// Compute the line-level hunks between two byte buffers.
///
/// Hunks partition both inputs: equal hunks reference matching line ranges,
/// delete hunks lines only in `a`, insert hunks lines only in `b`.
pub fn diff_lines(a: &[u8], b: &[u8]) -> Vec<Hunk> {
    let mut interner = Interner::new();
    let a_tokens = interner.intern_lines(a);
    let b_tokens = interner.intern_lines(b);
    let ops = diff_tokens(&a_tokens, &b_tokens);
    hunks(&ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_b(a: &[u8], b: &[u8], hs: &[Hunk]) -> Vec<u8> {
        let a_lines = split_lines(a);
        let b_lines = split_lines(b);
        let mut out = Vec::new();
        for h in hs {
            match h.kind {
                HunkKind::Equal => {
                    for line in &a_lines[h.a_range.0..h.a_range.1] {
                        out.extend_from_slice(line);
                    }
                }
                HunkKind::Insert => {
                    for line in &b_lines[h.b_range.0..h.b_range.1] {
                        out.extend_from_slice(line);
                    }
                }
                HunkKind::Delete => {}
            }
        }
        out
    }

    #[test]
    fn identical_buffers_are_one_equal_hunk() {
        let text = b"alpha\nbeta\ngamma\n";
        let hs = diff_lines(text, text);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HunkKind::Equal);
    }

    #[test]
    fn empty_vs_nonempty() {
        let hs = diff_lines(b"", b"one\ntwo\n");
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HunkKind::Insert);
        let hs = diff_lines(b"one\ntwo\n", b"");
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].kind, HunkKind::Delete);
        assert!(diff_lines(b"", b"").is_empty());
    }

    #[test]
    fn hunks_reconstruct_target() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"a\nb\nc\n", b"a\nx\nc\n"),
            (b"a\nb\nc\n", b"b\nc\nd\n"),
            (b"\n\n\n", b"\n\n"),
            (b"same\n", b"same\n"),
            (b"no trailing newline", b"no trailing newline!"),
            (b"binary\x00blob", b"binary\x00blob with suffix"),
            (b"1\n2\n3\n4\n5\n6\n7\n8\n", b"1\n3\n5\n7\n9\n"),
        ];
        for (a, b) in cases {
            let hs = diff_lines(a, b);
            assert_eq!(
                reconstruct_b(a, b, &hs),
                b.to_vec(),
                "case {:?}",
                String::from_utf8_lossy(a)
            );
        }
    }

    #[test]
    fn hunk_ranges_partition_inputs() {
        let a = b"a\nb\nc\nd\n";
        let b = b"a\nc\nd\ne\n";
        let hs = diff_lines(a, b);
        let mut a_pos = 0;
        let mut b_pos = 0;
        for h in &hs {
            assert_eq!(h.a_range.0, a_pos);
            assert_eq!(h.b_range.0, b_pos);
            a_pos = h.a_range.1;
            b_pos = h.b_range.1;
        }
        assert_eq!(a_pos, split_lines(a).len());
        assert_eq!(b_pos, split_lines(b).len());
    }
}
