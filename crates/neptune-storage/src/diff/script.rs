//! Edit scripts: hunks and the paper's `Difference` domain.
//!
//! The HAM appendix defines `Difference: a deletion, insertion or
//! replacement` as the result domain of `getNodeDifferences`. This module
//! groups the primitive [`DiffOp`]s from the Myers core into contiguous
//! [`Hunk`]s and then merges adjacent delete/insert pairs into the
//! three-valued [`Difference`] the paper specifies.

use super::myers::DiffOp;
use super::split_lines;
use crate::codec::{Decode, Encode, Reader, Writer};
use crate::error::{Result, StorageError};

/// What a contiguous hunk does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HunkKind {
    /// Lines present and identical in both versions.
    Equal,
    /// Lines present only in the old version.
    Delete,
    /// Lines present only in the new version.
    Insert,
}

/// A maximal run of same-kind diff operations, as half-open line ranges into
/// each input. For `Equal` both ranges have equal length; for `Delete` the
/// `b_range` is empty; for `Insert` the `a_range` is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hunk {
    /// The hunk's effect.
    pub kind: HunkKind,
    /// Line range in the old version.
    pub a_range: (usize, usize),
    /// Line range in the new version.
    pub b_range: (usize, usize),
}

/// Group primitive ops into maximal hunks, preserving order.
pub fn hunks(ops: &[DiffOp]) -> Vec<Hunk> {
    let mut out: Vec<Hunk> = Vec::new();
    let mut a_pos = 0usize;
    let mut b_pos = 0usize;
    for op in ops {
        let (kind, da, db) = match op {
            DiffOp::Equal { .. } => (HunkKind::Equal, 1, 1),
            DiffOp::Delete { .. } => (HunkKind::Delete, 1, 0),
            DiffOp::Insert { .. } => (HunkKind::Insert, 0, 1),
        };
        match out.last_mut() {
            Some(h) if h.kind == kind => {
                h.a_range.1 += da;
                h.b_range.1 += db;
            }
            _ => out.push(Hunk {
                kind,
                a_range: (a_pos, a_pos + da),
                b_range: (b_pos, b_pos + db),
            }),
        }
        a_pos += da;
        b_pos += db;
    }
    out
}

/// The paper's `Difference` domain: "a deletion, insertion or replacement",
/// at line granularity, carrying the affected text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Difference {
    /// Lines `old_lines` were removed starting at old-version line `at`.
    Deletion {
        /// First affected line number (0-based) in the old version.
        at: usize,
        /// The removed lines.
        old_lines: Vec<Vec<u8>>,
    },
    /// Lines `new_lines` were added starting at new-version line `at`.
    Insertion {
        /// First affected line number (0-based) in the new version.
        at: usize,
        /// The added lines.
        new_lines: Vec<Vec<u8>>,
    },
    /// Lines were replaced: `old_lines` at old-version line `at` became
    /// `new_lines`.
    Replacement {
        /// First affected line number (0-based) in the old version.
        at: usize,
        /// The lines that were replaced.
        old_lines: Vec<Vec<u8>>,
        /// The lines that replaced them.
        new_lines: Vec<Vec<u8>>,
    },
}

impl Difference {
    /// A short human-readable tag, used by the node-differences browser.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Difference::Deletion { .. } => "deletion",
            Difference::Insertion { .. } => "insertion",
            Difference::Replacement { .. } => "replacement",
        }
    }
}

/// Compute the paper's `Difference*` between two versions of node contents.
///
/// Adjacent delete+insert hunks merge into a single `Replacement`, matching
/// how the node-differences browser presents side-by-side changes.
pub fn differences(old: &[u8], new: &[u8]) -> Vec<Difference> {
    let hs = super::diff_lines(old, new);
    let old_lines = split_lines(old);
    let new_lines = split_lines(new);
    let grab = |lines: &[&[u8]], range: (usize, usize)| -> Vec<Vec<u8>> {
        lines[range.0..range.1].iter().map(|l| l.to_vec()).collect()
    };

    let mut out = Vec::new();
    let mut i = 0;
    while i < hs.len() {
        match hs[i].kind {
            HunkKind::Equal => i += 1,
            HunkKind::Delete => {
                if i + 1 < hs.len() && hs[i + 1].kind == HunkKind::Insert {
                    out.push(Difference::Replacement {
                        at: hs[i].a_range.0,
                        old_lines: grab(&old_lines, hs[i].a_range),
                        new_lines: grab(&new_lines, hs[i + 1].b_range),
                    });
                    i += 2;
                } else {
                    out.push(Difference::Deletion {
                        at: hs[i].a_range.0,
                        old_lines: grab(&old_lines, hs[i].a_range),
                    });
                    i += 1;
                }
            }
            HunkKind::Insert => {
                out.push(Difference::Insertion {
                    at: hs[i].b_range.0,
                    new_lines: grab(&new_lines, hs[i].b_range),
                });
                i += 1;
            }
        }
    }
    out
}

impl Encode for Difference {
    fn encode(&self, w: &mut Writer) {
        match self {
            Difference::Deletion { at, old_lines } => {
                w.put_u8(0);
                w.put_u64(*at as u64);
                crate::codec::encode_seq(old_lines, w);
            }
            Difference::Insertion { at, new_lines } => {
                w.put_u8(1);
                w.put_u64(*at as u64);
                crate::codec::encode_seq(new_lines, w);
            }
            Difference::Replacement {
                at,
                old_lines,
                new_lines,
            } => {
                w.put_u8(2);
                w.put_u64(*at as u64);
                crate::codec::encode_seq(old_lines, w);
                crate::codec::encode_seq(new_lines, w);
            }
        }
    }
}

impl Decode for Difference {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(Difference::Deletion {
                at: r.get_u64()? as usize,
                old_lines: crate::codec::decode_seq(r)?,
            }),
            1 => Ok(Difference::Insertion {
                at: r.get_u64()? as usize,
                new_lines: crate::codec::decode_seq(r)?,
            }),
            2 => Ok(Difference::Replacement {
                at: r.get_u64()? as usize,
                old_lines: crate::codec::decode_seq(r)?,
                new_lines: crate::codec::decode_seq(r)?,
            }),
            tag => Err(StorageError::InvalidTag {
                context: "Difference",
                tag: tag as u64,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_insertion() {
        let d = differences(b"a\nc\n", b"a\nb\nc\n");
        assert_eq!(d.len(), 1);
        match &d[0] {
            Difference::Insertion { at, new_lines } => {
                assert_eq!(*at, 1);
                assert_eq!(new_lines, &vec![b"b\n".to_vec()]);
            }
            other => panic!("expected insertion, got {other:?}"),
        }
    }

    #[test]
    fn pure_deletion() {
        let d = differences(b"a\nb\nc\n", b"a\nc\n");
        assert_eq!(d.len(), 1);
        match &d[0] {
            Difference::Deletion { at, old_lines } => {
                assert_eq!(*at, 1);
                assert_eq!(old_lines, &vec![b"b\n".to_vec()]);
            }
            other => panic!("expected deletion, got {other:?}"),
        }
    }

    #[test]
    fn substitution_is_replacement() {
        let d = differences(b"a\nOLD\nc\n", b"a\nNEW\nc\n");
        assert_eq!(d.len(), 1);
        match &d[0] {
            Difference::Replacement {
                at,
                old_lines,
                new_lines,
            } => {
                assert_eq!(*at, 1);
                assert_eq!(old_lines, &vec![b"OLD\n".to_vec()]);
                assert_eq!(new_lines, &vec![b"NEW\n".to_vec()]);
            }
            other => panic!("expected replacement, got {other:?}"),
        }
    }

    #[test]
    fn identical_versions_have_no_differences() {
        assert!(differences(b"x\ny\n", b"x\ny\n").is_empty());
        assert!(differences(b"", b"").is_empty());
    }

    #[test]
    fn multiple_separated_changes() {
        let old = b"1\n2\n3\n4\n5\n";
        let new = b"1\nTWO\n3\n4\n5\nsix\n";
        let d = differences(old, new);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].kind_name(), "replacement");
        assert_eq!(d[1].kind_name(), "insertion");
    }

    #[test]
    fn difference_codec_roundtrip() {
        let ds = vec![
            Difference::Deletion {
                at: 3,
                old_lines: vec![b"x\n".to_vec()],
            },
            Difference::Insertion {
                at: 0,
                new_lines: vec![b"y\n".to_vec(), b"z".to_vec()],
            },
            Difference::Replacement {
                at: 7,
                old_lines: vec![b"a\n".to_vec()],
                new_lines: vec![b"b\n".to_vec()],
            },
        ];
        for d in ds {
            let bytes = d.to_bytes();
            assert_eq!(Difference::from_bytes(&bytes).unwrap(), d);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(Difference::from_bytes(&[9]).is_err());
    }
}
